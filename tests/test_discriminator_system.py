"""Tests for the discriminator and the small-big system (integration-ish)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cases import label_cases
from repro.core.discriminator import DifficultCaseDiscriminator
from repro.core.system import SmallBigSystem
from repro.errors import CalibrationError


@pytest.fixture(scope="module")
def fitted(voc_train_small_module, detectors_module):
    small, big = detectors_module
    train = voc_train_small_module
    sd = small.detect_split(train)
    bd = big.detect_split(train)
    disc, report = DifficultCaseDiscriminator.fit(sd, bd, train.truths)
    return disc, report, sd, bd, train


@pytest.fixture(scope="module")
def voc_train_small_module(request):
    from repro.data import load_dataset

    return load_dataset("voc07", "train", fraction=500 / 5011)


@pytest.fixture(scope="module")
def detectors_module():
    from repro.simulate import make_detector

    return make_detector("small1", "voc07"), make_detector("ssd", "voc07")


class TestFit:
    def test_thresholds_in_plausible_ranges(self, fitted):
        disc, _, _, _, _ = fitted
        assert 0.05 <= disc.confidence_threshold <= 0.45
        assert 1 <= disc.count_threshold <= 6
        assert 0.0 <= disc.area_threshold <= 0.7

    def test_ground_truth_metrics_strong(self, fitted):
        _, report, _, _, _ = fitted
        assert report.ground_truth_metrics.accuracy > 0.75
        assert report.ground_truth_metrics.recall > 0.9

    def test_predicted_weaker_than_ground_truth(self, fitted):
        _, report, _, _, _ = fitted
        assert (report.predicted_metrics.accuracy <= report.ground_truth_metrics.accuracy + 1e-9)

    def test_difficult_fraction_moderate(self, fitted):
        _, report, _, _, _ = fitted
        assert 0.2 < report.difficult_fraction < 0.7

    def test_empty_split_rejected(self):
        with pytest.raises(CalibrationError):
            DifficultCaseDiscriminator.fit([], [], [])

    def test_misaligned_inputs_rejected(self, fitted):
        _, _, sd, bd, train = fitted
        with pytest.raises(CalibrationError):
            DifficultCaseDiscriminator.fit(sd[:-1], bd, train.truths)


class TestDecide:
    def test_decide_matches_decide_split(self, fitted):
        disc, _, sd, _, _ = fitted
        split_verdicts = disc.decide_split(sd[:50])
        single_verdicts = np.array([disc.decide(d) for d in sd[:50]])
        np.testing.assert_array_equal(split_verdicts, single_verdicts)

    def test_evaluate_consistency(self, fitted):
        disc, _, sd, bd, _ = fitted
        metrics = disc.evaluate(sd, bd)
        labels = label_cases(sd, bd)
        predicted = disc.decide_split(sd)
        assert metrics.tp == int(np.sum(predicted & labels))


class TestSystem:
    def test_run_composition(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train)
        finals = run.final_detections
        for i, sent in enumerate(run.uploaded):
            expected = run.big_detections[i] if sent else run.small_detections[i]
            assert finals[i] is expected

    def test_upload_ratio_bounds(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train)
        assert 0.0 <= run.upload_ratio <= 1.0

    def test_metric_ordering_small_e2e_big(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train)
        assert run.small_model_map() < run.end_to_end_map() <= run.big_model_map() + 2.0
        assert (
            run.small_model_counts().detected
            < run.end_to_end_counts().detected
            <= run.big_model_counts().detected + 10
        )

    def test_process_image_matches_run(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train)
        for index in (0, 7, 23):
            dets, uploaded = system.process_image(train.records[index])
            assert uploaded == bool(run.uploaded[index])
            np.testing.assert_array_equal(dets.boxes, run.final_detections[index].boxes)

    def test_external_mask_respected(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        mask = np.zeros(len(train), dtype=bool)
        mask[:10] = True
        run = system.run(train, uploaded=mask)
        assert run.uploaded.sum() == 10

    def test_all_uploaded_equals_big_model(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train, uploaded=np.ones(len(train), dtype=bool))
        assert run.end_to_end_map() == pytest.approx(run.big_model_map())

    def test_none_uploaded_equals_small_model(self, fitted, detectors_module):
        disc, _, _, _, train = fitted
        small, big = detectors_module
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=disc)
        run = system.run(train, uploaded=np.zeros(len(train), dtype=bool))
        assert run.end_to_end_map() == pytest.approx(run.small_model_map())
