"""Equivalence suite for the structure-of-arrays detection batch.

The simulated detectors are deterministic, so the batch-routed pipeline must
produce *bit-for-bit* identical numbers to the per-image ``list[Detections]``
path: features, verdicts, mAP, counts and baseline masks are all asserted
with exact equality, not tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.confidence_upload import (
    ConfidenceUploadPolicy,
    mean_top1_confidence,
)
from repro.core.cases import is_difficult_case, label_cases
from repro.core.features import extract_feature_arrays, extract_features
from repro.core.system import SystemRun
from repro.core.thresholds import count_loss_curve
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import GeometryError
from repro.metrics.counting import count_summary
from repro.metrics.voc_ap import evaluate_detections


@pytest.fixture(scope="module")
def small_batch(harness):
    return harness.detections("small1", "voc07", "test")


@pytest.fixture(scope="module")
def big_batch(harness):
    return harness.detections("ssd", "voc07", "test")


@pytest.fixture(scope="module")
def small_list(small_batch):
    # Fully materialised per-image containers (the pre-batch representation):
    # rebuilt through the Detections constructor, not zero-copy views.
    return [
        Detections(v.image_id, v.boxes.copy(), v.scores.copy(), v.labels.copy(), "small1")
        for v in small_batch
    ]


@pytest.fixture(scope="module")
def big_list(big_batch):
    return [Detections(v.image_id, v.boxes.copy(), v.scores.copy(), v.labels.copy(), "ssd") for v in big_batch]


class TestStructure:
    def test_roundtrip_is_exact(self, small_list):
        batch = DetectionBatch.from_list(small_list)
        assert len(batch) == len(small_list)
        for original, view in zip(small_list, batch):
            assert view.image_id == original.image_id
            np.testing.assert_array_equal(view.boxes, original.boxes)
            np.testing.assert_array_equal(view.scores, original.scores)
            np.testing.assert_array_equal(view.labels, original.labels)

    def test_views_are_zero_copy(self, small_batch):
        view = next(v for v in small_batch if len(v))
        assert np.shares_memory(view.boxes, small_batch.boxes)
        assert np.shares_memory(view.scores, small_batch.scores)

    def test_slice_matches_list_slice(self, small_batch, small_list):
        sub = small_batch[10:60]
        assert len(sub) == 50
        for view, original in zip(sub, small_list[10:60]):
            np.testing.assert_array_equal(view.boxes, original.boxes)

    def test_unsorted_segment_rejected(self):
        with pytest.raises(GeometryError):
            DetectionBatch(
                image_ids=("a",),
                boxes=np.array([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4]]),
                scores=np.array([0.2, 0.9]),
                labels=np.array([0, 0]),
                offsets=np.array([0, 2]),
            )

    def test_misaligned_offsets_rejected(self):
        with pytest.raises(GeometryError):
            DetectionBatch(
                image_ids=("a", "b"),
                boxes=np.zeros((0, 4)),
                scores=np.zeros(0),
                labels=np.zeros(0, dtype=np.int64),
                offsets=np.array([0]),
            )


class TestPerImageOpEquivalence:
    @pytest.mark.parametrize("threshold", [0.15, 0.35, 0.5])
    def test_count_above(self, small_batch, small_list, threshold):
        np.testing.assert_array_equal(
            small_batch.count_above(threshold),
            [d.count_above(threshold) for d in small_list],
        )

    @pytest.mark.parametrize("threshold", [0.15, 0.35, 0.5])
    def test_min_area_above_bitwise(self, small_batch, small_list, threshold):
        batched = small_batch.min_area_above(threshold)
        listed = np.array([d.min_area_above(threshold) for d in small_list])
        assert (batched == listed).all()  # exact, not approximate

    @pytest.mark.parametrize("threshold", [0.3, 0.5])
    def test_above_filter(self, small_batch, small_list, threshold):
        served = small_batch.above(threshold)
        for view, original in zip(served, small_list):
            filtered = original.above(threshold)
            np.testing.assert_array_equal(view.boxes, filtered.boxes)
            np.testing.assert_array_equal(view.scores, filtered.scores)
            np.testing.assert_array_equal(view.labels, filtered.labels)

    def test_top_scores(self, small_batch, small_list):
        assert (small_batch.top_scores() == np.array([d.top_score() for d in small_list])).all()


class TestPipelineEquivalence:
    def test_features_bitwise(self, small_batch, small_list):
        batched = extract_feature_arrays(small_batch, 0.2)
        listed = [extract_features(d, 0.2) for d in small_list]
        assert (batched[0] == np.array([f.n_predict for f in listed])).all()
        assert (batched[1] == np.array([f.n_estimated for f in listed])).all()
        assert (batched[2] == np.array([f.min_area_estimated for f in listed])).all()

    def test_verdicts_bitwise(self, harness, small_batch, small_list):
        discriminator, _ = harness.discriminator("small1", "ssd", "voc07")
        batched = discriminator.decide_split(small_batch)
        listed = discriminator.decide_split(small_list)
        singles = np.array([discriminator.decide(d) for d in small_list])
        np.testing.assert_array_equal(batched, listed)
        np.testing.assert_array_equal(batched, singles)

    def test_labels_bitwise(self, small_batch, big_batch, small_list, big_list):
        batched = label_cases(small_batch, big_batch)
        listed = np.array([is_difficult_case(s, b) for s, b in zip(small_list, big_list)])
        np.testing.assert_array_equal(batched, listed)

    def test_count_loss_curve_bitwise(self, harness, small_batch, small_list):
        truths = harness.dataset("voc07", "test").truths
        grid_b, losses_b = count_loss_curve(small_batch, truths)
        grid_l, losses_l = count_loss_curve(small_list, truths)
        np.testing.assert_array_equal(grid_b, grid_l)
        assert (losses_b == losses_l).all()

    def test_map_bitwise(self, harness, big_batch, big_list):
        dataset = harness.dataset("voc07", "test")
        served_batch = big_batch.above(0.5)
        served_list = [d.above(0.5) for d in big_list]
        batched = evaluate_detections(served_batch, dataset.truths, dataset.num_classes)
        listed = evaluate_detections(served_list, dataset.truths, dataset.num_classes)
        assert set(batched.per_class_ap) == set(listed.per_class_ap)
        for label, ap in listed.per_class_ap.items():
            assert batched.per_class_ap[label] == ap  # exact
        assert batched.map == listed.map

    def test_counts_bitwise(self, harness, big_batch, big_list):
        truths = harness.dataset("voc07", "test").truths
        assert count_summary(big_batch, truths) == count_summary(big_list, truths)

    def test_confidence_policy_mask_bitwise(self, harness, small_batch, small_list):
        dataset = harness.dataset("voc07", "test")
        policy = ConfidenceUploadPolicy(ratio=0.5)
        np.testing.assert_array_equal(policy.select(dataset, small_batch), policy.select(dataset, small_list))
        listed = np.array([mean_top1_confidence(d, dataset.num_classes) for d in small_list])
        from repro.baselines.confidence_upload import mean_top1_confidence_split

        assert (mean_top1_confidence_split(small_batch, dataset.num_classes) == listed).all()

    def test_confidence_split_ignores_out_of_vocabulary_labels(self):
        from repro.baselines.confidence_upload import mean_top1_confidence_split

        dets = [
            Detections(
                "a",
                np.array([[0.1, 0.1, 0.4, 0.4], [0.2, 0.2, 0.5, 0.5]]),
                np.array([0.9, 0.3]),
                np.array([7, 1]),  # label 7 outside the 3-class vocabulary
            ),
            Detections.empty("b"),
        ]
        batch = DetectionBatch.from_list(dets)
        batched = mean_top1_confidence_split(batch, 3)
        listed = np.array([mean_top1_confidence(d, 3) for d in dets])
        assert batched.shape == (2,)
        np.testing.assert_array_equal(batched, listed)


class TestSystemRunEquivalence:
    def test_full_quick_run_bitwise(self, harness, small_batch, big_batch, small_list, big_list):
        dataset = harness.dataset("voc07", "test")
        discriminator, _ = harness.discriminator("small1", "ssd", "voc07")
        uploaded = discriminator.decide_split(small_batch)
        run_batch = SystemRun(
            dataset=dataset,
            uploaded=uploaded,
            small_detections=small_batch,
            big_detections=big_batch,
        )
        run_list = SystemRun(
            dataset=dataset,
            uploaded=uploaded,
            small_detections=small_list,
            big_detections=big_list,
        )
        assert run_batch.end_to_end_map() == run_list.end_to_end_map()
        assert run_batch.small_model_map() == run_list.small_model_map()
        assert run_batch.big_model_map() == run_list.big_model_map()
        assert run_batch.end_to_end_counts() == run_list.end_to_end_counts()
        assert run_batch.upload_ratio == run_list.upload_ratio

    def test_final_batch_composition(self, harness, small_batch, big_batch):
        dataset = harness.dataset("voc07", "test")
        discriminator, _ = harness.discriminator("small1", "ssd", "voc07")
        uploaded = discriminator.decide_split(small_batch)
        run = SystemRun(
            dataset=dataset,
            uploaded=uploaded,
            small_detections=small_batch,
            big_detections=big_batch,
        )
        final = run.final_detections
        assert isinstance(final, DetectionBatch)
        for index in range(0, len(dataset), 97):
            source = big_batch if uploaded[index] else small_batch
            np.testing.assert_array_equal(final[index].boxes, source[index].boxes)

    def test_fit_identical_across_representations(self, harness):
        train = harness.dataset("voc07", "train")
        small_train = harness.detections("small1", "voc07", "train")
        big_train = harness.detections("ssd", "voc07", "train")
        from repro.core.discriminator import DifficultCaseDiscriminator

        small_rebuilt = [Detections(v.image_id, v.boxes.copy(), v.scores.copy(), v.labels.copy()) for v in small_train]
        big_rebuilt = [Detections(v.image_id, v.boxes.copy(), v.scores.copy(), v.labels.copy()) for v in big_train]
        disc_batch, _ = DifficultCaseDiscriminator.fit(small_train, big_train, train.truths)
        disc_list, _ = DifficultCaseDiscriminator.fit(small_rebuilt, big_rebuilt, train.truths)
        assert disc_batch == disc_list
