"""Tests for the Tape's composite blocks and bookkeeping helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.zoo.layers import Tape, TensorShape


class TestComposites:
    def test_depthwise_separable_structure(self):
        tape = Tape(TensorShape(32, 16, 16))
        tape.depthwise_separable("b", 64)
        names = [stat.name for stat in tape.stats]
        assert names == ["b/dw", "b/pw"]
        assert tape.shape.channels == 64

    def test_depthwise_separable_cost(self):
        tape = Tape(TensorShape(32, 16, 16))
        tape.depthwise_separable("b", 64)
        # dw: 9*32 weights + 2*32 BN; pw: 32*64 + 2*64 BN.
        assert tape.total_params == (9 * 32 + 64) + (32 * 64 + 128)

    def test_inverted_residual_expansion(self):
        tape = Tape(TensorShape(16, 8, 8))
        tape.inverted_residual("ir", 24, expansion=6)
        names = [stat.name for stat in tape.stats]
        assert names == ["ir/expand", "ir/dw", "ir/project"]
        # Hidden width is 96.
        assert tape.stats[0].out_shape.channels == 96
        assert tape.shape.channels == 24

    def test_inverted_residual_expansion_one_skips_expand(self):
        tape = Tape(TensorShape(16, 8, 8))
        tape.inverted_residual("ir", 16, expansion=1)
        names = [stat.name for stat in tape.stats]
        assert names == ["ir/dw", "ir/project"]

    def test_inverted_residual_stride(self):
        tape = Tape(TensorShape(16, 8, 8))
        tape.inverted_residual("ir", 24, stride=2)
        assert tape.shape.height == 4

    def test_l2_norm_params(self):
        tape = Tape(TensorShape(512, 38, 38))
        tape.l2_norm("norm")
        assert tape.total_params == 512


class TestBookkeeping:
    def test_goto_branches(self):
        tape = Tape(TensorShape(8, 16, 16))
        trunk = tape.conv("trunk", 16)
        tape.conv("branch_a", 4)
        tape.goto(trunk)
        tape.conv("branch_b", 4)
        # Both branches consumed the trunk's 16 channels.
        assert tape.stats[1].params == tape.stats[2].params

    def test_merge_combines_tapes(self):
        a = Tape(TensorShape(3, 8, 8))
        a.conv("a", 4)
        b = Tape(TensorShape(3, 8, 8))
        b.conv("b", 4)
        total = a.total_params + b.total_params
        a.merge(b)
        assert a.total_params == total
        assert [s.name for s in a.stats] == ["a", "b"]

    def test_degenerate_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            TensorShape(0, 8, 8)

    def test_flops_property_on_stats(self):
        tape = Tape(TensorShape(3, 8, 8))
        tape.conv("c", 4)
        assert tape.stats[0].flops == 2 * tape.stats[0].macs
