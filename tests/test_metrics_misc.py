"""Tests for counting, classification and latency metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError
from repro.metrics.classify import BinaryMetrics, binary_metrics, confusion_counts
from repro.metrics.counting import CountSummary, count_detected_objects, count_summary
from repro.metrics.latency import summarize_latencies


def _gt(boxes, labels, image_id="img"):
    return GroundTruth(image_id, np.asarray(boxes, float), np.asarray(labels))


def _dets(boxes, scores, labels, image_id="img"):
    return Detections(image_id, np.asarray(boxes, float), np.asarray(scores, float), np.asarray(labels), detector="t")


class TestCounting:
    def test_counts_true_positives_only(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4], [0.6, 0.6, 0.9, 0.9]], [0.9, 0.8], [0, 0])]
        assert count_detected_objects(dets, gts) == 1

    def test_summary_fraction(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4], [0.5, 0.5, 0.9, 0.9]], [0, 1])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])]
        summary = count_summary(dets, gts)
        assert summary.detected == 1 and summary.total_ground_truth == 2
        assert summary.detected_fraction == pytest.approx(0.5)

    def test_ratio_to(self):
        ours = CountSummary(detected=94, total_ground_truth=120)
        big = CountSummary(detected=100, total_ground_truth=120)
        assert ours.ratio_to(big) == pytest.approx(94.0)

    def test_ratio_to_zero_reference(self):
        assert CountSummary(5, 10).ratio_to(CountSummary(0, 10)) == 0.0

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ConfigurationError):
            count_detected_objects([Detections.empty("a")], [])


class TestBinaryMetrics:
    def test_known_confusion(self):
        predicted = [True, True, False, False, True]
        actual = [True, False, False, True, True]
        assert confusion_counts(predicted, actual) == (2, 1, 1, 1)

    def test_perfect_classifier(self):
        metrics = binary_metrics([True, False], [True, False])
        assert metrics.accuracy == 1.0 and metrics.f1 == 1.0

    def test_all_negative_prediction(self):
        metrics = binary_metrics([False, False], [True, False])
        assert metrics.precision == 0.0 and metrics.recall == 0.0 and metrics.f1 == 0.0

    def test_as_row_percentages(self):
        row = binary_metrics([True, True], [True, False]).as_row()
        assert row["accuracy"] == pytest.approx(50.0)
        assert row["precision"] == pytest.approx(50.0)
        assert row["recall"] == pytest.approx(100.0)

    def test_empty_sample(self):
        metrics = BinaryMetrics(0, 0, 0, 0)
        assert metrics.accuracy == 0.0 and metrics.total == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            binary_metrics([True], [True, False])

    @settings(max_examples=50)
    @given(
        n=st.integers(1, 60),
        seed=st.integers(0, 10_000),
    )
    def test_f1_between_precision_and_recall_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.uniform(size=n) < 0.5
        actual = rng.uniform(size=n) < 0.5
        metrics = binary_metrics(predicted, actual)
        assert 0.0 <= metrics.f1 <= 1.0
        if metrics.precision > 0 and metrics.recall > 0:
            assert metrics.f1 <= max(metrics.precision, metrics.recall) + 1e-12
            assert metrics.f1 >= min(metrics.precision, metrics.recall) - 1e-12


class TestLatencySummary:
    def test_total_and_mean(self):
        summary = summarize_latencies([1.0, 2.0, 3.0])
        assert summary.total == pytest.approx(6.0)
        assert summary.mean == pytest.approx(2.0)
        assert summary.count == 3

    def test_percentiles_ordered(self):
        summary = summarize_latencies(np.linspace(0.01, 1.0, 100))
        assert summary.p50 <= summary.p90 <= summary.p99

    def test_empty(self):
        summary = summarize_latencies([])
        assert summary.total == 0.0 and summary.count == 0

    def test_saving_and_speedup(self):
        ours = summarize_latencies([1.0] * 10)
        cloud = summarize_latencies([2.0] * 10)
        assert ours.saving_over(cloud) == pytest.approx(0.5)
        assert ours.speedup_over(cloud) == pytest.approx(2.0)
