"""Tests for the unified serving pipeline: schemes, policies, fleet, rolling.

Exact equality with the pre-refactor per-scheme implementations lives in
``test_serving_equivalence.py``; here we test the *new* surface — the
offload-policy protocol, policy-driven scheme runs through both engines,
the multi-camera fleet simulator, and the rolling online quality metric.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import (
    BlurUploadPolicy,
    CloudOnlyPolicy,
    ConfidenceUploadPolicy,
    EdgeOnlyPolicy,
    RandomUploadPolicy,
)
from repro.core.discriminator import DifficultCaseDiscriminator, DiscriminatorPolicy
from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import RuntimeModelError
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    AdmissionPolicy,
    AlwaysOffload,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    DropOldest,
    EdgeCloudRuntime,
    NeverOffload,
    OffloadPolicy,
    RunCost,
    StreamConfig,
    StreamSimulator,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    paper_schemes,
    simulate_fleet,
    simulate_stream,
)
from repro.simulate import make_detector


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def small_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def discriminator(helmet_mini):
    train = load_dataset("helmet", "train", fraction=0.2)
    small = make_detector("small1", "helmet").detect_split(train)
    big = make_detector("ssd", "helmet").detect_split(train)
    fitted, _ = DifficultCaseDiscriminator.fit(small, big, train.truths)
    return fitted


def all_policies(discriminator, seed=7):
    return [
        DiscriminatorPolicy(discriminator),
        ConfidenceUploadPolicy(ratio=0.3),
        RandomUploadPolicy(ratio=0.3, seed=seed),
        BlurUploadPolicy(ratio=0.3),
        NeverOffload(),
        AlwaysOffload(),
        EdgeOnlyPolicy(),
        CloudOnlyPolicy(),
    ]


class TestOffloadProtocol:
    def test_every_policy_satisfies_protocol(self, discriminator):
        for policy in all_policies(discriminator):
            assert isinstance(policy, OffloadPolicy), type(policy).__name__

    def test_policy_masks_aligned(self, discriminator, helmet_mini, small_batch):
        for policy in all_policies(discriminator):
            mask = policy.select(helmet_mini, small_batch)
            assert mask.dtype == bool and mask.shape == (len(helmet_mini),)

    def test_degenerate_policies_need_no_detections(self, helmet_mini):
        assert not NeverOffload().select(helmet_mini).any()
        assert AlwaysOffload().select(helmet_mini).all()
        assert not EdgeOnlyPolicy().select(helmet_mini).any()
        assert CloudOnlyPolicy().select(helmet_mini).all()

    def test_paper_schemes_shapes(self):
        schemes = paper_schemes()
        assert set(schemes) == {"edge", "cloud", "collaborative"}
        assert schemes["edge"].edge_compute and not schemes["edge"].edge_discriminates
        assert not schemes["cloud"].edge_compute
        assert schemes["collaborative"].edge_compute
        assert schemes["collaborative"].edge_discriminates

    def test_policyless_scheme_requires_mask(self, deployment, helmet_mini):
        runtime = EdgeCloudRuntime(deployment=deployment)
        with pytest.raises(RuntimeModelError):
            runtime.run_scheme(collaborative_scheme(), helmet_mini)

    def test_detection_needing_policy_without_detections_is_diagnosable(self, deployment, helmet_mini, discriminator):
        """Every policy that needs the small model's output raises the same
        configuration error naming the missing input, not a bare TypeError."""
        from repro.errors import ConfigurationError

        runtime = EdgeCloudRuntime(deployment=deployment)
        for policy in (
            ConfidenceUploadPolicy(ratio=0.3),
            RandomUploadPolicy(ratio=0.3),
            BlurUploadPolicy(ratio=0.3),
            DiscriminatorPolicy(discriminator),
        ):
            with pytest.raises(ConfigurationError, match="detections"):
                runtime.run_scheme(collaborative_scheme(policy), helmet_mini)


class TestPoliciesThroughBothEngines:
    """All five policy families drive the static executor and the stream
    simulator through the one shared protocol."""

    def test_static_engine_accepts_every_policy(self, deployment, helmet_mini, small_batch, discriminator):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=3)
        for policy in all_policies(discriminator):
            scheme = collaborative_scheme(policy, name=policy.name)
            cost = runtime.run_scheme(scheme, helmet_mini, small_detections=small_batch)
            expected = policy.select(helmet_mini, small_batch)
            assert cost.uploaded_images == int(expected.sum())
            assert cost.total_images == len(helmet_mini)

    def test_stream_engine_accepts_every_policy(self, deployment, helmet_mini, small_batch, discriminator):
        simulator = StreamSimulator(deployment, helmet_mini, seed=3)
        config = StreamConfig(fps=2.0, duration_s=10.0, poisson=False)
        for policy in all_policies(discriminator):
            scheme = collaborative_scheme(policy, name=policy.name)
            report = simulator.run_scheme(scheme, config, small_detections=small_batch)
            assert report.scheme == policy.name
            assert report.frames_served == report.frames_offered  # light load
            mask = policy.select(helmet_mini, small_batch)
            if not mask.any():
                assert report.frames_uploaded == 0
            if mask.all():
                assert report.frames_uploaded == report.frames_served

    def test_policy_mask_equals_explicit_mask(self, deployment, helmet_mini, small_batch, discriminator):
        """A policy-driven run is identical to supplying its mask explicitly."""
        runtime = EdgeCloudRuntime(deployment=deployment, seed=11)
        policy = DiscriminatorPolicy(discriminator)
        scheme = collaborative_scheme(policy)
        mask = policy.select(helmet_mini, small_batch)
        by_policy = runtime.run_scheme(scheme, helmet_mini, small_detections=small_batch)
        by_mask = runtime.run_collaborative(helmet_mini, mask)
        assert by_policy == by_mask


class TestFleetSimulator:
    CONFIG = StreamConfig(fps=1.5, duration_s=20.0)

    def test_deterministic_at_eight_cameras(self, deployment, helmet_mini, small_batch):
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::4] = True
        runs = [
            simulate_fleet(
                collaborative_scheme(),
                deployment,
                helmet_mini,
                self.CONFIG,
                cameras=8,
                mask=mask,
                seed=5,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]  # dataclass equality covers every field
        assert len(runs[0].cameras) == 8

    def test_totals_sum_over_cameras(self, deployment, helmet_mini):
        fleet = simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=8, seed=5)
        for name in ("frames_offered", "frames_served", "frames_dropped", "frames_uploaded"):
            assert getattr(fleet, name) == sum(getattr(c, name) for c in fleet.cameras)
        assert fleet.latency.count == sum(c.latency.count for c in fleet.cameras)

    def test_shared_uplink_contention(self, deployment, helmet_mini):
        """Adding cameras saturates the shared uplink under cloud-only."""
        single = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=1, seed=5)
        fleet = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=8, seed=5)
        assert fleet.uplink_utilization >= single.uplink_utilization
        assert fleet.uplink_utilization > 0.95
        assert fleet.drop_rate > 0.2 or fleet.latency.p50 > 1.0
        # Shared-resource utilizations are reported identically per camera.
        for camera in fleet.cameras:
            assert camera.uplink_utilization == fleet.uplink_utilization
            assert camera.cloud_utilization == fleet.cloud_utilization

    def test_collaborative_fleet_outscales_cloud_only(
        self,
        deployment,
        helmet_mini,
        small_batch,
        big_batch,
        discriminator,
    ):
        # Long enough that cloud-only overruns even the per-camera buffers.
        config = StreamConfig(fps=1.5, duration_s=90.0)
        mask = discriminator.decide_split(small_batch)
        collab = simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            config,
            cameras=8,
            mask=mask,
            seed=5,
        )
        cloud = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, config, cameras=8, seed=5)
        assert collab.drop_rate == 0.0
        assert cloud.drop_rate > 0.1
        assert collab.latency.p50 < cloud.latency.p50

    def test_cameras_cover_different_records(self, deployment, helmet_mini, small_batch):
        fleet = simulate_fleet(
            edge_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=10.0, poisson=False),
            cameras=4,
            detections=small_batch,
            seed=5,
        )
        starts = [int(camera.frame_records[0]) for camera in fleet.cameras]
        assert len(set(starts)) == 4  # staggered offsets into the split

    def test_invalid_camera_count_rejected(self, deployment, helmet_mini):
        with pytest.raises(RuntimeModelError):
            simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=0)


class TestRollingQuality:
    CONFIG = StreamConfig(fps=4.0, duration_s=24.0, poisson=False)

    def _stream(self, deployment, dataset, batch, scheme, cameras=None, **kwargs):
        if cameras is None:
            return simulate_stream(scheme, deployment, dataset, self.CONFIG, detections=batch, seed=9, **kwargs)
        return simulate_fleet(
            scheme,
            deployment,
            dataset,
            self.CONFIG,
            cameras=cameras,
            detections=batch,
            seed=9,
            **kwargs,
        )

    def test_windows_tile_the_horizon(self, deployment, helmet_mini, small_batch):
        report = self._stream(deployment, helmet_mini, small_batch, edge_only_scheme())
        windows = rolling_quality(report, helmet_mini, window_s=6.0, duration_s=24.0)
        assert [w.t_start for w in windows] == [0.0, 6.0, 12.0, 18.0]
        assert all(w.t_end - w.t_start == 6.0 for w in windows)
        # arrival-keyed windows cover every offered frame exactly once
        assert sum(w.frames for w in windows) == report.frames_offered
        assert all(w.frames == w.served + w.dropped + w.stale for w in windows)

    def test_quality_bounded_and_counts_consistent(self, deployment, helmet_mini, big_batch):
        report = self._stream(deployment, helmet_mini, big_batch, cloud_only_scheme())
        for window in rolling_quality(report, helmet_mini, window_s=8.0):
            assert 0.0 <= window.map_percent <= 100.0
            assert 0 <= window.detected_objects <= window.true_objects
            assert 0.0 <= window.count_error_percent <= 100.0

    def test_drops_degrade_measured_quality(self, deployment, helmet_mini, big_batch):
        """The same scheme, saturated, must score worse — drops are quality."""
        light = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=24.0, poisson=False),
            detections=big_batch,
            seed=9,
        )
        saturated = self._stream(deployment, helmet_mini, big_batch, cloud_only_scheme(), cameras=8)
        assert saturated.drop_rate > light.drop_rate
        light_map = np.mean([w.map_percent for w in rolling_quality(light, helmet_mini, window_s=24.0)])
        saturated_map = np.mean([w.map_percent for w in rolling_quality(saturated, helmet_mini, window_s=24.0)])
        assert saturated_map < light_map

    def test_fleet_reports_merge_all_cameras(self, deployment, helmet_mini, small_batch):
        fleet = self._stream(deployment, helmet_mini, small_batch, edge_only_scheme(), cameras=3)
        windows = rolling_quality(fleet, helmet_mini, window_s=24.0, duration_s=24.0)
        assert len(windows) == 1
        assert windows[0].frames == sum(
            int(((c.frame_times >= 0) & (c.frame_times < 24.0)).sum()) for c in fleet.cameras
        )

    def test_report_without_frame_log_rejected(self, deployment, helmet_mini):
        from repro.errors import ConfigurationError

        report = simulate_stream(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, seed=9)
        with pytest.raises(ConfigurationError):
            rolling_quality(report, helmet_mini)

    def test_empty_reports_sequence_rejected(self, helmet_mini):
        """An empty sequence must error, not score a degenerate zero window."""
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no stream reports"):
            rolling_quality([], helmet_mini)
        with pytest.raises(ConfigurationError, match="no stream reports"):
            rolling_quality((), helmet_mini)


# --------------------------------------------------------------------- #
# camera-buffer admission control
# --------------------------------------------------------------------- #
class TestAdmissionPolicies:
    #: 8 cloud-only cameras over one WLAN uplink: heavily saturated.
    SATURATED = StreamConfig(fps=1.5, duration_s=40.0)
    FRESHNESS = 2.0

    def _fleet(self, deployment, dataset, batch, admission, cameras=8):
        return simulate_fleet(
            cloud_only_scheme(),
            deployment,
            dataset,
            self.SATURATED,
            cameras=cameras,
            detections=batch,
            admission=admission,
            seed=5,
        )

    def test_policies_satisfy_protocol(self):
        for policy in (DropNewest(), DropOldest(), DeadlineAware(freshness_s=2.0)):
            assert isinstance(policy, AdmissionPolicy), type(policy).__name__

    def test_invalid_deadline_rejected(self):
        with pytest.raises(RuntimeModelError):
            DeadlineAware(freshness_s=0.0)
        with pytest.raises(RuntimeModelError):
            DeadlineAware(freshness_s=-1.0)

    @pytest.mark.parametrize(
        "admission",
        [DropNewest(), DropOldest(), DeadlineAware(freshness_s=2.0)],
        ids=lambda policy: policy.name,
    )
    def test_frame_accounting_invariants(self, deployment, helmet_mini, big_batch, admission):
        fleet = self._fleet(deployment, helmet_mini, big_batch, admission)
        assert fleet.frames_served + fleet.frames_dropped == fleet.frames_offered
        assert 0 <= fleet.frames_shed <= fleet.frames_dropped
        for camera in fleet.cameras:
            assert camera.frames_served + camera.frames_dropped == camera.frames_offered
            assert 0 <= camera.frames_shed <= camera.frames_dropped
            # every offered frame appears in the per-frame log exactly once
            assert camera.frame_served.shape[0] == camera.frames_offered
            assert int(camera.frame_served.sum()) == camera.frames_served

    @pytest.mark.parametrize(
        "admission",
        [DropOldest(), DeadlineAware(freshness_s=2.0)],
        ids=lambda policy: policy.name,
    )
    def test_deterministic_in_the_seed(self, deployment, helmet_mini, big_batch, admission):
        runs = [self._fleet(deployment, helmet_mini, big_batch, admission) for _ in range(2)]
        assert runs[0] == runs[1]

    def test_shed_frames_logged_at_shed_time(self, deployment, helmet_mini, big_batch):
        """A shed frame's drop time is when it left the buffer, not its
        arrival; a frame refused at arrival keeps drop time == arrival."""
        fleet = self._fleet(deployment, helmet_mini, big_batch, DeadlineAware(freshness_s=self.FRESHNESS))
        assert fleet.frames_shed > 0
        shed_total = refused_total = 0
        for camera in fleet.cameras:
            lost = ~camera.frame_served
            shed = lost & (camera.frame_times > camera.frame_arrivals)
            refused = lost & (camera.frame_times == camera.frame_arrivals)
            shed_total += int(shed.sum())
            refused_total += int(refused.sum())
            assert int(shed.sum()) == camera.frames_shed
        assert shed_total == fleet.frames_shed
        assert refused_total == fleet.frames_dropped - fleet.frames_shed

    def test_drop_oldest_sheds_on_a_saturated_edge_queue(self, deployment, helmet_mini, small_batch):
        """Edge-compute schemes shed from the camera's own edge buffer."""
        config = StreamConfig(fps=40.0, duration_s=20.0, poisson=False, max_edge_queue=4)
        report = simulate_stream(
            edge_only_scheme(),
            deployment,
            helmet_mini,
            config,
            detections=small_batch,
            admission=DropOldest(),
            seed=5,
        )
        baseline = simulate_stream(
            edge_only_scheme(),
            deployment,
            helmet_mini,
            config,
            detections=small_batch,
            admission=DropNewest(),
            seed=5,
        )
        assert report.frames_shed > 0
        assert baseline.frames_shed == 0
        assert report.frames_served + report.frames_dropped == report.frames_offered
        # drop-oldest keeps the newest frames: the served stream is fresher
        assert report.latency.mean < baseline.latency.mean

    def test_deadline_aware_beats_drop_newest_at_the_deadline(self, deployment, helmet_mini, big_batch):
        """The acceptance scenario: on a saturated cloud-only 8-camera
        fleet, deadline-aware admission wins on rolling mAP at the 2 s
        freshness deadline — the served stream stays fresh enough to count,
        where drop-newest serves only stale results."""
        newest = self._fleet(deployment, helmet_mini, big_batch, DropNewest())
        deadline = self._fleet(deployment, helmet_mini, big_batch, DeadlineAware(freshness_s=self.FRESHNESS))
        kwargs = dict(window_s=8.0, duration_s=self.SATURATED.duration_s, freshness_s=self.FRESHNESS)
        newest_map = np.mean([w.map_percent for w in rolling_quality(newest, helmet_mini, **kwargs) if w.frames])
        deadline_map = np.mean(
            [w.map_percent for w in rolling_quality(deadline, helmet_mini, **kwargs) if w.frames]
        )
        assert newest.uplink_utilization > 0.9  # genuinely saturated
        assert deadline_map > 2.0 * newest_map
        # the mechanism: deadline-aware serves fresh, drop-newest stale
        assert deadline.latency.p50 < self.FRESHNESS + 1.0
        assert newest.latency.p50 > self.FRESHNESS

    def test_shed_expired_recredits_freed_wait(self, deployment, helmet_mini):
        """Shedding a doomed frame shortens the wait of frames behind it;
        the same pass must re-judge them against the shortened bound and
        keep a frame the shed just made viable (only provably-stale frames
        go)."""
        from repro.runtime import EventLoop, FifoResource
        from repro.runtime.serving import _CameraStream

        loop = EventLoop()
        camera = _CameraStream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=10.0, max_edge_queue=30),
            np.ones(len(helmet_mini), dtype=bool),
            None,
            loop=loop,
            edge=FifoResource(loop, "edge"),
            uplink=(uplink := FifoResource(loop, "uplink")),
            cloud=FifoResource(loop, "cloud"),
            record_for=lambda index: index % len(helmet_mini),
        )
        deadline = 2.0
        # a foreign long job holds the uplink, so neither frame starts service
        uplink.acquire(100.0, lambda _t: None)
        # frame A: arrived far in the past -> provably doomed at now = 0
        camera._on_frame(0, -10.0)
        # frame B: doomed only while A's service time sits ahead of it
        entry_a = deployment.link.expected_transfer_time(deployment.codec.encoded_bytes(helmet_mini.records[0]))
        viable_arrival = camera._min_remaining(1) - deadline + 0.5 * entry_a
        camera._on_frame(1, viable_arrival)
        assert camera.shed_expired(deadline) == 1
        assert camera.shed == 1
        assert [entry[2] for entry in camera._waiting] == [1]  # B survives

    def test_unsaturated_stream_unaffected_by_admission(self, deployment, helmet_mini, small_batch):
        """With no buffer pressure every admission policy is a no-op."""
        config = StreamConfig(fps=2.0, duration_s=15.0, poisson=False)
        reports = [
            simulate_stream(
                edge_only_scheme(),
                deployment,
                helmet_mini,
                config,
                detections=small_batch,
                admission=admission,
                seed=5,
            )
            for admission in (DropNewest(), DropOldest(), DeadlineAware(freshness_s=5.0))
        ]
        assert reports[0] == reports[1] == reports[2]
        assert reports[0].frames_dropped == 0


# --------------------------------------------------------------------- #
# heterogeneous fleets (per-camera specs)
# --------------------------------------------------------------------- #
class TestHeterogeneousFleet:
    BASE = StreamConfig(fps=1.5, duration_s=20.0)

    def _specs(self, small_batch, big_batch):
        return [
            CameraSpec(),
            CameraSpec(config=StreamConfig(fps=4.0, duration_s=20.0)),
            CameraSpec(scheme=edge_only_scheme(), detections=small_batch),
            CameraSpec(
                scheme=cloud_only_scheme(),
                detections=big_batch,
                admission=DeadlineAware(freshness_s=2.0),
            ),
        ]

    def _mask(self, helmet_mini):
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::3] = True
        return mask

    def _run(self, deployment, helmet_mini, small_batch, big_batch):
        mask = self._mask(helmet_mini)
        served = DetectionBatch.where(mask, big_batch, small_batch)
        return simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.BASE,
            cameras=self._specs(small_batch, big_batch),
            mask=mask,
            detections=served,
            seed=5,
        )

    def test_mixed_fleet_deterministic(self, deployment, helmet_mini, small_batch, big_batch):
        runs = [self._run(deployment, helmet_mini, small_batch, big_batch) for _ in range(2)]
        assert runs[0] == runs[1]
        assert len(runs[0].cameras) == 4

    def test_per_camera_schemes_and_rates_honored(self, deployment, helmet_mini, small_batch, big_batch):
        fleet = self._run(deployment, helmet_mini, small_batch, big_batch)
        assert fleet.scheme == "mixed"
        default, fast, edge, cloud = fleet.cameras
        assert default.scheme == "collaborative" and edge.scheme == "edge" and cloud.scheme == "cloud"
        # the 4 fps camera offers ~2.7x the frames of the 1.5 fps default
        assert fast.frames_offered > 2 * default.frames_offered
        # the fleet-level mask must not leak into cameras with their own scheme
        assert edge.frames_uploaded == 0
        assert cloud.frames_uploaded == cloud.frames_served
        assert 0 < default.frames_uploaded < default.frames_served
        assert fleet.frames_offered == sum(camera.frames_offered for camera in fleet.cameras)

    def test_int_cameras_equal_default_specs(self, deployment, helmet_mini, small_batch, big_batch):
        mask = self._mask(helmet_mini)
        served = DetectionBatch.where(mask, big_batch, small_batch)
        kwargs = dict(mask=mask, detections=served, seed=5)
        by_count = simulate_fleet(
            collaborative_scheme(), deployment, helmet_mini, self.BASE, cameras=4, **kwargs
        )
        by_specs = simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.BASE,
            cameras=[CameraSpec()] * 4,
            **kwargs,
        )
        assert by_count == by_specs

    def test_per_camera_dataset_quality_drift(self, deployment, helmet_mini, small_batch):
        """A night camera rides the same scenes under degraded imagery."""
        from repro.data.degrade import DegradationModel
        from repro.simulate import make_detector

        night = helmet_mini.with_degradation(
            DegradationModel(degraded_fraction=0.9, min_quality=0.45, max_quality=0.7),
            scope="night",
        )
        assert night.image_ids == helmet_mini.image_ids
        night_small = DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(night))
        fleet = simulate_fleet(
            edge_only_scheme(),
            deployment,
            helmet_mini,
            self.BASE,
            cameras=[CameraSpec(), CameraSpec(dataset=night, detections=night_small)],
            detections=small_batch,
            seed=5,
        )
        assert len(fleet.cameras) == 2
        # the night camera's log indexes the shared record order, so the
        # fleet evaluates against one ground truth
        windows = rolling_quality(fleet, helmet_mini, window_s=20.0, duration_s=20.0)
        assert windows[0].frames == fleet.frames_offered

    def test_dataset_override_requires_own_detections(self, deployment, helmet_mini, small_batch):
        night = helmet_mini.subset(len(helmet_mini))
        with pytest.raises(RuntimeModelError, match="detections"):
            simulate_fleet(
                edge_only_scheme(),
                deployment,
                helmet_mini,
                self.BASE,
                cameras=[CameraSpec(), CameraSpec(dataset=night)],
                detections=small_batch,
                seed=5,
            )

    def test_empty_spec_list_rejected(self, deployment, helmet_mini):
        with pytest.raises(RuntimeModelError):
            simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.BASE, cameras=[])


# --------------------------------------------------------------------- #
# degenerate-input guards (zero denominators)
# --------------------------------------------------------------------- #
class TestDegenerateGuards:
    def _cost(self, uplink_bytes: int, uploads: int = 0, total: int = 10) -> RunCost:
        from repro.metrics.latency import summarize_latencies

        return RunCost(
            latency=summarize_latencies([0.1] * total),
            uploaded_images=uploads,
            total_images=total,
            uplink_bytes=uplink_bytes,
            downlink_bytes=0,
        )

    def test_bandwidth_saving_over_free_baseline_is_nan(self):
        """A 'saving' over a baseline that uploaded nothing is undefined —
        returning 0.0 would paint a plenty-uploading run as break-even."""
        ours = self._cost(uplink_bytes=123_456, uploads=5)
        free = self._cost(uplink_bytes=0)
        assert math.isnan(ours.bandwidth_saving_over(free))
        # 0 over 0 is just as undefined
        assert math.isnan(free.bandwidth_saving_over(free))

    def test_bandwidth_saving_over_regular_baseline(self):
        ours = self._cost(uplink_bytes=500, uploads=5)
        cloud = self._cost(uplink_bytes=1000, uploads=10)
        assert ours.bandwidth_saving_over(cloud) == pytest.approx(0.5)
        assert cloud.bandwidth_saving_over(cloud) == 0.0

    def test_upload_ratio_of_empty_run_is_zero(self):
        from repro.metrics.latency import summarize_latencies

        empty = RunCost(
            latency=summarize_latencies([]),
            uploaded_images=0,
            total_images=0,
            uplink_bytes=0,
            downlink_bytes=0,
        )
        assert empty.upload_ratio == 0.0

    def test_stream_report_rates_with_zero_frames(self):
        from repro.metrics.latency import summarize_latencies
        from repro.runtime import StreamReport

        report = StreamReport(
            scheme="edge",
            latency=summarize_latencies([]),
            frames_offered=0,
            frames_served=0,
            frames_dropped=0,
            frames_uploaded=0,
            edge_utilization=0.0,
            uplink_utilization=0.0,
            cloud_utilization=0.0,
        )
        assert report.drop_rate == 0.0
        assert report.upload_ratio == 0.0

    def test_fifo_utilization_degenerate_elapsed(self):
        from repro.runtime import EventLoop, FifoResource

        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        resource.acquire(1.0, lambda _t: None)
        loop.run()
        assert resource.utilization(0.0) == 0.0
        assert resource.utilization(-1.0) == 0.0
        # and the capped regular case still reports correctly
        assert resource.utilization(2.0) == pytest.approx(0.5)
        assert resource.utilization(0.5) == 1.0
