"""Tests for the unified serving pipeline: schemes, policies, fleet, rolling.

Exact equality with the pre-refactor per-scheme implementations lives in
``test_serving_equivalence.py``; here we test the *new* surface — the
offload-policy protocol, policy-driven scheme runs through both engines,
the multi-camera fleet simulator, and the rolling online quality metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BlurUploadPolicy,
    CloudOnlyPolicy,
    ConfidenceUploadPolicy,
    EdgeOnlyPolicy,
    RandomUploadPolicy,
)
from repro.core.discriminator import DifficultCaseDiscriminator, DiscriminatorPolicy
from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import RuntimeModelError
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    AlwaysOffload,
    Deployment,
    EdgeCloudRuntime,
    NeverOffload,
    OffloadPolicy,
    StreamConfig,
    StreamSimulator,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    paper_schemes,
    simulate_fleet,
    simulate_stream,
)
from repro.simulate import make_detector


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def small_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def discriminator(helmet_mini):
    train = load_dataset("helmet", "train", fraction=0.2)
    small = make_detector("small1", "helmet").detect_split(train)
    big = make_detector("ssd", "helmet").detect_split(train)
    fitted, _ = DifficultCaseDiscriminator.fit(small, big, train.truths)
    return fitted


def all_policies(discriminator, seed=7):
    return [
        DiscriminatorPolicy(discriminator),
        ConfidenceUploadPolicy(ratio=0.3),
        RandomUploadPolicy(ratio=0.3, seed=seed),
        BlurUploadPolicy(ratio=0.3),
        NeverOffload(),
        AlwaysOffload(),
        EdgeOnlyPolicy(),
        CloudOnlyPolicy(),
    ]


class TestOffloadProtocol:
    def test_every_policy_satisfies_protocol(self, discriminator):
        for policy in all_policies(discriminator):
            assert isinstance(policy, OffloadPolicy), type(policy).__name__

    def test_policy_masks_aligned(self, discriminator, helmet_mini, small_batch):
        for policy in all_policies(discriminator):
            mask = policy.select(helmet_mini, small_batch)
            assert mask.dtype == bool and mask.shape == (len(helmet_mini),)

    def test_degenerate_policies_need_no_detections(self, helmet_mini):
        assert not NeverOffload().select(helmet_mini).any()
        assert AlwaysOffload().select(helmet_mini).all()
        assert not EdgeOnlyPolicy().select(helmet_mini).any()
        assert CloudOnlyPolicy().select(helmet_mini).all()

    def test_paper_schemes_shapes(self):
        schemes = paper_schemes()
        assert set(schemes) == {"edge", "cloud", "collaborative"}
        assert schemes["edge"].edge_compute and not schemes["edge"].edge_discriminates
        assert not schemes["cloud"].edge_compute
        assert schemes["collaborative"].edge_compute
        assert schemes["collaborative"].edge_discriminates

    def test_policyless_scheme_requires_mask(self, deployment, helmet_mini):
        runtime = EdgeCloudRuntime(deployment=deployment)
        with pytest.raises(RuntimeModelError):
            runtime.run_scheme(collaborative_scheme(), helmet_mini)

    def test_detection_needing_policy_without_detections_is_diagnosable(self, deployment, helmet_mini, discriminator):
        """Every policy that needs the small model's output raises the same
        configuration error naming the missing input, not a bare TypeError."""
        from repro.errors import ConfigurationError

        runtime = EdgeCloudRuntime(deployment=deployment)
        for policy in (
            ConfidenceUploadPolicy(ratio=0.3),
            RandomUploadPolicy(ratio=0.3),
            BlurUploadPolicy(ratio=0.3),
            DiscriminatorPolicy(discriminator),
        ):
            with pytest.raises(ConfigurationError, match="detections"):
                runtime.run_scheme(collaborative_scheme(policy), helmet_mini)


class TestPoliciesThroughBothEngines:
    """All five policy families drive the static executor and the stream
    simulator through the one shared protocol."""

    def test_static_engine_accepts_every_policy(self, deployment, helmet_mini, small_batch, discriminator):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=3)
        for policy in all_policies(discriminator):
            scheme = collaborative_scheme(policy, name=policy.name)
            cost = runtime.run_scheme(scheme, helmet_mini, small_detections=small_batch)
            expected = policy.select(helmet_mini, small_batch)
            assert cost.uploaded_images == int(expected.sum())
            assert cost.total_images == len(helmet_mini)

    def test_stream_engine_accepts_every_policy(self, deployment, helmet_mini, small_batch, discriminator):
        simulator = StreamSimulator(deployment, helmet_mini, seed=3)
        config = StreamConfig(fps=2.0, duration_s=10.0, poisson=False)
        for policy in all_policies(discriminator):
            scheme = collaborative_scheme(policy, name=policy.name)
            report = simulator.run_scheme(scheme, config, small_detections=small_batch)
            assert report.scheme == policy.name
            assert report.frames_served == report.frames_offered  # light load
            mask = policy.select(helmet_mini, small_batch)
            if not mask.any():
                assert report.frames_uploaded == 0
            if mask.all():
                assert report.frames_uploaded == report.frames_served

    def test_policy_mask_equals_explicit_mask(self, deployment, helmet_mini, small_batch, discriminator):
        """A policy-driven run is identical to supplying its mask explicitly."""
        runtime = EdgeCloudRuntime(deployment=deployment, seed=11)
        policy = DiscriminatorPolicy(discriminator)
        scheme = collaborative_scheme(policy)
        mask = policy.select(helmet_mini, small_batch)
        by_policy = runtime.run_scheme(scheme, helmet_mini, small_detections=small_batch)
        by_mask = runtime.run_collaborative(helmet_mini, mask)
        assert by_policy == by_mask


class TestFleetSimulator:
    CONFIG = StreamConfig(fps=1.5, duration_s=20.0)

    def test_deterministic_at_eight_cameras(self, deployment, helmet_mini, small_batch):
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::4] = True
        runs = [
            simulate_fleet(
                collaborative_scheme(),
                deployment,
                helmet_mini,
                self.CONFIG,
                cameras=8,
                mask=mask,
                seed=5,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]  # dataclass equality covers every field
        assert len(runs[0].cameras) == 8

    def test_totals_sum_over_cameras(self, deployment, helmet_mini):
        fleet = simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=8, seed=5)
        for name in ("frames_offered", "frames_served", "frames_dropped", "frames_uploaded"):
            assert getattr(fleet, name) == sum(getattr(c, name) for c in fleet.cameras)
        assert fleet.latency.count == sum(c.latency.count for c in fleet.cameras)

    def test_shared_uplink_contention(self, deployment, helmet_mini):
        """Adding cameras saturates the shared uplink under cloud-only."""
        single = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=1, seed=5)
        fleet = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=8, seed=5)
        assert fleet.uplink_utilization >= single.uplink_utilization
        assert fleet.uplink_utilization > 0.95
        assert fleet.drop_rate > 0.2 or fleet.latency.p50 > 1.0
        # Shared-resource utilizations are reported identically per camera.
        for camera in fleet.cameras:
            assert camera.uplink_utilization == fleet.uplink_utilization
            assert camera.cloud_utilization == fleet.cloud_utilization

    def test_collaborative_fleet_outscales_cloud_only(
        self,
        deployment,
        helmet_mini,
        small_batch,
        big_batch,
        discriminator,
    ):
        # Long enough that cloud-only overruns even the per-camera buffers.
        config = StreamConfig(fps=1.5, duration_s=90.0)
        mask = discriminator.decide_split(small_batch)
        collab = simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            config,
            cameras=8,
            mask=mask,
            seed=5,
        )
        cloud = simulate_fleet(cloud_only_scheme(), deployment, helmet_mini, config, cameras=8, seed=5)
        assert collab.drop_rate == 0.0
        assert cloud.drop_rate > 0.1
        assert collab.latency.p50 < cloud.latency.p50

    def test_cameras_cover_different_records(self, deployment, helmet_mini, small_batch):
        fleet = simulate_fleet(
            edge_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=10.0, poisson=False),
            cameras=4,
            detections=small_batch,
            seed=5,
        )
        starts = [int(camera.frame_records[0]) for camera in fleet.cameras]
        assert len(set(starts)) == 4  # staggered offsets into the split

    def test_invalid_camera_count_rejected(self, deployment, helmet_mini):
        with pytest.raises(RuntimeModelError):
            simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=0)


class TestRollingQuality:
    CONFIG = StreamConfig(fps=4.0, duration_s=24.0, poisson=False)

    def _stream(self, deployment, dataset, batch, scheme, cameras=None, **kwargs):
        if cameras is None:
            return simulate_stream(scheme, deployment, dataset, self.CONFIG, detections=batch, seed=9, **kwargs)
        return simulate_fleet(
            scheme,
            deployment,
            dataset,
            self.CONFIG,
            cameras=cameras,
            detections=batch,
            seed=9,
            **kwargs,
        )

    def test_windows_tile_the_horizon(self, deployment, helmet_mini, small_batch):
        report = self._stream(deployment, helmet_mini, small_batch, edge_only_scheme())
        windows = rolling_quality(report, helmet_mini, window_s=6.0, duration_s=24.0)
        assert [w.t_start for w in windows] == [0.0, 6.0, 12.0, 18.0]
        assert all(w.t_end - w.t_start == 6.0 for w in windows)
        # arrival-keyed windows cover every offered frame exactly once
        assert sum(w.frames for w in windows) == report.frames_offered
        assert all(w.frames == w.served + w.dropped + w.stale for w in windows)

    def test_quality_bounded_and_counts_consistent(self, deployment, helmet_mini, big_batch):
        report = self._stream(deployment, helmet_mini, big_batch, cloud_only_scheme())
        for window in rolling_quality(report, helmet_mini, window_s=8.0):
            assert 0.0 <= window.map_percent <= 100.0
            assert 0 <= window.detected_objects <= window.true_objects
            assert 0.0 <= window.count_error_percent <= 100.0

    def test_drops_degrade_measured_quality(self, deployment, helmet_mini, big_batch):
        """The same scheme, saturated, must score worse — drops are quality."""
        light = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=24.0, poisson=False),
            detections=big_batch,
            seed=9,
        )
        saturated = self._stream(deployment, helmet_mini, big_batch, cloud_only_scheme(), cameras=8)
        assert saturated.drop_rate > light.drop_rate
        light_map = np.mean([w.map_percent for w in rolling_quality(light, helmet_mini, window_s=24.0)])
        saturated_map = np.mean([w.map_percent for w in rolling_quality(saturated, helmet_mini, window_s=24.0)])
        assert saturated_map < light_map

    def test_fleet_reports_merge_all_cameras(self, deployment, helmet_mini, small_batch):
        fleet = self._stream(deployment, helmet_mini, small_batch, edge_only_scheme(), cameras=3)
        windows = rolling_quality(fleet, helmet_mini, window_s=24.0, duration_s=24.0)
        assert len(windows) == 1
        assert windows[0].frames == sum(
            int(((c.frame_times >= 0) & (c.frame_times < 24.0)).sum()) for c in fleet.cameras
        )

    def test_report_without_frame_log_rejected(self, deployment, helmet_mini):
        from repro.errors import ConfigurationError

        report = simulate_stream(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, seed=9)
        with pytest.raises(ConfigurationError):
            rolling_quality(report, helmet_mini)
