"""Static checks of the example scripts.

The examples run full calibrations (minutes each), so executing them is the
job of humans/CI-nightly; here we verify each one compiles, is documented,
and exposes the ``main()``/``__main__`` entry-point contract the README
promises.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "helmet_site_monitoring.py",
        "baseline_comparison.py",
        "threshold_tuning.py",
        "upload_ratio_sweep.py",
        "video_stream.py",
        "stream_fleet.py",
        "admission_control.py",
        "auto_compression.py",
        "closed_loop_control.py",
        "outage_recovery.py",
        "trace_driven_network.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    assert tree is not None


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring and "Run:" in docstring


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source
    tree = ast.parse(source)
    functions = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in functions


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro import in an example must exist in the package."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), f"{path.name}: {node.module}.{alias.name} missing"
