"""Failure-injection tests: corrupted caches, adversarial inputs, edge cases.

A production library must degrade gracefully when its environment
misbehaves; these tests corrupt the detection cache, feed degenerate scenes
through the pipeline and push the simulator to its parameter extremes.
"""

from __future__ import annotations

import numpy as np

from repro.core.discriminator import DifficultCaseDiscriminator
from repro.core.features import extract_features
from repro.data.datasets import load_dataset
from repro.detection.types import Detections, GroundTruth
from repro.experiments import Harness, HarnessConfig
from repro.metrics.voc_ap import mean_average_precision
from repro.simulate.detector import SimulatedDetector
from repro.simulate.profile import DetectorProfile


class TestCacheCorruption:
    def _harness(self, tmp_path):
        base = HarnessConfig.quick()
        return Harness(
            HarnessConfig(
                seed=base.seed,
                train_images=base.train_images,
                test_fraction=0.02,
                cache_dir=str(tmp_path),
            )
        )

    def test_garbage_cache_file_is_recomputed(self, tmp_path):
        harness = self._harness(tmp_path)
        original = harness.detections("small1", "voc07", "test")
        cache_files = list(tmp_path.glob("det-*.npz"))
        assert cache_files
        for path in cache_files:
            path.write_bytes(b"this is not a numpy archive")
        fresh = Harness(
            HarnessConfig(
                seed=harness.config.seed,
                train_images=harness.config.train_images,
                test_fraction=0.02,
                cache_dir=str(tmp_path),
            )
        )
        recomputed = fresh.detections("small1", "voc07", "test")
        assert len(recomputed) == len(original)
        for a, b in zip(original, recomputed):
            np.testing.assert_allclose(a.boxes, b.boxes)

    def test_truncated_cache_file_is_recomputed(self, tmp_path):
        harness = self._harness(tmp_path)
        harness.detections("small1", "voc07", "test")
        for path in tmp_path.glob("det-*.npz"):
            payload = path.read_bytes()
            path.write_bytes(payload[: len(payload) // 3])
        fresh = Harness(
            HarnessConfig(
                seed=harness.config.seed,
                train_images=harness.config.train_images,
                test_fraction=0.02,
                cache_dir=str(tmp_path),
            )
        )
        assert fresh.detections("small1", "voc07", "test")

    def test_wrong_size_cache_rejected(self, tmp_path):
        harness = self._harness(tmp_path)
        harness.detections("small1", "voc07", "test")
        # A different test fraction must not reuse the old cache entries.
        other = Harness(
            HarnessConfig(
                seed=harness.config.seed,
                train_images=harness.config.train_images,
                test_fraction=0.04,
                cache_dir=str(tmp_path),
            )
        )
        detections = other.detections("small1", "voc07", "test")
        assert len(detections) == len(other.dataset("voc07", "test"))


class TestDegenerateInputs:
    def test_map_of_empty_detection_lists(self):
        truths = [GroundTruth("a", np.array([[0.1, 0.1, 0.4, 0.4]]), np.array([0]))]
        value = mean_average_precision([Detections.empty("a")], truths, 1)
        assert value == 0.0

    def test_discriminator_on_empty_detections(self):
        discriminator = DifficultCaseDiscriminator(0.15, 2, 0.31)
        verdict = discriminator.decide(Detections.empty("x"))
        # No boxes at either threshold: counts agree -> easy.
        assert verdict is False

    def test_features_with_all_boxes_below_noise_threshold(self):
        boxes = np.array([[0.1, 0.1, 0.3, 0.3]])
        dets = Detections("x", boxes, np.array([0.05]), np.array([0]), "t")
        features = extract_features(dets, noise_threshold=0.2)
        assert features.n_estimated == 0 and features.min_area_estimated == 1.0

    def test_detector_on_maximally_crowded_scene(self):
        rng = np.random.default_rng(3)
        count = 40
        mins = rng.uniform(0, 0.9, size=(count, 2))
        boxes = np.concatenate([mins, np.minimum(mins + 0.08, 1.0)], axis=1)
        truth = GroundTruth("crowded", boxes, np.zeros(count, dtype=np.int64))
        from repro.data.datasets import ImageRecord
        from repro.data.degrade import PRISTINE

        record = ImageRecord(truth=truth, degradation=PRISTINE, render_seed=1)
        detector = SimulatedDetector(DetectorProfile(name="t"), num_classes=20, seed=0)
        detections = detector.detect(record)
        assert len(detections) <= count * 2 + 20  # bounded output

    def test_profile_extremes_still_valid_detections(self):
        dataset = load_dataset("voc07", "test", fraction=0.004)
        for base_recall in (1e-3, 24.0):
            detector = SimulatedDetector(
                DetectorProfile(name=f"x{base_recall}", base_recall=base_recall),
                num_classes=20,
                seed=0,
            )
            for record in dataset.records:
                dets = detector.detect(record)
                if len(dets):
                    assert dets.scores.min() >= 0.0
                    assert dets.scores.max() <= 1.0
                    assert (dets.boxes >= 0.0).all() and (dets.boxes <= 1.0).all()

    def test_discriminator_fit_on_single_image_split(self):
        dataset = load_dataset("voc07", "train", fraction=1 / 5011)
        detector = SimulatedDetector(DetectorProfile(name="t"), 20, seed=0)
        dets = detector.detect_split(dataset)
        discriminator, report = DifficultCaseDiscriminator.fit(dets, dets, dataset.truths)
        # Identical small/big output: nothing is difficult.
        assert report.difficult_fraction == 0.0
        assert discriminator.count_threshold >= 1
