"""Tests for the upload-policy baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BlurUploadPolicy,
    CloudOnlyPolicy,
    ConfidenceUploadPolicy,
    EdgeOnlyPolicy,
    RandomUploadPolicy,
    mean_top1_confidence,
    quota_mask,
)
from repro.detection.types import Detections
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def voc_mini():
    from repro.data import load_dataset

    return load_dataset("voc07", "test", fraction=0.02)


@pytest.fixture(scope="module")
def small_dets(voc_mini):
    from repro.simulate import make_detector

    return make_detector("small1", "voc07").detect_split(voc_mini)


class TestQuotaMask:
    def test_selects_exact_count(self):
        mask = quota_mask(np.array([5.0, 1.0, 3.0, 2.0]), 0.5)
        assert mask.sum() == 2
        assert mask.tolist() == [True, False, True, False]

    def test_zero_ratio(self):
        assert quota_mask(np.ones(4), 0.0).sum() == 0

    def test_full_ratio(self):
        assert quota_mask(np.ones(4), 1.0).sum() == 4

    def test_ties_broken_by_index(self):
        mask = quota_mask(np.array([1.0, 1.0, 1.0, 1.0]), 0.5)
        assert mask.tolist() == [True, True, False, False]

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            quota_mask(np.ones(3), 1.5)


class TestTrivialPolicies:
    def test_edge_only(self, voc_mini, small_dets):
        mask = EdgeOnlyPolicy().select(voc_mini, small_dets)
        assert mask.sum() == 0

    def test_cloud_only(self, voc_mini, small_dets):
        mask = CloudOnlyPolicy().select(voc_mini, small_dets)
        assert mask.sum() == len(voc_mini)

    def test_misaligned_rejected(self, voc_mini, small_dets):
        with pytest.raises(ConfigurationError):
            EdgeOnlyPolicy().select(voc_mini, small_dets[:-1])


class TestRandomPolicy:
    def test_ratio_respected(self, voc_mini, small_dets):
        mask = RandomUploadPolicy(ratio=0.5, seed=1).select(voc_mini, small_dets)
        assert mask.sum() == round(0.5 * len(voc_mini))

    def test_deterministic_in_seed(self, voc_mini, small_dets):
        a = RandomUploadPolicy(ratio=0.5, seed=1).select(voc_mini, small_dets)
        b = RandomUploadPolicy(ratio=0.5, seed=1).select(voc_mini, small_dets)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_selection(self, voc_mini, small_dets):
        a = RandomUploadPolicy(ratio=0.5, seed=1).select(voc_mini, small_dets)
        b = RandomUploadPolicy(ratio=0.5, seed=2).select(voc_mini, small_dets)
        assert (a != b).any()

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomUploadPolicy(ratio=-0.1)


class TestBlurPolicy:
    def test_uploads_blurriest(self, voc_mini, small_dets):
        policy = BlurUploadPolicy(ratio=0.3, render_size=48)
        sharpness = policy.sharpness(voc_mini)
        mask = policy.select(voc_mini, small_dets)
        assert mask.sum() == round(0.3 * len(voc_mini))
        # Every uploaded image is at most as sharp as every kept image
        # (up to quota ties).
        assert sharpness[mask].max() <= np.partition(sharpness, mask.sum())[
            mask.sum()
        ] + 1e-6

    def test_degraded_images_prioritised(self, small_dets):
        from repro.data import load_dataset

        helmet = load_dataset("helmet", "test", fraction=0.1)
        from repro.simulate import make_detector

        dets = make_detector("small1", "helmet").detect_split(helmet)
        policy = BlurUploadPolicy(ratio=0.4, render_size=48)
        mask = policy.select(helmet, dets)
        qualities = np.array([r.quality for r in helmet.records])
        # Uploaded images should be lower quality on average.
        assert qualities[mask].mean() < qualities[~mask].mean()


class TestConfidencePolicy:
    def test_mean_top1_present_classes(self):
        dets = Detections(
            "x",
            np.tile([0.1, 0.1, 0.3, 0.3], (3, 1)),
            np.array([0.9, 0.7, 0.6]),
            np.array([0, 0, 4]),
            "t",
        )
        # class 0 top-1 = 0.9, class 4 top-1 = 0.6 -> mean 0.75
        assert mean_top1_confidence(dets, 20) == pytest.approx(0.75)

    def test_empty_detections_score_zero(self):
        assert mean_top1_confidence(Detections.empty("x"), 20) == 0.0

    def test_least_confident_uploaded(self, voc_mini, small_dets):
        policy = ConfidenceUploadPolicy(ratio=0.5)
        mask = policy.select(voc_mini, small_dets)
        confidences = np.array([mean_top1_confidence(d, voc_mini.num_classes) for d in small_dets])
        assert confidences[mask].mean() < confidences[~mask].mean()

    def test_ratio_respected(self, voc_mini, small_dets):
        mask = ConfidenceUploadPolicy(ratio=0.25).select(voc_mini, small_dets)
        assert mask.sum() == round(0.25 * len(voc_mini))
