"""Lifecycle and equivalence suite for the zero-copy data plane.

Three invariants, each enforced bit-for-bit or segment-for-segment:

* **Equivalence** — batches transported through shared memory (and spans
  resolved from fork-inherited snapshots) are byte-identical to the serial
  / pickle path, dtype included.
* **No leaks** — ``/dev/shm`` carries zero arena segments after normal pool
  shutdown, after a worker exception, and after ``WorkerPool.__exit__`` on
  an error path (checked via :func:`repro.runtime.shm.leaked_segments`).
* **Fallbacks are exact** — oversized segments, post-start registrations,
  ``REPRO_SHM=0`` and serial pools all fall back to pickling with identical
  bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import ConfigurationError, GeometryError
from repro.runtime.parallel import detect_records, run_spans, shard_spans
from repro.runtime.pool import (
    WorkerPool,
    inherited_token,
    inherited_value,
    register_inherited,
)
from repro.runtime.shm import (
    SharedArena,
    SharedBatchHandle,
    adopt_batch,
    leaked_segments,
    share_batch,
    shm_supported,
)

pytestmark = pytest.mark.skipif(not shm_supported(), reason="no /dev/shm on this platform")


def assert_batches_identical(left: DetectionBatch, right: DetectionBatch) -> None:
    assert left.image_ids == right.image_ids
    assert left.detector == right.detector
    for name in ("boxes", "scores", "labels", "offsets"):
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), f"{name} differ"


@pytest.fixture(scope="module")
def split_small():
    """A 96-image slice of the VOC07 test split (module-local size)."""
    return load_dataset("voc07", "test", fraction=96 / 4952)


@pytest.fixture(scope="module")
def serial_batch(split_small, small1_voc07):
    return detect_records(small1_voc07, split_small.records)


class _ExplodingDetector:
    """Module-level (hence picklable) detector that always raises."""

    name = "exploding"

    def detect(self, record):
        raise RuntimeError("boom")


# --------------------------------------------------------------------- #
# share/adopt round-trip
# --------------------------------------------------------------------- #
def test_to_shared_round_trip_is_bit_for_bit(serial_batch):
    handle = serial_batch.to_shared(prefix="repro-test-rt")
    assert isinstance(handle, SharedBatchHandle)
    adopted = DetectionBatch.from_shared(handle)
    assert_batches_identical(adopted, serial_batch)
    # adoption unlinked the name immediately: nothing to leak, ever
    assert leaked_segments("repro-test-rt") == ()


def test_adopted_views_are_zero_copy_and_read_only(serial_batch):
    adopted = DetectionBatch.from_shared(serial_batch.to_shared(prefix="repro-test-zc"))
    base = adopted.boxes
    while getattr(base, "base", None) is not None:
        base = base.base
    import mmap

    assert isinstance(base, mmap.mmap)
    assert not adopted.boxes.flags.writeable
    with pytest.raises((ValueError, TypeError)):
        adopted.scores[0] = -1.0
    assert leaked_segments("repro-test-zc") == ()


def test_empty_batch_round_trips(small1_voc07):
    empty = DetectionBatch.from_list([], detector=small1_voc07.name)
    adopted = DetectionBatch.from_shared(empty.to_shared(prefix="repro-test-empty"))
    assert_batches_identical(adopted, empty)
    assert leaked_segments("repro-test-empty") == ()


def test_adopting_twice_raises(serial_batch):
    handle = serial_batch.to_shared(prefix="repro-test-once")
    adopt_batch(handle)
    with pytest.raises(ConfigurationError):
        adopt_batch(handle)


def test_to_shared_oversize_raises_and_share_batch_declines(serial_batch):
    with pytest.raises(GeometryError):
        serial_batch.to_shared(prefix="repro-test-big", max_bytes=8)
    assert share_batch(serial_batch, prefix="repro-test-big", max_bytes=8) is None
    assert leaked_segments("repro-test-big") == ()


def test_arena_sweeps_unadopted_handles(serial_batch):
    arena = SharedArena(prefix="repro-test-sweep")
    handle = share_batch(serial_batch, prefix=arena.prefix)
    assert arena.leaked() == (handle.name,)
    assert arena.sweep() == (handle.name,)
    assert arena.leaked() == ()
    with pytest.raises(ConfigurationError):
        adopt_batch(handle)  # swept, not adoptable


def test_arena_rejects_bad_prefix():
    with pytest.raises(ConfigurationError):
        SharedArena(prefix="has/slash")
    with pytest.raises(ConfigurationError):
        SharedArena(prefix="")


# --------------------------------------------------------------------- #
# pool transport equivalence + lifecycle
# --------------------------------------------------------------------- #
def test_run_spans_over_pool_matches_serial_with_zero_leaks(split_small, small1_voc07):
    records = split_small.records
    register_inherited(records)
    spans = shard_spans(len(records), 4)
    serial = [detect_records(small1_voc07, records, span) for span in spans]
    with WorkerPool(2) as pool:
        assert pool.shm_enabled
        prefix = pool.arena.prefix
        parts = run_spans(small1_voc07, records, spans, pool=pool)
        for got, want in zip(parts, serial):
            assert_batches_identical(got, want)
    assert leaked_segments(prefix) == ()


def test_worker_exception_leaves_no_segments(split_small):
    records = split_small.records
    register_inherited(records)
    spans = shard_spans(len(records), 4)
    with WorkerPool(2) as pool:
        prefix = pool.arena.prefix
        with pytest.raises(RuntimeError, match="boom"):
            run_spans(_ExplodingDetector(), records, spans, pool=pool)
    assert leaked_segments(prefix) == ()


def test_pool_exit_on_error_sweeps_arena(split_small, small1_voc07):
    records = split_small.records
    register_inherited(records)
    prefix = None
    with pytest.raises(RuntimeError, match="mid-drain"):
        with WorkerPool(2) as pool:
            prefix = pool.arena.prefix
            run_spans(small1_voc07, records, shard_spans(len(records), 4), pool=pool)
            raise RuntimeError("mid-drain")
    assert prefix is not None
    assert leaked_segments(prefix) == ()
    assert pool.closed


def test_oversized_shards_fall_back_to_pickle_exactly(split_small, small1_voc07):
    records = split_small.records
    register_inherited(records)
    spans = shard_spans(len(records), 4)
    serial = [detect_records(small1_voc07, records, span) for span in spans]
    with WorkerPool(2) as pool:
        pool.arena.max_segment_bytes = 8  # every shard is oversized
        assert pool.shm_transport.max_segment_bytes == 8
        prefix = pool.arena.prefix
        parts = run_spans(small1_voc07, records, spans, pool=pool)
        for got, want in zip(parts, serial):
            assert_batches_identical(got, want)
    assert leaked_segments(prefix) == ()


def test_repro_shm_env_disables_transport(monkeypatch, split_small, small1_voc07):
    monkeypatch.setenv("REPRO_SHM", "0")
    records = split_small.records
    register_inherited(records)
    spans = shard_spans(len(records), 2)
    serial = [detect_records(small1_voc07, records, span) for span in spans]
    with WorkerPool(2) as pool:
        assert not pool.shm_enabled
        assert pool.arena is None
        assert pool.shm_transport is None
        parts = run_spans(small1_voc07, records, spans, pool=pool)
        for got, want in zip(parts, serial):
            assert_batches_identical(got, want)


def test_serial_pool_has_no_transport():
    pool = WorkerPool(1)
    assert not pool.shm_enabled
    assert pool.shm_transport is None
    pool.shutdown()


# --------------------------------------------------------------------- #
# fork-inherited snapshot registry
# --------------------------------------------------------------------- #
def test_register_inherited_is_idempotent_by_identity():
    payload = ["a", "b"]
    token = register_inherited(payload)
    assert register_inherited(payload) == token
    assert inherited_token(payload) == token
    assert inherited_value(token) is payload
    assert inherited_token(["a", "b"]) is None  # equal but distinct object


def test_inherited_value_unknown_token_raises():
    with pytest.raises(ConfigurationError):
        inherited_value("inherit-0-does-not-exist")


def test_post_start_registration_falls_back_exactly(split_small, small1_voc07):
    with WorkerPool(2) as pool:
        # Force the executor up before the snapshot exists.
        assert pool.submit(len, (1, 2, 3)).result() == 3
        late = list(split_small.records)  # fresh object, never registered pre-fork
        token = register_inherited(late)
        assert not pool.inherits(token)
        spans = shard_spans(len(late), 2)
        serial = [detect_records(small1_voc07, late, span) for span in spans]
        parts = run_spans(small1_voc07, late, spans, pool=pool)
        for got, want in zip(parts, serial):
            assert_batches_identical(got, want)


def test_serial_pool_inherits_everything():
    pool = WorkerPool(1)
    token = register_inherited(object())
    assert pool.inherits(token)
    assert pool.inherits("inherit-never-registered")  # inline: any token resolves...
    pool.shutdown()


# --------------------------------------------------------------------- #
# serial submit exception semantics (satellite: BaseException must escape)
# --------------------------------------------------------------------- #
def test_serial_submit_puts_ordinary_errors_on_the_future():
    pool = WorkerPool(1)
    future = pool.submit(_raise, ValueError("bad"))
    with pytest.raises(ValueError, match="bad"):
        future.result()
    pool.shutdown()


def test_serial_submit_propagates_keyboard_interrupt():
    pool = WorkerPool(1)
    with pytest.raises(KeyboardInterrupt):
        pool.submit(_raise, KeyboardInterrupt())
    pool.shutdown()


def test_serial_submit_propagates_system_exit():
    pool = WorkerPool(1)
    with pytest.raises(SystemExit):
        pool.submit(_raise, SystemExit(2))
    pool.shutdown()


def _raise(exc):
    raise exc
