"""Edge cases of the time-varying link model.

:class:`RateSchedule` construction and integration (many-breakpoint spans,
exact-breakpoint starts, constant-schedule scalar identity), the
:class:`NetworkLink` mean-rate invariant, deferred-cost jobs on
:class:`FifoResource`, and the bundled trace loader.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, RuntimeModelError
from repro.runtime import (
    WLAN,
    EventLoop,
    FifoResource,
    NetworkLink,
    OutageSchedule,
    RateSchedule,
    UnreliableLink,
    bundled_trace,
    load_rate_trace,
)


class TestRateScheduleConstruction:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one breakpoint"):
            RateSchedule(times=(), rates_mbps=())

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="rate trace is empty"):
            RateSchedule.from_trace([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="lengths differ"):
            RateSchedule(times=(0.0, 1.0), rates_mbps=(5.0,))

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError, match="start at t=0"):
            RateSchedule(times=(1.0, 2.0), rates_mbps=(5.0, 3.0))

    def test_times_strictly_increasing(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            RateSchedule(times=(0.0, 2.0, 2.0), rates_mbps=(5.0, 3.0, 4.0))

    def test_zero_rate_directed_to_outage_schedule(self):
        with pytest.raises(ConfigurationError, match="OutageSchedule"):
            RateSchedule(times=(0.0, 1.0), rates_mbps=(5.0, 0.0))

    def test_trace_starting_late_extends_backwards(self):
        schedule = RateSchedule.from_trace([3.0, 5.0], [2.0, 4.0])
        assert schedule.times == (0.0, 3.0, 5.0)
        assert schedule.rates_mbps == (2.0, 2.0, 4.0)

    def test_periodic_places_dips(self):
        schedule = RateSchedule.periodic(
            base_mbps=5.0, dip_mbps=1.0, period_s=10.0, dip_s=2.0, duration_s=30.0, offset_s=4.0
        )
        assert schedule.rate_at(0.0) == 5.0
        assert schedule.rate_at(4.0) == 1.0
        assert schedule.rate_at(6.0) == 5.0
        assert schedule.rate_at(15.0) == 1.0
        assert schedule.rate_at(100.0) == 5.0

    def test_always_is_constant(self):
        schedule = RateSchedule.always(5.5)
        assert schedule.is_constant
        assert schedule.mean_rate_mbps == 5.5
        assert schedule.span_s == 0.0


class TestTransferDuration:
    def test_constant_schedule_matches_scalar_arithmetic_exactly(self):
        """The final-segment fast path is the scalar formula, bit for bit."""
        schedule = RateSchedule.always(5.5)
        for payload in (1, 997, 138840, 10**7):
            assert schedule.transfer_duration(0.0, payload) == payload * 8 / (5.5 * 1e6)
            assert schedule.transfer_duration(123.456, payload) == payload * 8 / (5.5 * 1e6)

    def test_zero_payload_is_free(self):
        schedule = RateSchedule.from_trace([0.0, 1.0], [5.0, 1.0])
        assert schedule.transfer_duration(0.5, 0) == 0.0

    def test_many_breakpoint_span_matches_manual_integration(self):
        """A transfer crossing many segments delivers exactly its payload."""
        times = [float(t) for t in range(50)]
        rates = [1.0 + (t % 7) * 0.5 for t in range(50)]
        schedule = RateSchedule.from_trace(times, rates)
        payload = 4_000_000  # 32 Mb: spans tens of 1-s segments
        start = 2.25
        duration = schedule.transfer_duration(start, payload)
        # Manually integrate capacity over [start, start + duration).
        delivered_mb = 0.0
        t = start
        end = start + duration
        while t < end:
            index = max(0, len([x for x in schedule.times if x <= t]) - 1)
            seg_end = schedule.times[index + 1] if index + 1 < len(schedule.times) else end
            step = min(seg_end, end) - t
            delivered_mb += step * schedule.rates_mbps[index]
            t += step
        assert delivered_mb == pytest.approx(payload * 8 / 1e6, rel=1e-12)

    def test_start_exactly_at_breakpoint_uses_new_rate(self):
        schedule = RateSchedule.from_trace([0.0, 10.0], [1.0, 4.0])
        # At t=10.0 the 4 Mbps segment (final, infinite) is in effect.
        assert schedule.transfer_duration(10.0, 500_000) == 500_000 * 8 / (4.0 * 1e6)
        # Just before, the transfer straddles the breakpoint and is slower.
        assert schedule.transfer_duration(9.999, 500_000) > schedule.transfer_duration(
            10.0, 500_000
        )

    def test_start_beyond_span_holds_final_rate(self):
        schedule = RateSchedule.from_trace([0.0, 10.0], [1.0, 4.0])
        assert schedule.transfer_duration(1000.0, 500_000) == 500_000 * 8 / (4.0 * 1e6)

    def test_transfer_spanning_dip_slower_than_around_it(self):
        schedule = RateSchedule.periodic(
            base_mbps=5.0, dip_mbps=0.5, period_s=20.0, dip_s=4.0, duration_s=20.0, offset_s=8.0
        )
        payload = 1_000_000
        in_dip = schedule.transfer_duration(8.0, payload)
        before = schedule.transfer_duration(0.0, payload)
        assert in_dip > before

    def test_scaled_by_float(self):
        schedule = RateSchedule.from_trace([0.0, 5.0], [2.0, 4.0])
        doubled = schedule.scaled(2.0)
        assert doubled.rates_mbps == (4.0, 8.0)
        assert doubled.times == schedule.times

    def test_scaled_by_schedule_merges_breakpoints(self):
        base = RateSchedule.from_trace([0.0, 10.0], [4.0, 2.0])
        scale = RateSchedule.from_trace([0.0, 5.0], [1.0, 0.5])
        product = base.scaled(scale)
        assert product.times == (0.0, 5.0, 10.0)
        assert product.rates_mbps == (4.0, 2.0, 1.0)


class TestNetworkLinkSchedule:
    def test_with_rate_schedule_keeps_mean_invariant(self):
        schedule = RateSchedule.from_trace([0.0, 10.0, 20.0], [8.0, 2.0, 5.0])
        link = WLAN.with_rate_schedule(schedule)
        assert link.bandwidth_mbps == schedule.mean_rate_mbps
        assert link.time_varying
        assert link.rtt_s == WLAN.rtt_s and link.jitter_s == WLAN.jitter_s

    def test_direct_mismatch_rejected(self):
        schedule = RateSchedule.from_trace([0.0, 10.0], [8.0, 2.0])
        with pytest.raises(ConfigurationError, match="with_rate_schedule"):
            NetworkLink(name="bad", bandwidth_mbps=5.5, schedule=schedule)

    def test_constant_schedule_is_not_time_varying(self):
        link = WLAN.with_rate_schedule(RateSchedule.always(WLAN.bandwidth_mbps))
        assert not link.time_varying
        assert link.transfer_duration(17.0, 10_000) == WLAN.expected_transfer_time(10_000)

    def test_time_varying_transfer_integrates_from_start(self):
        schedule = RateSchedule.from_trace([0.0, 10.0], [8.0, 2.0])
        link = WLAN.with_rate_schedule(schedule)
        fast = link.transfer_duration(0.0, 100_000)
        slow = link.transfer_duration(10.0, 100_000)
        assert fast == link.rtt_s / 2.0 + schedule.transfer_duration(0.0, 100_000)
        assert slow > fast

    def test_unreliable_wrap_carries_schedule(self):
        """`wrap` enumerates NetworkLink fields, so `schedule` survives."""
        scheduled = WLAN.with_rate_schedule(RateSchedule.from_trace([0.0, 10.0], [8.0, 2.0]))
        wrapped = UnreliableLink.wrap(scheduled, outages=OutageSchedule.always_up())
        assert wrapped.schedule == scheduled.schedule
        assert wrapped.bandwidth_mbps == scheduled.bandwidth_mbps
        assert wrapped.time_varying

    def test_wrap_then_reschedule(self):
        """`with_rate_schedule` works on the wrapper too (dataclasses.replace)."""
        wrapped = UnreliableLink.wrap(WLAN, loss_probability=0.1)
        scheduled = wrapped.with_rate_schedule(RateSchedule.from_trace([0.0, 10.0], [8.0, 2.0]))
        assert isinstance(scheduled, UnreliableLink)
        assert scheduled.loss_probability == 0.1
        assert scheduled.time_varying


class TestDeferredServiceCost:
    def test_service_fn_resolves_at_grant_time(self):
        loop = EventLoop()
        resource = FifoResource(loop, "uplink")
        grants: list[float] = []
        done: list[float] = []

        def cost(grant_time: float) -> float:
            grants.append(grant_time)
            return 2.0 if grant_time >= 3.0 else 1.0

        resource.acquire(3.0, done.append, service_fn=lambda t: 3.0)
        resource.acquire(1.0, done.append, service_fn=cost)
        loop.run()
        # Second job granted when the first completes at t=3 -> costs 2.0.
        assert grants == [3.0]
        assert done == [3.0, 5.0]

    def test_estimate_drives_queued_waits(self):
        loop = EventLoop()
        resource = FifoResource(loop, "uplink")
        resource.acquire(5.0, lambda _t: None, service_fn=lambda t: 5.0)  # in service
        handle = resource.acquire(1.0, lambda _t: None, service_fn=lambda t: 99.0)
        resource.acquire(1.0, lambda _t: None)
        waits = resource.queued_waits()
        # The waiting deferred job contributes its *estimate* (1.0), not the
        # resolved 99.0, to the job behind it.
        assert waits[0][0] is handle and waits[0][1] == 0.0
        assert waits[1][1] == 1.0

    def test_negative_resolved_duration_rejected(self):
        loop = EventLoop()
        resource = FifoResource(loop, "uplink")
        # The resource is idle, so the job enters service inside acquire()
        # and the bad resolved duration is rejected right there.
        with pytest.raises(RuntimeModelError, match="negative duration"):
            resource.acquire(1.0, lambda _t: None, service_fn=lambda t: -0.5)

    def test_fault_hook_sees_resolved_duration(self):
        outages = OutageSchedule(windows=((4.0, 6.0),))
        seen: list[tuple[float, float]] = []

        def faults(start: float, duration: float) -> tuple[float, bool]:
            seen.append((start, duration))
            failure = outages.failure_instant(start, duration)
            if failure is None:
                return duration, True
            return failure - start, False

        loop = EventLoop()
        resource = FifoResource(loop, "uplink", faults=faults)
        failed: list[float] = []
        resource.acquire(
            1.0, lambda _t: None, failed.append, service_fn=lambda t: 5.0
        )
        loop.run()
        # The hook saw the resolved 5.0 s duration, so the job hit the outage
        # at t=4 even though the caller's estimate (1.0 s) would have missed.
        assert seen == [(0.0, 5.0)]
        assert failed == [4.0]


class TestTraceLoader:
    def test_bundled_traces_load(self):
        lte = bundled_trace("lte_like")
        dip = bundled_trace("periodic_dip")
        scale = bundled_trace("mobility_scale")
        assert not lte.is_constant and not dip.is_constant and not scale.is_constant
        assert 0.3 <= min(lte.rates_mbps) <= 0.5  # the congestion trough
        assert min(dip.rates_mbps) < max(dip.rates_mbps)
        # The mobility profile is a dimensionless modulation around 1.0.
        assert 0.2 < min(scale.rates_mbps) < 1.0 < max(scale.rates_mbps) < 2.0

    def test_bundled_trace_cached(self):
        assert bundled_trace("lte_like") is bundled_trace("lte_like")

    def test_unknown_trace_lists_available(self):
        with pytest.raises(ConfigurationError, match="lte_like"):
            bundled_trace("no-such-trace")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_rate_trace(tmp_path / "absent.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_rate_trace(path)

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"times_s": [0.0, 1.0]}))
        with pytest.raises(ConfigurationError, match="'times_s' and 'mbps'"):
            load_rate_trace(path)

    def test_roundtrip_matches_from_trace(self, tmp_path):
        payload = {"times_s": [0.0, 2.0, 4.0], "mbps": [5.0, 1.0, 3.0]}
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        assert load_rate_trace(path) == RateSchedule.from_trace(
            payload["times_s"], payload["mbps"]
        )
