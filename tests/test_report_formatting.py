"""Tests for table/figure formatting and report rendering helpers."""

from __future__ import annotations

import math

from repro.experiments.formatting import (
    format_figure,
    format_table,
    format_table_markdown,
    sparkline,
)
from repro.experiments.report import _figure_markdown
from repro.experiments.results import FigureResult, TableResult


def _table(paper: bool = True) -> TableResult:
    return TableResult(
        table_id="XX",
        title="demo table",
        columns=("setting", "value"),
        rows=[
            {"setting": "a", "value": 1.234},
            {"setting": "b", "value": float("nan")},
        ],
        paper_rows=[{"setting": "a", "value": 1.5}] if paper else None,
        notes="a note",
    )


def _figure() -> FigureResult:
    return FigureResult(
        figure_id="9",
        title="demo figure",
        x_label="x",
        x_values=[0.0, 0.5, 1.0],
        series={"y": [1.0, 2.0, 3.0]},
        notes="figure note",
    )


class TestFormatTable:
    def test_contains_title_and_rows(self):
        text = format_table(_table())
        assert "Table XX" in text and "demo table" in text
        assert "1.23" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(_table())
        assert "-" in text.splitlines()[-2]

    def test_note_rendered(self):
        assert "a note" in format_table(_table())


class TestFormatMarkdown:
    def test_paper_columns_paired(self):
        markdown = format_table_markdown(_table())
        assert "value (measured)" in markdown and "value (paper)" in markdown
        assert "| a | 1.23 | 1.50 |" in markdown

    def test_without_paper_rows(self):
        markdown = format_table_markdown(_table(paper=False))
        assert "(paper)" not in markdown

    def test_missing_paper_row_dashes(self):
        markdown = format_table_markdown(_table())
        # Row "b" has no paper counterpart.
        assert any("| b |" in line and "| - |" in line for line in markdown.splitlines())


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_flat_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestFigureRendering:
    def test_text_rendering(self):
        text = format_figure(_figure())
        assert "Figure 9" in text and "y:" in text

    def test_markdown_rendering(self):
        markdown = _figure_markdown(_figure())
        assert "### Figure 9" in markdown
        assert "| y |" in markdown
        assert "figure note" in markdown

    def test_fig4_markdown_branch(self):
        figure = FigureResult(
            figure_id="4",
            title="scatter",
            x_label="area",
            x_values=[],
            series={
                "easy_count": [1.0, 2.0],
                "easy_min_area": [0.3, 0.4],
                "difficult_count": [4.0],
                "difficult_min_area": [0.01],
            },
        )
        markdown = _figure_markdown(figure)
        assert "difficult" in markdown and "easy" in markdown

    def test_table_result_helpers(self):
        table = _table()
        assert table.column("setting") == ["a", "b"]
        assert table.row_for("setting", "a")["value"] == 1.234
        assert math.isnan(table.row_for("setting", "b")["value"])
