"""Tests of the package-level public API (what the README shows)."""

from __future__ import annotations

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_system(self):
        system, report = repro.quickstart_system("voc07", train_images=300)
        record = repro.load_dataset("voc07", "test", fraction=0.002).records[0]
        detections, uploaded = system.process_image(record)
        assert isinstance(uploaded, bool)
        assert detections.image_id == record.image_id
        assert 0.0 <= report.difficult_fraction <= 1.0

    def test_quickstart_deterministic(self):
        system_a, _ = repro.quickstart_system("voc07", train_images=300)
        system_b, _ = repro.quickstart_system("voc07", train_images=300)
        assert (system_a.discriminator.confidence_threshold == system_b.discriminator.confidence_threshold)
        assert system_a.discriminator.area_threshold == pytest.approx(system_b.discriminator.area_threshold)

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.data
        import repro.detection
        import repro.experiments
        import repro.metrics
        import repro.runtime
        import repro.simulate
        import repro.zoo

        assert repro.core and repro.zoo and repro.data
        assert repro.detection and repro.metrics and repro.simulate
        assert repro.runtime and repro.baselines and repro.experiments
