"""Unit and property tests for the VOC AP evaluator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError
from repro.metrics.voc_ap import (
    evaluate_detections,
    mean_average_precision,
    precision_recall_curve,
    voc_ap_from_pr,
)


def _gt(boxes, labels, image_id="img0"):
    return GroundTruth(image_id, np.asarray(boxes, float), np.asarray(labels))


def _dets(boxes, scores, labels, image_id="img0"):
    return Detections(image_id, np.asarray(boxes, float), np.asarray(scores, float), np.asarray(labels), detector="t")


class TestVocApFromPr:
    def test_perfect_curve_gives_one(self):
        recall = np.linspace(0.1, 1.0, 10)
        precision = np.ones(10)
        assert voc_ap_from_pr(recall, precision, use_07_metric=True) == pytest.approx(1.0)
        assert voc_ap_from_pr(recall, precision, use_07_metric=False) == pytest.approx(1.0)

    def test_empty_curve_gives_zero(self):
        assert voc_ap_from_pr(np.zeros(0), np.zeros(0)) == 0.0

    def test_11_point_known_value(self):
        # Recall reaches 0.5 at precision 1.0: interpolated precision is 1.0
        # at recall points 0..0.5 (6 of 11 points) and 0 beyond.
        ap = voc_ap_from_pr(np.array([0.5]), np.array([1.0]), use_07_metric=True)
        assert ap == pytest.approx(6 / 11)

    def test_all_point_known_value(self):
        ap = voc_ap_from_pr(np.array([0.5]), np.array([1.0]), use_07_metric=False)
        assert ap == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            voc_ap_from_pr(np.zeros(3), np.zeros(2))

    @settings(max_examples=50)
    @given(
        n=st.integers(1, 30),
        seed=st.integers(0, 10_000),
        metric=st.booleans(),
    )
    def test_ap_bounded(self, n, seed, metric):
        rng = np.random.default_rng(seed)
        recall = np.sort(rng.uniform(0, 1, n))
        precision = rng.uniform(0, 1, n)
        ap = voc_ap_from_pr(recall, precision, use_07_metric=metric)
        assert 0.0 <= ap <= 1.0 + 1e-9


class TestPrecisionRecallCurve:
    def test_single_perfect_detection(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])]
        curve = precision_recall_curve(dets, gts, label=0)
        assert curve.num_gt == 1
        assert curve.recall[-1] == pytest.approx(1.0)
        assert curve.precision[-1] == pytest.approx(1.0)

    def test_false_positive_lowers_precision(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4], [0.6, 0.6, 0.9, 0.9]], [0.9, 0.8], [0, 0])]
        curve = precision_recall_curve(dets, gts, label=0)
        assert curve.precision[-1] == pytest.approx(0.5)
        assert curve.recall[-1] == pytest.approx(1.0)

    def test_recall_monotone_nondecreasing(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4], [0.5, 0.5, 0.8, 0.8]], [0, 0])]
        dets = [
            _dets(
                [[0.1, 0.1, 0.4, 0.4], [0.5, 0.5, 0.8, 0.8], [0.0, 0.0, 0.05, 0.05]],
                [0.9, 0.7, 0.8],
                [0, 0, 0],
            )
        ]
        curve = precision_recall_curve(dets, gts, label=0)
        assert (np.diff(curve.recall) >= -1e-12).all()

    def test_no_detections_empty_curve(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        curve = precision_recall_curve([Detections.empty("img0")], gts, label=0)
        assert curve.recall.size == 0 and curve.num_gt == 1

    def test_cross_image_pooling(self):
        gts = [
            _gt([[0.1, 0.1, 0.4, 0.4]], [0], "a"),
            _gt([[0.1, 0.1, 0.4, 0.4]], [0], "b"),
        ]
        dets = [
            _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0], "a"),
            Detections.empty("b"),
        ]
        curve = precision_recall_curve(dets, gts, label=0)
        assert curve.num_gt == 2
        assert curve.recall[-1] == pytest.approx(0.5)

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ConfigurationError):
            precision_recall_curve([Detections.empty("a")], [], label=0)


class TestEvaluateDetections:
    def test_classes_without_gt_skipped(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])]
        result = evaluate_detections(dets, gts, num_classes=5)
        assert set(result.per_class_ap) == {0}

    def test_map_is_mean_of_class_aps(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4], [0.5, 0.5, 0.8, 0.8]], [0, 1])]
        dets = [
            _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])  # class 1 entirely missed
        ]
        result = evaluate_detections(dets, gts, num_classes=2)
        expected = (result.per_class_ap[0] + result.per_class_ap[1]) / 2
        assert result.map == pytest.approx(expected)
        assert result.per_class_ap[1] == 0.0

    def test_map_percent(self):
        gts = [_gt([[0.1, 0.1, 0.4, 0.4]], [0])]
        dets = [_dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])]
        assert mean_average_precision(dets, gts, 1) == pytest.approx(100.0)

    def test_empty_dataset_gives_zero(self):
        result = evaluate_detections([], [], num_classes=3)
        assert result.map == 0.0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_map_bounded_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        gts, dets = [], []
        for i in range(4):
            n = int(rng.integers(1, 5))
            mins = rng.uniform(0, 0.6, (n, 2))
            sizes = rng.uniform(0.05, 0.3, (n, 2))
            boxes = np.concatenate([mins, np.minimum(mins + sizes, 1.0)], 1)
            labels = rng.integers(0, 3, n)
            gts.append(_gt(boxes, labels, f"im{i}"))
            m = int(rng.integers(0, 6))
            dmins = rng.uniform(0, 0.6, (m, 2))
            dsizes = rng.uniform(0.05, 0.3, (m, 2))
            dboxes = np.concatenate([dmins, np.minimum(dmins + dsizes, 1.0)], 1)
            dets.append(_dets(dboxes, rng.uniform(0.1, 1.0, m), rng.integers(0, 3, m), f"im{i}"))
        value = mean_average_precision(dets, gts, 3)
        assert 0.0 <= value <= 100.0
