"""Tests for difficult-case labelling and feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cases import SERVING_THRESHOLD, is_difficult_case, label_cases
from repro.core.features import CaseFeatures, extract_feature_arrays, extract_features
from repro.detection.types import Detections
from repro.errors import ConfigurationError


def _dets(scores, image_id="img", areas=None):
    scores = np.asarray(scores, dtype=float)
    n = scores.shape[0]
    if areas is None:
        areas = np.full(n, 0.04)
    sides = np.sqrt(np.asarray(areas, dtype=float))
    boxes = np.stack([np.full(n, 0.1), np.full(n, 0.1), 0.1 + sides, 0.1 + sides], axis=1)
    return Detections(image_id, boxes, scores, np.zeros(n, dtype=np.int64), "t")


class TestIsDifficult:
    def test_big_finds_more_is_difficult(self):
        small = _dets([0.9])
        big = _dets([0.9, 0.8])
        assert is_difficult_case(small, big) is True

    def test_equal_counts_is_easy(self):
        assert is_difficult_case(_dets([0.9]), _dets([0.8])) is False

    def test_small_finding_more_is_easy(self):
        assert is_difficult_case(_dets([0.9, 0.8]), _dets([0.9])) is False

    def test_subthreshold_boxes_ignored(self):
        small = _dets([0.9, 0.3])  # the 0.3 box is not served
        big = _dets([0.9, 0.8])
        assert is_difficult_case(small, big) is True

    def test_margin_parameter(self):
        small = _dets([0.9])
        big = _dets([0.9, 0.8])
        assert is_difficult_case(small, big, margin=2) is False

    def test_mismatched_images_rejected(self):
        with pytest.raises(ConfigurationError):
            is_difficult_case(_dets([0.9], "a"), _dets([0.9], "b"))

    def test_bad_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            is_difficult_case(_dets([0.9]), _dets([0.9]), margin=0)


class TestLabelCases:
    def test_vectorised_labels(self):
        small = [_dets([0.9], "a"), _dets([0.9], "b")]
        big = [_dets([0.9, 0.8], "a"), _dets([0.9], "b")]
        labels = label_cases(small, big)
        assert labels.tolist() == [True, False]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            label_cases([_dets([0.9])], [])


class TestFeatures:
    def test_counts_at_both_thresholds(self):
        dets = _dets([0.9, 0.6, 0.3, 0.05])
        features = extract_features(dets, noise_threshold=0.2)
        assert features.n_predict == 2  # >= 0.5
        assert features.n_estimated == 3  # >= 0.2
        assert features.all_detected is False

    def test_all_detected_when_counts_agree(self):
        dets = _dets([0.9, 0.6])
        features = extract_features(dets, noise_threshold=0.2)
        assert features.all_detected is True

    def test_min_area_over_estimated_boxes(self):
        dets = _dets([0.9, 0.3], areas=[0.25, 0.01])
        features = extract_features(dets, noise_threshold=0.2)
        assert features.min_area_estimated == pytest.approx(0.01, rel=0.05)

    def test_empty_detections(self):
        features = extract_features(Detections.empty("x"), noise_threshold=0.2)
        assert features == CaseFeatures("x", 0, 0, 1.0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_features(_dets([0.9]), noise_threshold=0.7)

    def test_array_extraction_alignment(self):
        dets = [_dets([0.9, 0.3], "a"), _dets([0.6], "b")]
        n_predict, n_estimated, min_area = extract_feature_arrays(dets, 0.2)
        assert n_predict.tolist() == [1, 1]
        assert n_estimated.tolist() == [2, 1]
        assert min_area.shape == (2,)

    def test_serving_threshold_constant(self):
        assert SERVING_THRESHOLD == 0.5
