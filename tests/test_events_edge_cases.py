"""Edge-case tests for the discrete-event core under the serving pipeline.

The fleet simulator multiplies the event volume through :class:`EventLoop`
and :class:`FifoResource`; these tests pin the semantics the engines lean
on — zero-delay self-scheduling, deterministic same-instant ordering, and
the bounded-buffer backpressure that drops frames arriving at a full queue.
"""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.errors import ConfigurationError, RuntimeModelError
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EventLoop,
    FifoResource,
    StreamConfig,
    edge_only_scheme,
    simulate_stream,
)


class TestZeroDelayScheduling:
    def test_zero_delay_self_scheduling_chain_terminates(self):
        """An action may re-schedule itself at delay 0; the chain drains in
        FIFO order without advancing simulated time."""
        loop = EventLoop()
        fired: list[int] = []

        def chain(remaining: int) -> None:
            fired.append(remaining)
            if remaining > 0:
                loop.schedule(0.0, lambda: chain(remaining - 1))

        loop.schedule(0.0, lambda: chain(5))
        final = loop.run()
        assert fired == [5, 4, 3, 2, 1, 0]
        assert final == 0.0

    def test_zero_delay_interleaves_after_already_queued_same_instant(self):
        """A zero-delay event scheduled from a callback runs after events
        already queued for the same instant (insertion order wins)."""
        loop = EventLoop()
        fired: list[str] = []

        def first() -> None:
            fired.append("a")
            loop.schedule(0.0, lambda: fired.append("a-child"))

        loop.schedule(1.0, first)
        loop.schedule(1.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "a-child"]

    def test_zero_service_time_jobs_complete_in_order(self):
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        completions: list[int] = []
        for index in range(4):
            resource.acquire(0.0, lambda _t, i=index: completions.append(i))
        elapsed = loop.run()
        assert completions == [0, 1, 2, 3]
        assert elapsed == 0.0
        assert resource.jobs_served == 4


class TestSameInstantDeterminism:
    def test_interleaved_schedule_orders_by_insertion(self):
        loop = EventLoop()
        fired: list[int] = []
        # Schedule at mixed times; ties broken by scheduling sequence.
        loop.schedule(2.0, lambda: fired.append(20))
        loop.schedule(1.0, lambda: fired.append(10))
        loop.schedule(2.0, lambda: fired.append(21))
        loop.schedule(1.0, lambda: fired.append(11))
        loop.run()
        assert fired == [10, 11, 20, 21]

    def test_two_identical_runs_fire_identically(self):
        def run_once() -> list[float]:
            loop = EventLoop()
            resource = FifoResource(loop, "dev")
            times: list[float] = []
            for _ in range(8):
                loop.schedule(0.5, lambda: resource.acquire(0.25, times.append))
            loop.run()
            return times

        assert run_once() == run_once()

    def test_resource_handoff_at_shared_instant(self):
        """A job completing at t and a job arriving at t serialise: the
        arrival queues behind whatever acquire order the instant produced."""
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        completions: list[tuple[str, float]] = []
        resource.acquire(1.0, lambda t: completions.append(("first", t)))
        loop.schedule(1.0, lambda: resource.acquire(1.0, lambda t: completions.append(("second", t))))
        loop.run()
        assert completions == [("first", 1.0), ("second", 2.0)]


class TestBoundedBufferBackpressure:
    @pytest.fixture(scope="class")
    def helmet_mini(self):
        return load_dataset("helmet", "test", fraction=0.05)

    @pytest.fixture(scope="class")
    def deployment(self):
        return Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=WLAN,
            small_model_flops=5.6e9,
            big_model_flops=61.2e9,
        )

    def test_simultaneous_arrivals_drop_beyond_queue_bound(self, deployment, helmet_mini):
        """A burst arriving into a full buffer: one frame in service plus
        ``max_edge_queue`` waiting are accepted, the rest are dropped."""
        loop_probe = EventLoop()
        resource = FifoResource(loop_probe, "edge")
        accepted = 0
        bound = 3
        for _ in range(10):
            if resource.queue_depth >= bound:
                continue
            resource.acquire(1.0, lambda _t: None)
            accepted += 1
        assert accepted == bound + 1  # one in service + bound queued
        assert resource.max_queue_depth == bound

    def test_stream_counts_drops_under_burst(self, deployment, helmet_mini):
        """Periodic arrivals far above the edge service rate with a tiny
        buffer: the report's drop accounting stays exact."""
        config = StreamConfig(fps=200.0, duration_s=1.0, poisson=False, max_edge_queue=2)
        report = simulate_stream(edge_only_scheme(), deployment, helmet_mini, config, seed=1)
        assert report.frames_dropped > 0
        assert report.frames_served + report.frames_dropped == report.frames_offered
        # The buffer bound caps the backlog: served latency never exceeds
        # (bound + 1) service times plus the service itself.
        edge_service = deployment.edge.inference_latency(5.6e9) + deployment.edge.inference_latency(2.0e4)
        assert report.latency.p99 <= (config.max_edge_queue + 2) * edge_service + 1e-9

    def test_drop_accounting_deterministic(self, deployment, helmet_mini):
        config = StreamConfig(fps=150.0, duration_s=2.0, max_edge_queue=1)
        a = simulate_stream(edge_only_scheme(), deployment, helmet_mini, config, seed=2)
        b = simulate_stream(edge_only_scheme(), deployment, helmet_mini, config, seed=2)
        assert a == b
        assert a.frames_dropped > 0

    def test_negative_delay_and_service_still_rejected(self):
        loop = EventLoop()
        # Scheduling into the past is a caller configuration error, not a
        # runtime-model failure; NaN delays are rejected the same way.
        with pytest.raises(ConfigurationError):
            loop.schedule(-0.5, lambda: None)
        with pytest.raises(ConfigurationError):
            loop.schedule(float("nan"), lambda: None)
        resource = FifoResource(loop, "dev")
        with pytest.raises(RuntimeModelError):
            resource.acquire(-1.0, lambda _t: None)

    def test_cancel_running_job_returns_none_and_keeps_queue_intact(self):
        """Cancelling the in-service (non-waiting) job is a no-op: it
        returns ``None``, the queue keeps its order, and every waiting job
        still completes."""
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        completions: list[str] = []
        running = resource.acquire(1.0, lambda _t: completions.append("running"))
        a = resource.acquire(2.0, lambda _t: completions.append("a"))
        b = resource.acquire(3.0, lambda _t: completions.append("b"))
        before = [handle for handle, _ in resource.queued_waits()]
        assert resource.cancel(running) is None
        assert resource.jobs_cancelled == 0
        assert [handle for handle, _ in resource.queued_waits()] == before == [a, b]
        loop.run()
        assert completions == ["running", "a", "b"]

    def test_queued_waits_consistent_after_interleaved_cancels(self):
        """Interleaving cancels with new arrivals keeps the wait bounds
        equal to the sum of service times still ahead of each waiting job."""
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        resource.acquire(10.0, lambda _t: None)  # holds the server
        a = resource.acquire(1.0, lambda _t: None)
        b = resource.acquire(2.0, lambda _t: None)
        assert resource.cancel(a) == 1.0
        c = resource.acquire(4.0, lambda _t: None)
        assert [wait for _, wait in resource.queued_waits()] == [0.0, 2.0]
        assert resource.cancel(c) == 4.0
        d = resource.acquire(0.5, lambda _t: None)
        waits = resource.queued_waits()
        assert [handle for handle, _ in waits] == [b, d]
        assert [wait for _, wait in waits] == [0.0, 2.0]
        assert resource.jobs_cancelled == 2
        loop.run()

    def test_cancel_removes_waiting_job_only(self):
        """A waiting job cancels (its callback never fires, its service
        time is returned); the in-service job refuses — cancellation cannot
        claw back started work."""
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        completions: list[str] = []
        serving = resource.acquire(1.0, lambda _t: completions.append("serving"))
        waiting = resource.acquire(1.5, lambda _t: completions.append("waiting"))
        last = resource.acquire(1.0, lambda _t: completions.append("last"))
        assert resource.cancel(waiting) == 1.5  # the wait it frees behind it
        assert resource.cancel(waiting) is None  # idempotent: already gone
        assert resource.cancel(serving) is None  # in service
        assert resource.jobs_cancelled == 1
        elapsed = loop.run()
        assert completions == ["serving", "last"]
        assert elapsed == 2.0  # the cancelled second job never served
        assert resource.cancel(last) is None  # completed long ago

    def test_queued_waits_bound_queue_order(self):
        """queued_waits sums the service times ahead of each waiting job and
        excludes the in-service job entirely."""
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        resource.acquire(5.0, lambda _t: None)  # enters service immediately
        a = resource.acquire(1.0, lambda _t: None)
        b = resource.acquire(2.0, lambda _t: None)
        c = resource.acquire(4.0, lambda _t: None)
        waits = resource.queued_waits()
        assert [handle for handle, _ in waits] == [a, b, c]
        assert [wait for _, wait in waits] == [0.0, 1.0, 3.0]
        resource.cancel(b)
        assert [wait for _, wait in resource.queued_waits()] == [0.0, 1.0]
        loop.run()

    def test_burst_into_shared_uplink_cloud_scheme(self, deployment, helmet_mini):
        """Cloud-only admission control guards the uplink queue, not the
        edge: a burst beyond the bound drops there too."""
        from repro.runtime import cloud_only_scheme

        config = StreamConfig(fps=50.0, duration_s=2.0, poisson=False, max_edge_queue=4)
        report = simulate_stream(cloud_only_scheme(), deployment, helmet_mini, config, seed=3)
        assert report.frames_dropped > 0
        assert report.frames_uploaded == report.frames_served
        assert report.edge_utilization == 0.0  # nothing touched the edge


class TestScheduleRepeating:
    """The repeating-timer contract fleet controllers are built on."""

    def test_fires_on_interval_until_predicate_dies(self):
        loop = EventLoop()
        fired: list[float] = []
        loop.schedule(10.0, lambda: None)  # keeps the loop alive to t=10
        loop.schedule_repeating(
            2.5, lambda: fired.append(loop.now), keep_going=lambda: loop.now < 7.0
        )
        final = loop.run()
        # First firing one interval in; the predicate is consulted *after*
        # each firing, so the 7.5 tick runs and then stops the chain.
        assert fired == [2.5, 5.0, 7.5]
        assert final == 10.0

    def test_dead_predicate_still_fires_once(self):
        """The first firing is unconditional; the predicate only gates the
        re-arm, so a controller always gets at least one tick."""
        loop = EventLoop()
        fired: list[float] = []
        loop.schedule_repeating(1.0, lambda: fired.append(loop.now), keep_going=lambda: False)
        final = loop.run()
        assert fired == [1.0]
        assert final == 1.0

    def test_timer_cannot_outlive_its_reason(self):
        """A repeating event never keeps an otherwise-drained loop alive:
        once keep_going() is false the heap empties and run() returns."""
        loop = EventLoop()
        ticks: list[int] = []
        loop.schedule_repeating(
            0.5, lambda: ticks.append(len(ticks)), keep_going=lambda: len(ticks) < 100
        )
        final = loop.run()
        assert len(ticks) == 100
        assert final == pytest.approx(50.0)

    @pytest.mark.parametrize("interval", [0.0, -1.0, float("nan")])
    def test_rejects_non_positive_interval(self, interval):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.schedule_repeating(interval, lambda: None, keep_going=lambda: True)
