"""Tests for budget-constrained fitting and the online budget controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import BudgetController, fit_for_budget
from repro.core.discriminator import DifficultCaseDiscriminator
from repro.errors import CalibrationError, ConfigurationError


def _synthetic_features(n: int = 2000, seed: int = 0):
    rng = np.random.default_rng(seed)
    true_counts = rng.integers(1, 8, size=n)
    min_areas = rng.uniform(0.0, 0.6, size=n)
    labels = (true_counts > 3) | (min_areas < 0.2)
    uncertain = labels | (rng.uniform(size=n) < 0.3)
    n_predict = np.where(uncertain, np.maximum(true_counts - 1, 0), true_counts)
    return n_predict, true_counts, min_areas, labels


class TestFitForBudget:
    def test_respects_budget(self):
        n_predict, counts, areas, labels = _synthetic_features()
        for budget in (0.2, 0.4, 0.6):
            fit = fit_for_budget(n_predict, counts, areas, labels, budget)
            assert fit.expected_upload_ratio <= budget + 1e-9

    def test_recall_monotone_in_budget(self):
        n_predict, counts, areas, labels = _synthetic_features()
        recalls = [fit_for_budget(n_predict, counts, areas, labels, budget).recall for budget in (0.15, 0.3, 0.5, 0.7)]
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_generous_budget_reaches_high_recall(self):
        n_predict, counts, areas, labels = _synthetic_features()
        fit = fit_for_budget(n_predict, counts, areas, labels, 0.9)
        assert fit.recall > 0.9

    def test_impossible_budget_raises(self):
        n_predict, counts, areas, labels = _synthetic_features()
        # Force the uncertainty gate alone above the budget: every image
        # uncertain, thresholds cannot go below the most conservative pair.
        always_uncertain = n_predict * 0
        with pytest.raises(CalibrationError):
            fit_for_budget(
                always_uncertain,
                counts,
                areas,
                labels,
                0.001,
                count_grid=np.array([0]),
                area_grid=np.array([0.6]),
            )

    def test_invalid_budget_rejected(self):
        n_predict, counts, areas, labels = _synthetic_features()
        with pytest.raises(ConfigurationError):
            fit_for_budget(n_predict, counts, areas, labels, 0.0)


class TestBudgetController:
    def _controller(self, target=0.3, area=0.3, gain=0.05):
        discriminator = DifficultCaseDiscriminator(confidence_threshold=0.15, count_threshold=2, area_threshold=area)
        return BudgetController(discriminator, target, gain=gain)

    def test_tracks_target_on_live_detections(self, small1_voc07, voc_test_small):
        controller = self._controller(target=0.3)
        for record in voc_test_small.records:
            controller.decide(small1_voc07.detect(record))
        assert controller.realised_ratio == pytest.approx(0.3, abs=0.12)

    def test_threshold_moves_toward_budget(self, small1_voc07, voc_test_small):
        # Start with an aggressive threshold; a small target must pull the
        # area threshold down over time.
        controller = self._controller(target=0.1, area=0.6, gain=0.1)
        start = controller.discriminator.area_threshold
        for record in voc_test_small.records:
            controller.decide(small1_voc07.detect(record))
        assert controller.discriminator.area_threshold < start

    def test_counts_bookkeeping(self, small1_voc07, voc_test_small):
        controller = self._controller()
        for record in voc_test_small.records[:50]:
            controller.decide(small1_voc07.detect(record))
        assert controller.decisions == 50
        assert 0 <= controller.uploads <= 50

    def test_threshold_stays_in_bounds(self, small1_voc07, voc_test_small):
        controller = BudgetController(
            DifficultCaseDiscriminator(0.15, 2, 0.5),
            target_ratio=0.05,
            gain=0.5,
            area_bounds=(0.0, 0.6),
        )
        for record in voc_test_small.records:
            controller.decide(small1_voc07.detect(record))
            assert 0.0 <= controller.discriminator.area_threshold <= 0.6

    def test_invalid_parameters_rejected(self):
        discriminator = DifficultCaseDiscriminator(0.15, 2, 0.3)
        with pytest.raises(ConfigurationError):
            BudgetController(discriminator, target_ratio=0.0)
        with pytest.raises(ConfigurationError):
            BudgetController(discriminator, target_ratio=0.5, gain=0.0)
        with pytest.raises(ConfigurationError):
            BudgetController(discriminator, 0.5, area_bounds=(0.5, 0.2))
