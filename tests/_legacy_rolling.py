"""Verbatim pre-vectorization ``repro.metrics.rolling`` (reference oracle).

This is the per-frame/per-window implementation the vectorized evaluator
replaced, kept as the equality oracle for ``test_rolling_equivalence.py`` —
the rewrite is pinned *bit-for-bit* against it on every serving scheme and
report shape.  Do not modernise this file; its value is that it does not
change.

Original module docstring follows.

Online stream evaluation: rolling-window quality of served frames.

Latency and drop counts alone understate what saturation costs: a scheme
that sheds frames — or returns them seconds late — still *looks* healthy on
the frames it serves.  This module scores a streaming run the way an
operator would watch it: a rolling window over *arrival* time, where every
frame offered in the window counts.  A frame contributes its served
detections only if a result was actually produced **and** was fresh (ready
within ``freshness_s`` of arrival); dropped and stale frames contribute an
empty detection set against their ground truth, so backpressure and
queueing delay both show up as measured mAP / object-count loss rather than
as side-channel counters.

Inputs are the per-frame logs a :class:`~repro.runtime.serving.StreamReport`
carries when the simulation was given served detections (``served``,
``frame_arrivals``, ``frame_times``, ``frame_records``, ``frame_served``);
fleet runs evaluate the union of all camera logs.

Failure injection adds one wrinkle: a frame whose escalation failed serves
its *edge* verdict immediately, and a durable escalation queue may land the
deferred *cloud* verdict later (``frame_verdict_segments`` /
``frame_verdict_times``).  The evaluation reconciles the two — a late cloud
verdict inside the freshness deadline upgrades the scored frame, outside it
the frame scores as edge-served — so graceful degradation and recovery are
measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.errors import ConfigurationError
from repro.metrics.counting import count_detected_objects
from repro.metrics.voc_ap import mean_average_precision

__all__ = ["RollingWindow", "rolling_quality"]

_EMPTY_BOXES = np.zeros((0, 4))
_EMPTY_SCORES = np.zeros(0)
_EMPTY_LABELS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class RollingWindow:
    """Quality of one evaluation window of a streaming run.

    ``map_percent`` and the object counts are measured over every frame that
    *arrived* in ``[t_start, t_end)`` — frames that were dropped, or whose
    result came back stale, score as empty detection sets and pull quality
    down instead of vanishing.
    """

    t_start: float
    t_end: float
    frames: int
    served: int
    dropped: int
    stale: int
    map_percent: float
    detected_objects: int
    true_objects: int

    @property
    def count_error_percent(self) -> float:
        """Percent of in-window annotated objects the stream missed."""
        if self.true_objects == 0:
            return 0.0
        return 100.0 * (self.true_objects - self.detected_objects) / self.true_objects


def _frame_logs(report) -> list:
    """Flatten one report (stream or fleet) into per-camera log tuples."""
    cameras = getattr(report, "cameras", None)
    if cameras is not None:
        logs = []
        for camera in cameras:
            logs.extend(_frame_logs(camera))
        return logs
    if report.served is None or report.frame_arrivals is None:
        raise ConfigurationError("stream report carries no served frames; simulate with detections=")
    return [
        (
            report.served,
            report.frame_arrivals,
            report.frame_times,
            report.frame_records,
            report.frame_served,
            getattr(report, "frame_segments", None),
            getattr(report, "frame_verdict_times", None),
            getattr(report, "frame_verdict_segments", None),
        )
    ]


def _segment_maps(logs) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-frame segment indices into the concatenated served batch.

    Returns ``(positions, verdict_segments, verdict_times)`` aligned with the
    concatenated frame logs; ``-1`` marks "no segment".  Segment indices are
    shifted by each camera's offset in the concatenated batch.  Logs without
    an explicit segment map (pre-failure-injection reports) fall back to
    counting served flags, which is exact when the served batch holds only
    primary serves.
    """
    positions_parts: list[np.ndarray] = []
    verdict_parts: list[np.ndarray] = []
    verdict_time_parts: list[np.ndarray] = []
    offset = 0
    for batch, _arrivals, _times, _records, flags, segments, verdict_times, verdict_segments in logs:
        if segments is None:
            counted = np.cumsum(flags.astype(np.int64)) - 1
            positions_parts.append(np.where(flags, counted + offset, -1))
        else:
            positions_parts.append(np.where(segments >= 0, segments + offset, -1))
        if verdict_segments is None:
            verdict_parts.append(np.full(flags.shape[0], -1, dtype=np.int64))
            verdict_time_parts.append(np.full(flags.shape[0], -np.inf))
        else:
            verdict_parts.append(np.where(verdict_segments >= 0, verdict_segments + offset, -1))
            verdict_time_parts.append(verdict_times)
        offset += len(batch)
    return (
        np.concatenate(positions_parts),
        np.concatenate(verdict_parts),
        np.concatenate(verdict_time_parts),
    )


def rolling_quality(
    reports,
    dataset: Dataset,
    *,
    window_s: float = 10.0,
    step_s: float | None = None,
    duration_s: float | None = None,
    freshness_s: float | None = None,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
) -> list[RollingWindow]:
    """Score a streaming run over a rolling arrival-time window.

    Parameters
    ----------
    reports:
        A :class:`~repro.runtime.serving.StreamReport`, a
        :class:`~repro.runtime.serving.FleetReport`, or a sequence of
        either; every report must carry the per-frame log (run the
        simulation with ``detections=``).  Fleet windows pool all cameras.
    dataset:
        The split the stream cycled through (ground-truth source).
    window_s / step_s:
        Window width and stride (stride defaults to the width: adjacent,
        non-overlapping windows).
    duration_s:
        Evaluation horizon over arrivals.  Defaults to just past the latest
        arrival; pass the stream's configured duration to compare schemes on
        an identical window grid.
    freshness_s:
        Staleness deadline: a served frame only counts if its result was
        ready within this many seconds of the frame's arrival.  ``None``
        (default) accepts any completed frame, however late — then only
        drops degrade quality.
    """
    if window_s <= 0.0:
        raise ConfigurationError(f"window_s must be positive, got {window_s}")
    if step_s is None:
        step_s = window_s
    if step_s <= 0.0:
        raise ConfigurationError(f"step_s must be positive, got {step_s}")
    if freshness_s is not None and freshness_s <= 0.0:
        raise ConfigurationError(f"freshness_s must be positive, got {freshness_s}")
    if not isinstance(reports, Sequence):
        reports = [reports]
    logs = []
    for report in reports:
        logs.extend(_frame_logs(report))
    if not logs:
        # An empty sequence would otherwise sail past the per-report guard
        # and yield a single degenerate all-zero window — a score of
        # "nothing" that reads like a measurement.
        raise ConfigurationError("no stream reports to evaluate")

    arrivals = np.concatenate([log[1] for log in logs])
    times = np.concatenate([log[2] for log in logs])
    records = np.concatenate([log[3] for log in logs])
    served_flags = np.concatenate([log[4] for log in logs])
    batch = DetectionBatch.concat([log[0] for log in logs])
    # Map each offered frame to its segment in the concatenated served batch
    # (-1 for drops), plus any deferred cloud verdict a durable escalation
    # queue recovered for it.
    positions, verdict_segments, verdict_times = _segment_maps(logs)
    fresh = served_flags.copy()
    if freshness_s is not None:
        fresh &= (times - arrivals) <= freshness_s
    truth = dataset.truth_batch

    if duration_s is None:
        # just past the latest arrival, so a frame landing exactly on a
        # window boundary still falls inside the final window
        duration_s = float(np.nextafter(arrivals.max(), np.inf)) if arrivals.size else 0.0
    windows: list[RollingWindow] = []
    # windows sit on an exact i * step_s grid (no float accumulation drift)
    index = 0
    while index * step_s < duration_s or not windows:
        t_start = index * step_s
        t_end = t_start + window_s
        inside = np.flatnonzero((arrivals >= t_start) & (arrivals < t_end))
        served = int(fresh[inside].sum())
        dropped = int((~served_flags[inside]).sum())
        stale = int(inside.size) - served - dropped
        builder = DetectionBatchBuilder(detector=batch.detector)
        for frame in inside:
            if fresh[frame]:
                segment = int(positions[frame])
                # Reconcile a deferred cloud verdict: inside the freshness
                # deadline it upgrades the scored frame; outside, the frame
                # stays scored on the edge verdict it served with.
                verdict = int(verdict_segments[frame])
                if verdict >= 0 and (
                    freshness_s is None or verdict_times[frame] - arrivals[frame] <= freshness_s
                ):
                    segment = verdict
                lo = int(batch.offsets[segment])
                hi = int(batch.offsets[segment + 1])
                builder.append(
                    batch.image_ids[segment],
                    batch.boxes[lo:hi],
                    batch.scores[lo:hi],
                    batch.labels[lo:hi],
                )
            else:
                builder.append(
                    dataset.image_ids[int(records[frame])],
                    _EMPTY_BOXES,
                    _EMPTY_SCORES,
                    _EMPTY_LABELS,
                )
        window_batch = builder.build()
        window_truth = truth.select(records[inside])
        if inside.size:
            map_percent = mean_average_precision(
                window_batch.above(score_threshold),
                window_truth,
                dataset.num_classes,
                iou_threshold=iou_threshold,
            )
            detected = count_detected_objects(
                window_batch,
                window_truth,
                score_threshold=score_threshold,
                iou_threshold=iou_threshold,
            )
        else:
            map_percent = 0.0
            detected = 0
        windows.append(
            RollingWindow(
                t_start=t_start,
                t_end=t_end,
                frames=int(inside.size),
                served=served,
                dropped=dropped,
                stale=stale,
                map_percent=map_percent,
                detected_objects=detected,
                true_objects=window_truth.total_objects,
            )
        )
        index += 1
    return windows
