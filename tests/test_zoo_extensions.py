"""Tests for the zoo extensions: autocompression and Faster R-CNN."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulate.presets import SHAPE_PRESETS
from repro.zoo import build_model
from repro.zoo.autocompress import (
    SmallModelConfig,
    build_candidate,
    predict_profile,
    search_configuration,
)
from repro.zoo.faster_rcnn import build_faster_rcnn_vgg16, faster_rcnn_feature_maps
from repro.zoo.ssd import build_small_model_1


class TestSmallModelConfig:
    def test_defaults_valid(self):
        assert SmallModelConfig().base == "vgg-lite"

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigurationError):
            SmallModelConfig(base="resnet")

    def test_extreme_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SmallModelConfig(width_multiplier=3.0)

    def test_bad_divisor_rejected(self):
        with pytest.raises(ConfigurationError):
            SmallModelConfig(extras_divisor=3)


class TestBuildCandidate:
    def test_default_config_matches_small1(self):
        candidate = build_candidate(SmallModelConfig())
        reference = build_small_model_1()
        assert candidate.params == reference.params
        assert candidate.macs == reference.macs

    def test_all_bases_build(self):
        for base in ("vgg-lite", "mobilenet-v1", "mobilenet-v2"):
            spec = build_candidate(SmallModelConfig(base=base))
            assert spec.params > 0 and spec.num_anchors == 2956

    def test_width_monotone_in_size(self):
        narrow = build_candidate(SmallModelConfig(width_multiplier=0.375))
        wide = build_candidate(SmallModelConfig(width_multiplier=1.0))
        assert narrow.params < wide.params
        assert narrow.macs < wide.macs

    def test_extras_divisor_monotone(self):
        thick = build_candidate(SmallModelConfig(extras_divisor=1))
        thin = build_candidate(SmallModelConfig(extras_divisor=4))
        assert thin.params < thick.params

    def test_conv7_width_effect(self):
        small7 = build_candidate(SmallModelConfig(conv7_channels=256))
        large7 = build_candidate(SmallModelConfig(conv7_channels=1024))
        assert small7.params < large7.params


class TestPredictProfile:
    def test_smaller_model_predicts_worse_response(self):
        reference_spec = build_small_model_1()
        reference_profile = SHAPE_PRESETS["small1"]
        tiny = build_candidate(SmallModelConfig(width_multiplier=0.25))
        predicted = predict_profile(tiny, reference_profile, reference_spec=reference_spec)
        assert predicted.area_half > reference_profile.area_half
        assert predicted.crowd_half < reference_profile.crowd_half

    def test_reference_predicts_itself(self):
        reference_spec = build_small_model_1()
        reference_profile = SHAPE_PRESETS["small1"]
        predicted = predict_profile(reference_spec, reference_profile, reference_spec=reference_spec)
        assert predicted.area_half == pytest.approx(reference_profile.area_half)
        assert predicted.crowd_half == pytest.approx(reference_profile.crowd_half)


class TestSearch:
    def test_respects_size_budget(self):
        result = search_configuration(size_budget_mib=10.0)
        assert result.spec.size_mib <= 10.0

    def test_respects_flops_budget(self):
        result = search_configuration(flops_budget_g=2.0)
        assert result.spec.gflops <= 2.0

    def test_respects_joint_budget(self):
        result = search_configuration(size_budget_mib=8.0, flops_budget_g=1.5)
        assert result.spec.size_mib <= 8.0 and result.spec.gflops <= 1.5

    def test_bigger_budget_bigger_model(self):
        small = search_configuration(size_budget_mib=5.0)
        large = search_configuration(size_budget_mib=25.0)
        assert large.spec.gflops > small.spec.gflops

    def test_base_restriction(self):
        result = search_configuration(size_budget_mib=12.0, base="mobilenet-v2")
        assert result.config.base == "mobilenet-v2"

    def test_no_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            search_configuration()

    def test_impossible_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            search_configuration(size_budget_mib=0.1)


class TestFasterRcnn:
    def test_published_parameter_count(self):
        # VGG16 Faster R-CNN: ~137 M parameters (~523 MiB fp32).
        spec = build_faster_rcnn_vgg16()
        assert spec.params == pytest.approx(137e6, rel=0.03)

    def test_registered(self):
        assert build_model("faster-rcnn").algorithm == "faster-rcnn"

    def test_anchor_grid(self):
        maps = faster_rcnn_feature_maps(600)
        assert maps[0].size == 37
        # 3 scales x 3 ratios per location... spec: 1 + 1 + 2*3 = 8 boxes.
        assert maps[0].boxes_per_location == 8

    def test_heavier_than_ssd(self):
        frcnn = build_faster_rcnn_vgg16()
        ssd = build_model("ssd")
        assert frcnn.params > ssd.params
        assert frcnn.macs > ssd.macs

    def test_num_classes_scales_head(self):
        voc = build_faster_rcnn_vgg16(num_classes=20)
        helmet = build_faster_rcnn_vgg16(num_classes=2)
        assert helmet.params < voc.params
