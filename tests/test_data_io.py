"""Round-trip tests for dataset/detection JSON serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.io import (
    dataset_from_dict,
    dataset_to_dict,
    detections_from_dict,
    detections_to_dict,
    load_dataset_file,
    load_detections_file,
    save_dataset,
    save_detections,
)
from repro.errors import DatasetError
from repro.simulate import SimulatedDetector
from repro.simulate.profile import DetectorProfile


@pytest.fixture(scope="module")
def split():
    return load_dataset("helmet", "test", fraction=0.03)


@pytest.fixture(scope="module")
def detections(split):
    detector = SimulatedDetector(DetectorProfile(name="io-test"), 2, seed=5)
    return detector.detect_split(split)


class TestDatasetRoundTrip:
    def test_dict_round_trip_exact(self, split):
        rebuilt = dataset_from_dict(dataset_to_dict(split))
        assert rebuilt.name == split.name and rebuilt.split == split.split
        assert rebuilt.classes == split.classes
        assert len(rebuilt) == len(split)
        for a, b in zip(split.records, rebuilt.records):
            assert a.image_id == b.image_id
            np.testing.assert_array_equal(a.truth.boxes, b.truth.boxes)
            np.testing.assert_array_equal(a.truth.labels, b.truth.labels)
            assert a.degradation == b.degradation
            assert a.render_seed == b.render_seed

    def test_file_round_trip(self, split, tmp_path):
        path = save_dataset(split, tmp_path / "split.json")
        rebuilt = load_dataset_file(path)
        assert rebuilt.total_objects == split.total_objects

    def test_json_serializable(self, split):
        # The dict must survive an actual json encode/decode cycle.
        payload = json.loads(json.dumps(dataset_to_dict(split)))
        rebuilt = dataset_from_dict(payload)
        assert len(rebuilt) == len(split)

    def test_wrong_kind_rejected(self, split):
        payload = dataset_to_dict(split)
        payload["kind"] = "detections"
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_wrong_schema_rejected(self, split):
        payload = dataset_to_dict(split)
        payload["schema"] = 99
        with pytest.raises(DatasetError):
            dataset_from_dict(payload)

    def test_unreadable_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DatasetError):
            load_dataset_file(bad)


class TestDetectionsRoundTrip:
    def test_dict_round_trip_exact(self, detections):
        rebuilt = detections_from_dict(detections_to_dict(detections))
        assert len(rebuilt) == len(detections)
        for a, b in zip(detections, rebuilt):
            assert a.image_id == b.image_id
            np.testing.assert_array_equal(a.boxes, b.boxes)
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_detector_name_preserved(self, detections, tmp_path):
        path = save_detections(detections, tmp_path / "dets.json")
        rebuilt = load_detections_file(path)
        assert rebuilt[0].detector == "io-test"

    def test_explicit_detector_override(self, detections, tmp_path):
        path = save_detections(detections, tmp_path / "dets.json", detector="renamed")
        rebuilt = load_detections_file(path)
        assert rebuilt[0].detector == "renamed"

    def test_empty_detections_round_trip(self):
        rebuilt = detections_from_dict(detections_to_dict([]))
        assert rebuilt == []

    def test_metrics_survive_round_trip(self, detections, split):
        from repro.metrics import count_detected_objects

        before = count_detected_objects(detections, split.truths)
        rebuilt = detections_from_dict(detections_to_dict(detections))
        after = count_detected_objects(rebuilt, split.truths)
        assert before == after
