"""Unit and property tests for non-maximum suppression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import iou_matrix
from repro.detection.nms import class_aware_nms, filter_by_score, nms_indices
from repro.detection.types import Detections
from repro.errors import ConfigurationError


def _dets(boxes, scores, labels):
    return Detections("img", np.asarray(boxes, float), np.asarray(scores, float), np.asarray(labels), detector="t")


class TestNmsIndices:
    def test_keeps_highest_of_duplicates(self):
        boxes = [[0.1, 0.1, 0.3, 0.3], [0.11, 0.1, 0.31, 0.3]]
        keep = nms_indices(np.array(boxes), np.array([0.6, 0.9]), 0.5)
        assert keep.tolist() == [1]

    def test_disjoint_boxes_all_kept(self):
        boxes = [[0.0, 0.0, 0.1, 0.1], [0.5, 0.5, 0.6, 0.6], [0.8, 0.8, 0.9, 0.9]]
        keep = nms_indices(np.array(boxes), np.array([0.9, 0.8, 0.7]), 0.45)
        assert len(keep) == 3

    def test_empty_input(self):
        assert nms_indices(np.zeros((0, 4)), np.zeros(0), 0.5).shape == (0,)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            nms_indices(np.zeros((1, 4)), np.zeros(1), 1.5)

    @settings(max_examples=40)
    @given(
        n=st.integers(1, 12),
        seed=st.integers(0, 10_000),
        threshold=st.floats(0.2, 0.8),
    )
    def test_survivors_are_mutually_below_threshold(self, n, seed, threshold):
        rng = np.random.default_rng(seed)
        mins = rng.uniform(0, 0.7, size=(n, 2))
        sizes = rng.uniform(0.05, 0.3, size=(n, 2))
        boxes = np.concatenate([mins, np.minimum(mins + sizes, 1.0)], axis=1)
        scores = rng.uniform(0.1, 1.0, size=n)
        keep = nms_indices(boxes, scores, threshold)
        assert len(keep) >= 1
        survivors = boxes[keep]
        iou = iou_matrix(survivors, survivors)
        np.fill_diagonal(iou, 0.0)
        assert (iou <= threshold + 1e-9).all()

    @settings(max_examples=40)
    @given(n=st.integers(1, 12), seed=st.integers(0, 10_000))
    def test_keep_sorted_by_score(self, n, seed):
        rng = np.random.default_rng(seed)
        mins = rng.uniform(0, 0.7, size=(n, 2))
        sizes = rng.uniform(0.05, 0.3, size=(n, 2))
        boxes = np.concatenate([mins, np.minimum(mins + sizes, 1.0)], axis=1)
        scores = rng.uniform(0.1, 1.0, size=n)
        keep = nms_indices(boxes, scores, 0.5)
        kept_scores = scores[keep]
        assert (np.diff(kept_scores) <= 1e-12).all()


class TestClassAwareNms:
    def test_different_classes_not_suppressed(self):
        dets = _dets([[0.1, 0.1, 0.3, 0.3], [0.1, 0.1, 0.3, 0.3]], [0.9, 0.8], [0, 1])
        out = class_aware_nms(dets, 0.45)
        assert len(out) == 2

    def test_same_class_duplicates_suppressed(self):
        dets = _dets([[0.1, 0.1, 0.3, 0.3], [0.1, 0.1, 0.3, 0.3]], [0.9, 0.8], [0, 0])
        out = class_aware_nms(dets, 0.45)
        assert len(out) == 1 and out.scores[0] == pytest.approx(0.9)

    def test_empty_passthrough(self):
        dets = Detections.empty("img")
        assert class_aware_nms(dets) is dets

    def test_metadata_preserved(self):
        dets = _dets([[0.1, 0.1, 0.3, 0.3]], [0.9], [0])
        out = class_aware_nms(dets)
        assert out.image_id == "img" and out.detector == "t"


class TestFilterByScore:
    def test_matches_above(self):
        dets = _dets([[0.1, 0.1, 0.3, 0.3], [0.4, 0.4, 0.5, 0.5]], [0.9, 0.2], [0, 0])
        assert len(filter_by_score(dets, 0.5)) == len(dets.above(0.5)) == 1
