"""Tests for the image renderer and the Brenner gradient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import ImageRecord, load_dataset
from repro.data.degrade import Degradation
from repro.data.render import brenner_gradient, render_image
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def records():
    return load_dataset("voc07", "test", fraction=0.004).records


class TestRender:
    def test_shape_and_range(self, records):
        image = render_image(records[0], size=64)
        assert image.shape == (64, 64)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic(self, records):
        a = render_image(records[0])
        b = render_image(records[0])
        np.testing.assert_array_equal(a, b)

    def test_distinct_images_differ(self, records):
        a = render_image(records[0], size=64)
        b = render_image(records[1], size=64)
        assert not np.allclose(a, b)

    def test_too_small_size_rejected(self, records):
        with pytest.raises(ConfigurationError):
            render_image(records[0], size=8)

    def test_blur_darkens_high_frequency(self, records):
        record = records[0]
        blurred = ImageRecord(
            truth=record.truth,
            degradation=Degradation(quality=0.5, blur_sigma=2.5),
            render_seed=record.render_seed,
        )
        assert brenner_gradient(render_image(blurred)) < brenner_gradient(render_image(record))

    def test_low_light_reduces_brenner(self, records):
        record = records[0]
        dark = ImageRecord(
            truth=record.truth,
            degradation=Degradation(quality=0.6, brightness=0.4),
            render_seed=record.render_seed,
        )
        assert brenner_gradient(render_image(dark)) < brenner_gradient(render_image(record))


class TestBrenner:
    def test_flat_image_scores_zero(self):
        assert brenner_gradient(np.full((32, 32), 0.5)) == 0.0

    def test_vertical_edges_detected(self):
        image = np.zeros((32, 32))
        image[16:, :] = 1.0  # horizontal edge -> gradient along x... rows
        assert brenner_gradient(image) > 0.0

    def test_known_value(self):
        # Single step of height 1 at row 10: rows 8 and 9 see |f(x+2)-f(x)|=1.
        image = np.zeros((16, 4))
        image[10:, :] = 1.0
        # scaled to 255: contributions = 2 rows * 4 cols * 255^2
        assert brenner_gradient(image) == pytest.approx(2 * 4 * 255.0**2)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            brenner_gradient(np.zeros((4, 4, 3)))

    def test_sharper_texture_scores_higher(self, rng):
        smooth = np.tile(np.linspace(0, 1, 64), (64, 1))
        noisy = rng.uniform(size=(64, 64))
        assert brenner_gradient(noisy) > brenner_gradient(smooth)
