"""Consistency tests over the published-operating-point tables in presets.

These guard the reproduction's bookkeeping: every calibration target must
trace back to a published count, reference tables must cover the same
(model, setting) pairs, and the derived recall targets must be physically
meaningful.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import DATASET_SETTINGS
from repro.simulate.presets import (
    MAP_REFERENCES,
    PAPER_COUNTS,
    PAPER_GT_TOTALS,
    RECALL_TARGETS,
    SETTING_OVERRIDES,
    SHAPE_PRESETS,
    available_pairs,
)


class TestBookkeeping:
    def test_every_target_has_a_published_count(self):
        assert set(RECALL_TARGETS) == set(PAPER_COUNTS)

    def test_every_pair_references_known_setting(self):
        for _, setting in available_pairs():
            assert setting in DATASET_SETTINGS
            assert setting in PAPER_GT_TOTALS

    def test_every_pair_references_known_model(self):
        for model, _ in available_pairs():
            assert model in SHAPE_PRESETS

    def test_recall_targets_physical(self):
        for pair, target in RECALL_TARGETS.items():
            assert 0.0 < target < 1.0, pair

    def test_map_references_cover_all_pairs(self):
        assert set(MAP_REFERENCES) == set(RECALL_TARGETS)

    def test_overrides_reference_known_pairs(self):
        for model, setting in SETTING_OVERRIDES:
            assert model in SHAPE_PRESETS
            assert setting in DATASET_SETTINGS

    def test_override_keys_are_profile_fields(self):
        from dataclasses import fields

        from repro.simulate.profile import DetectorProfile

        valid = {f.name for f in fields(DetectorProfile)}
        for overrides in SETTING_OVERRIDES.values():
            assert set(overrides) <= valid


class TestOperatingPointSanity:
    def test_big_models_out_recall_their_small_models(self):
        pairs = {
            ("small1", "ssd"),
            ("small2", "ssd"),
            ("small3", "ssd"),
            ("small-yolo", "yolov4"),
        }
        for small, big in pairs:
            for setting in DATASET_SETTINGS:
                small_key = (small, setting)
                big_key = (big, setting)
                if small_key in RECALL_TARGETS and big_key in RECALL_TARGETS:
                    assert RECALL_TARGETS[big_key] > RECALL_TARGETS[small_key], (
                        small,
                        big,
                        setting,
                    )

    def test_big_models_out_map_their_small_models(self):
        for setting in DATASET_SETTINGS:
            ssd = MAP_REFERENCES.get(("ssd", setting))
            for small in ("small1", "small2", "small3"):
                value = MAP_REFERENCES.get((small, setting))
                if ssd is not None and value is not None:
                    assert ssd > value, (small, setting)

    def test_paper_counts_below_gt_totals(self):
        for (model, setting), count in PAPER_COUNTS.items():
            assert count < PAPER_GT_TOTALS[setting], (model, setting)

    def test_voc07_test_total_is_devkit_number(self):
        # 12 032 annotated objects in VOC2007 test — the devkit's number.
        assert PAPER_GT_TOTALS["voc07"] == 12032
        assert PAPER_GT_TOTALS["voc07+12"] == 12032

    def test_mobilenet_ordering_encoded(self):
        # The reconciled assignment: small2 (V1) stronger than small3 (V2)
        # on every shared setting.
        for setting in ("voc07", "voc07+12", "voc07++12", "coco18"):
            assert (MAP_REFERENCES[("small2", setting)] > MAP_REFERENCES[("small3", setting)])

    @pytest.mark.parametrize("model", sorted(SHAPE_PRESETS))
    def test_shape_presets_valid(self, model):
        profile = SHAPE_PRESETS[model]
        assert profile.name == model
        assert profile.miss_score_hi < 0.5
