"""Tests for detection-to-ground-truth matching (the VOC protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.matching import match_detections, true_positive_count
from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError


def _gt(boxes, labels):
    return GroundTruth("img", np.asarray(boxes, float), np.asarray(labels))


def _dets(boxes, scores, labels):
    return Detections("img", np.asarray(boxes, float), np.asarray(scores, float), np.asarray(labels), detector="t")


class TestMatchDetections:
    def test_perfect_match(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [3])
        dets = _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [3])
        result = match_detections(dets, gt)
        assert result.num_tp == 1 and result.num_fp == 0 and result.num_missed == 0
        assert result.matched_gt.tolist() == [0]

    def test_wrong_class_not_matched(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [3])
        dets = _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [4])
        result = match_detections(dets, gt)
        assert result.num_tp == 0 and result.num_missed == 1

    def test_class_agnostic_mode(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [3])
        dets = _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [4])
        result = match_detections(dets, gt, class_aware=False)
        assert result.num_tp == 1

    def test_each_gt_claimed_once(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [0])
        dets = _dets([[0.1, 0.1, 0.4, 0.4], [0.12, 0.1, 0.42, 0.4]], [0.9, 0.8], [0, 0])
        result = match_detections(dets, gt)
        assert result.num_tp == 1 and result.num_fp == 1

    def test_higher_score_claims_first(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [0])
        dets = _dets([[0.1, 0.1, 0.4, 0.4], [0.1, 0.1, 0.4, 0.4]], [0.7, 0.95], [0, 0])
        result = match_detections(dets, gt)
        # Detections sorted by score: the 0.95 one is rank 0 and claims the GT.
        assert result.is_tp.tolist() == [True, False]

    def test_iou_below_threshold_not_matched(self):
        gt = _gt([[0.0, 0.0, 0.2, 0.2]], [0])
        dets = _dets([[0.15, 0.15, 0.35, 0.35]], [0.9], [0])
        result = match_detections(dets, gt, iou_threshold=0.5)
        assert result.num_tp == 0

    def test_empty_detections(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [0])
        result = match_detections(Detections.empty("img"), gt)
        assert result.num_tp == 0 and result.num_missed == 1

    def test_empty_ground_truth(self):
        dets = _dets([[0.1, 0.1, 0.4, 0.4]], [0.9], [0])
        gt = _gt(np.zeros((0, 4)), np.zeros(0, dtype=int))
        result = match_detections(dets, gt)
        assert result.num_fp == 1 and result.gt_detected.shape == (0,)

    def test_invalid_threshold_rejected(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [0])
        with pytest.raises(ConfigurationError):
            match_detections(Detections.empty("img"), gt, iou_threshold=0.0)


class TestTruePositiveCount:
    def test_score_threshold_applied(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4], [0.6, 0.6, 0.9, 0.9]], [0, 1])
        dets = _dets([[0.1, 0.1, 0.4, 0.4], [0.6, 0.6, 0.9, 0.9]], [0.9, 0.4], [0, 1])
        # Only the 0.9 box passes the 0.5 serving threshold.
        assert true_positive_count(dets, gt) == 1
        assert true_positive_count(dets, gt, score_threshold=0.3) == 2

    def test_counts_bounded_by_gt(self):
        gt = _gt([[0.1, 0.1, 0.4, 0.4]], [0])
        dets = _dets(
            [[0.1, 0.1, 0.4, 0.4], [0.1, 0.1, 0.4, 0.4], [0.1, 0.1, 0.4, 0.4]],
            [0.9, 0.8, 0.7],
            [0, 0, 0],
        )
        assert true_positive_count(dets, gt) == 1
