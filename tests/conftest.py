"""Shared fixtures.

Heavy artifacts (calibrated detectors, quick-size splits and their
detections) are session-scoped: the simulator presets module memoises
calibrated detectors process-wide, so every test file reuses the same ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.experiments import Harness, HarnessConfig
from repro.simulate import make_detector


@pytest.fixture(scope="session")
def quick_config(tmp_path_factory) -> HarnessConfig:
    """Small splits + an isolated disk cache directory."""
    cache = tmp_path_factory.mktemp("repro-cache")
    base = HarnessConfig.quick()
    return HarnessConfig(
        seed=base.seed,
        train_images=base.train_images,
        test_fraction=base.test_fraction,
        cache_dir=str(cache),
    )


@pytest.fixture(scope="session")
def harness(quick_config) -> Harness:
    """Session-wide quick harness (worker pool shut down at session end)."""
    with Harness(quick_config) as shared:
        yield shared


@pytest.fixture(scope="session")
def voc_test_small():
    """A 250-image slice of the VOC07 test split."""
    return load_dataset("voc07", "test", fraction=250 / 4952)


@pytest.fixture(scope="session")
def voc_train_small():
    """A 400-image slice of the VOC07 train split."""
    return load_dataset("voc07", "train", fraction=400 / 5011)


@pytest.fixture(scope="session")
def ssd_voc07():
    """Calibrated big model on voc07 (cached process-wide)."""
    return make_detector("ssd", "voc07")


@pytest.fixture(scope="session")
def small1_voc07():
    """Calibrated small model 1 on voc07 (cached process-wide)."""
    return make_detector("small1", "voc07")


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc sampling in tests."""
    return np.random.default_rng(1234)
