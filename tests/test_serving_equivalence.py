"""Bit-for-bit equivalence of the unified serving pipeline.

The three paper schemes used to be implemented twice — once as per-scheme
loops in ``runtime/executor.py`` (static Table XI accounting) and once as a
per-scheme event simulation in ``runtime/stream.py``.  Both now route
through :mod:`repro.runtime.serving`.  This module keeps verbatim copies of
the *pre-refactor* per-scheme implementations and asserts exact equality —
every float, byte count and counter — against the shared-pipeline path, so
the refactor can never drift from the published numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import generator_for
from repro.data import load_dataset
from repro.metrics.latency import summarize_latencies
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    DropOldest,
    EdgeCloudRuntime,
    EscalationPolicy,
    EventLoop,
    FifoResource,
    FleetSpec,
    OutageSchedule,
    RateSchedule,
    RunCost,
    StreamConfig,
    StreamSimulator,
    StreamSpec,
    UnreliableLink,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    paper_schemes,
    run_cost,
    serve_fleet,
    serve_stream,
    simulate_fleet,
    simulate_stream,
)
from repro.runtime.codec import detections_payload_bytes
from repro.runtime.executor import DISCRIMINATOR_FLOPS


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def half_mask(helmet_mini):
    mask = np.zeros(len(helmet_mini), dtype=bool)
    mask[::3] = True
    return mask


# --------------------------------------------------------------------- #
# reference implementations (verbatim pre-refactor executor.py)
# --------------------------------------------------------------------- #
class ReferenceRuntime:
    """The deleted per-scheme static loops, kept as the equality oracle."""

    def __init__(self, deployment: Deployment, seed: int) -> None:
        self.deployment = deployment
        self.seed = seed

    def edge_latency(self, record) -> float:
        device = self.deployment.edge
        return device.inference_latency(
            self.deployment.small_model_flops
        ) + device.inference_latency(DISCRIMINATOR_FLOPS)

    def cloud_round_trip(self, record, result_boxes: int = 8) -> float:
        dep = self.deployment
        rng = generator_for(self.seed, "net", record.image_id)
        upload = dep.link.transfer_time(dep.codec.encoded_bytes(record), rng)
        inference = dep.cloud.inference_latency(dep.big_model_flops)
        download = dep.link.transfer_time(detections_payload_bytes(result_boxes), rng)
        return upload + inference + download

    def run_edge_only(self, dataset) -> RunCost:
        latencies = [self.deployment.edge.inference_latency(self.deployment.small_model_flops) for _ in dataset.records]
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=0,
            total_images=len(dataset),
            uplink_bytes=0,
            downlink_bytes=0,
        )

    def run_cloud_only(self, dataset) -> RunCost:
        dep = self.deployment
        latencies = [self.cloud_round_trip(record) for record in dataset.records]
        uplink = sum(dep.codec.encoded_bytes(record) for record in dataset.records)
        downlink = len(dataset) * detections_payload_bytes(8)
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=len(dataset),
            total_images=len(dataset),
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )

    def run_collaborative(self, dataset, uploaded) -> RunCost:
        mask = np.asarray(uploaded, dtype=bool).reshape(-1)
        dep = self.deployment
        latencies: list[float] = []
        uplink = 0
        for record, send in zip(dataset.records, mask):
            latency = self.edge_latency(record)
            if send:
                latency += self.cloud_round_trip(record)
                uplink += dep.codec.encoded_bytes(record)
            latencies.append(latency)
        downlink = int(mask.sum()) * detections_payload_bytes(8)
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=int(mask.sum()),
            total_images=len(dataset),
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )


# --------------------------------------------------------------------- #
# reference implementation (verbatim pre-refactor stream.py)
# --------------------------------------------------------------------- #
def reference_stream_run(deployment, dataset, seed, scheme, config, uploaded=None):
    """The deleted per-scheme event-loop simulation, as the equality oracle."""

    def _arrivals():
        rng = generator_for(seed, "stream-arrivals", config.fps, config.poisson)
        if config.poisson:
            gaps = rng.exponential(1.0 / config.fps, size=int(config.fps * config.duration_s * 2))
        else:
            gaps = np.full(int(config.fps * config.duration_s * 2), 1.0 / config.fps)
        times = np.cumsum(gaps)
        return times[times < config.duration_s]

    dep = deployment
    if uploaded is not None:
        uploaded = np.asarray(uploaded, dtype=bool).reshape(-1)

    loop = EventLoop()
    edge = FifoResource(loop, "edge")
    uplink = FifoResource(loop, "uplink")
    cloud = FifoResource(loop, "cloud")

    latencies: list[float] = []
    counters = {"served": 0, "dropped": 0, "uploads": 0}
    arrivals = _arrivals()
    records = dataset.records
    num_records = len(records)
    edge_service = dep.edge.inference_latency(dep.small_model_flops) + dep.edge.inference_latency(DISCRIMINATOR_FLOPS)
    cloud_service = dep.cloud.inference_latency(dep.big_model_flops)
    downlink_latency = dep.link.expected_transfer_time(detections_payload_bytes(8))

    def finish(start: float) -> None:
        counters["served"] += 1
        latencies.append(loop.now - start + downlink_latency)

    def finish_local(start: float) -> None:
        counters["served"] += 1
        latencies.append(loop.now - start)

    def cloud_path(record, start: float) -> None:
        counters["uploads"] += 1
        uplink.acquire(
            dep.link.expected_transfer_time(dep.codec.encoded_bytes(record)),
            lambda _t: cloud.acquire(cloud_service, lambda _t2: finish(start)),
        )

    def on_frame(index: int, arrival: float) -> None:
        record_index = index % num_records
        record = records[record_index]
        entry_queue = edge if scheme != "cloud" else uplink
        if entry_queue.queue_depth >= config.max_edge_queue:
            counters["dropped"] += 1
            return
        start = arrival
        if scheme == "edge":
            edge.acquire(edge_service, lambda _t: finish_local(start))
        elif scheme == "cloud":
            cloud_path(record, start)
        else:
            send = bool(uploaded[record_index])

            def after_edge(_t: float, record=record, send=send) -> None:
                if send:
                    cloud_path(record, start)
                else:
                    finish_local(start)

            edge.acquire(edge_service, after_edge)

    for index, arrival in enumerate(arrivals):
        loop.schedule(arrival, lambda i=index, a=arrival: on_frame(i, a))
    elapsed = loop.run()

    return {
        "latency": summarize_latencies(latencies),
        "frames_offered": int(arrivals.shape[0]),
        "frames_served": counters["served"],
        "frames_dropped": counters["dropped"],
        "frames_uploaded": counters["uploads"],
        "edge_utilization": edge.utilization(elapsed),
        "uplink_utilization": uplink.utilization(elapsed),
        "cloud_utilization": cloud.utilization(elapsed),
    }


def assert_run_costs_identical(ours: RunCost, reference: RunCost) -> None:
    for name in ("total", "mean", "p50", "p90", "p99", "count"):
        assert getattr(ours.latency, name) == getattr(reference.latency, name), name
    assert ours.uploaded_images == reference.uploaded_images
    assert ours.total_images == reference.total_images
    assert ours.uplink_bytes == reference.uplink_bytes
    assert ours.downlink_bytes == reference.downlink_bytes


def assert_stream_reports_identical(report, reference: dict) -> None:
    for name in ("total", "mean", "p50", "p90", "p99", "count"):
        assert getattr(report.latency, name) == getattr(reference["latency"], name), name
    for name in (
        "frames_offered",
        "frames_served",
        "frames_dropped",
        "frames_uploaded",
        "edge_utilization",
        "uplink_utilization",
        "cloud_utilization",
    ):
        assert getattr(report, name) == reference[name], name


# --------------------------------------------------------------------- #
# static engine equivalence
# --------------------------------------------------------------------- #
class TestStaticEquivalence:
    @pytest.mark.parametrize("seed", [0, 99, 20230701])
    def test_edge_only_identical(self, deployment, helmet_mini, seed):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=seed)
        reference = ReferenceRuntime(deployment, seed)
        assert_run_costs_identical(runtime.run_edge_only(helmet_mini), reference.run_edge_only(helmet_mini))

    @pytest.mark.parametrize("seed", [0, 99, 20230701])
    def test_cloud_only_identical(self, deployment, helmet_mini, seed):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=seed)
        reference = ReferenceRuntime(deployment, seed)
        assert_run_costs_identical(runtime.run_cloud_only(helmet_mini), reference.run_cloud_only(helmet_mini))

    @pytest.mark.parametrize("seed", [0, 99])
    def test_collaborative_identical(self, deployment, helmet_mini, half_mask, seed):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=seed)
        reference = ReferenceRuntime(deployment, seed)
        assert_run_costs_identical(
            runtime.run_collaborative(helmet_mini, half_mask),
            reference.run_collaborative(helmet_mini, half_mask),
        )

    def test_collaborative_empty_and_full_masks(self, deployment, helmet_mini):
        runtime = EdgeCloudRuntime(deployment=deployment, seed=7)
        reference = ReferenceRuntime(deployment, 7)
        for mask in (
            np.zeros(len(helmet_mini), dtype=bool),
            np.ones(len(helmet_mini), dtype=bool),
        ):
            assert_run_costs_identical(
                runtime.run_collaborative(helmet_mini, mask),
                reference.run_collaborative(helmet_mini, mask),
            )


# --------------------------------------------------------------------- #
# streaming engine equivalence
# --------------------------------------------------------------------- #
class TestStreamEquivalence:
    CONFIGS = [
        StreamConfig(fps=2.0, duration_s=20.0, poisson=False),
        StreamConfig(fps=6.0, duration_s=15.0),
        StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=5),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=["light", "poisson", "saturating"])
    def test_edge_identical(self, deployment, helmet_mini, config):
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        report = simulator.run("edge", config)
        reference = reference_stream_run(deployment, helmet_mini, 42, "edge", config)
        assert_stream_reports_identical(report, reference)

    @pytest.mark.parametrize("config", CONFIGS, ids=["light", "poisson", "saturating"])
    def test_cloud_identical(self, deployment, helmet_mini, config):
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        report = simulator.run("cloud", config)
        reference = reference_stream_run(deployment, helmet_mini, 42, "cloud", config)
        assert_stream_reports_identical(report, reference)

    @pytest.mark.parametrize("config", CONFIGS, ids=["light", "poisson", "saturating"])
    def test_collaborative_identical(self, deployment, helmet_mini, half_mask, config):
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        report = simulator.run("collaborative", config, half_mask)
        reference = reference_stream_run(deployment, helmet_mini, 42, "collaborative", config, half_mask)
        assert_stream_reports_identical(report, reference)

    def test_served_batch_unchanged_by_frame_log(self, deployment, helmet_mini, half_mask):
        """The new per-frame log must not perturb the served accumulation."""
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        config = StreamConfig(fps=5.0, duration_s=12.0)
        from repro.simulate import make_detector

        detections = make_detector("small1", "helmet").detect_split(helmet_mini)
        report = simulator.run("collaborative", config, half_mask, detections=detections)
        reference = reference_stream_run(deployment, helmet_mini, 42, "collaborative", config, half_mask)
        assert_stream_reports_identical(report, reference)
        assert report.served is not None
        assert len(report.served) == report.frames_served
        assert report.frame_times.shape[0] == report.frames_offered
        assert int(report.frame_served.sum()) == report.frames_served


# --------------------------------------------------------------------- #
# admission-control equivalence: DropNewest is the pre-admission pipeline
# --------------------------------------------------------------------- #
class TestAdmissionEquivalence:
    """`DropNewest` (and the admission default) must be bit-for-bit the
    pre-admission-control pipeline on every scheme and engine entry point —
    the camera-buffer refactor may not move a single byte of the published
    numbers."""

    CONFIGS = [
        StreamConfig(fps=2.0, duration_s=20.0, poisson=False),
        StreamConfig(fps=6.0, duration_s=15.0),
        StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=5),
    ]

    @pytest.mark.parametrize("scheme", ["edge", "cloud", "collaborative"])
    @pytest.mark.parametrize("config", CONFIGS, ids=["light", "poisson", "saturating"])
    def test_drop_newest_identical_to_reference(self, deployment, helmet_mini, half_mask, scheme, config):
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        uploaded = half_mask if scheme == "collaborative" else None
        report = simulator.run(scheme, config, uploaded, admission=DropNewest())
        reference = reference_stream_run(deployment, helmet_mini, 42, scheme, config, uploaded)
        assert_stream_reports_identical(report, reference)
        assert report.frames_shed == 0

    @pytest.mark.parametrize("scheme", ["edge", "cloud", "collaborative"])
    @pytest.mark.parametrize("config", CONFIGS, ids=["light", "poisson", "saturating"])
    def test_drop_newest_identical_to_default(self, deployment, helmet_mini, half_mask, scheme, config):
        """Explicit DropNewest and the omitted-admission default are the
        same run, per-frame log and served batch included."""
        from repro.simulate import make_detector

        detections = make_detector("small1", "helmet").detect_split(helmet_mini)
        simulator = StreamSimulator(deployment, helmet_mini, seed=42)
        uploaded = half_mask if scheme == "collaborative" else None
        explicit = simulator.run(scheme, config, uploaded, detections=detections, admission=DropNewest())
        default = simulator.run(scheme, config, uploaded, detections=detections)
        assert explicit == default

    @pytest.mark.parametrize(
        "scheme_factory",
        [edge_only_scheme, cloud_only_scheme],
        ids=["edge", "cloud"],
    )
    def test_fleet_drop_newest_identical_to_default(self, deployment, helmet_mini, scheme_factory):
        config = StreamConfig(fps=1.5, duration_s=30.0)
        kwargs = dict(cameras=8, seed=5)
        explicit = simulate_fleet(
            scheme_factory(), deployment, helmet_mini, config, admission=DropNewest(), **kwargs
        )
        default = simulate_fleet(scheme_factory(), deployment, helmet_mini, config, **kwargs)
        assert explicit == default
        assert explicit.frames_shed == 0

    def test_fleet_collaborative_drop_newest_identical_to_default(self, deployment, helmet_mini, half_mask):
        config = StreamConfig(fps=1.5, duration_s=30.0)
        kwargs = dict(cameras=8, mask=half_mask, seed=5)
        explicit = simulate_fleet(
            collaborative_scheme(), deployment, helmet_mini, config, admission=DropNewest(), **kwargs
        )
        default = simulate_fleet(collaborative_scheme(), deployment, helmet_mini, config, **kwargs)
        assert explicit == default

    @pytest.mark.parametrize(
        "admission",
        [DropOldest(), DeadlineAware(freshness_s=2.0)],
        ids=lambda policy: policy.name,
    )
    @pytest.mark.parametrize("scheme", ["edge", "cloud", "collaborative"])
    def test_new_policies_deterministic_per_stream(self, deployment, helmet_mini, half_mask, admission, scheme):
        """The new shedding policies reproduce exactly in the seed."""
        config = StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=5)
        uploaded = half_mask if scheme == "collaborative" else None
        runs = [
            StreamSimulator(deployment, helmet_mini, seed=42).run(scheme, config, uploaded, admission=admission)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_paper_schemes_cover_all_shapes(self):
        """The parametrisations above span every pipeline shape."""
        shapes = {(s.edge_compute, s.edge_discriminates) for s in paper_schemes().values()}
        assert shapes == {(True, False), (False, False), (True, True)}


# --------------------------------------------------------------------- #
# availability equivalence: an all-up UnreliableLink is the plain link
# --------------------------------------------------------------------- #
class TestAvailabilityEquivalence:
    """Failure injection may not move a byte while nothing fails: with an
    all-up outage schedule and zero loss probability, every engine, scheme
    and fleet result is bit-for-bit identical to the pre-failure-injection
    path, whatever escalation policy is armed."""

    ESCALATIONS = [
        None,
        EscalationPolicy.no_retry(),
        EscalationPolicy.drop_on_failure(),
        EscalationPolicy.durable_queue(),
    ]
    ESCALATION_IDS = ["default", "no-retry", "drop-on-failure", "durable-queue"]

    @pytest.fixture(scope="class")
    def unreliable_deployment(self, deployment):
        return Deployment(
            edge=deployment.edge,
            cloud=deployment.cloud,
            link=UnreliableLink.wrap(deployment.link, outages=OutageSchedule.always_up()),
            small_model_flops=deployment.small_model_flops,
            big_model_flops=deployment.big_model_flops,
        )

    @pytest.fixture(scope="class")
    def small_batch(self, helmet_mini):
        from repro.simulate import make_detector

        return make_detector("small1", "helmet").detect_split(helmet_mini)

    @pytest.mark.parametrize("scheme_name", ["edge", "cloud", "collaborative"])
    def test_static_engine_identical(
        self, deployment, unreliable_deployment, helmet_mini, half_mask, scheme_name
    ):
        scheme = paper_schemes()[scheme_name]
        mask = half_mask if scheme_name == "collaborative" else None
        plain = run_cost(scheme, deployment, helmet_mini, mask=mask, seed=42)
        wrapped = run_cost(scheme, unreliable_deployment, helmet_mini, mask=mask, seed=42)
        assert plain == wrapped

    @pytest.mark.parametrize("escalation", ESCALATIONS, ids=ESCALATION_IDS)
    @pytest.mark.parametrize("scheme_name", ["edge", "cloud", "collaborative"])
    def test_stream_identical(
        self, deployment, unreliable_deployment, helmet_mini, half_mask, small_batch, scheme_name, escalation
    ):
        config = StreamConfig(fps=6.0, duration_s=15.0)
        uploaded = half_mask if scheme_name == "collaborative" else None
        plain = StreamSimulator(deployment, helmet_mini, seed=42).run(
            scheme_name, config, uploaded, detections=small_batch, small_detections=small_batch
        )
        wrapped = StreamSimulator(unreliable_deployment, helmet_mini, seed=42).run(
            scheme_name,
            config,
            uploaded,
            detections=small_batch,
            small_detections=small_batch,
            escalation=escalation,
        )
        assert plain == wrapped
        assert wrapped.escalations_failed == 0
        assert wrapped.escalations_dropped == 0
        assert wrapped.escalations_recovered == 0

    @pytest.mark.parametrize("escalation", ESCALATIONS, ids=ESCALATION_IDS)
    def test_fleet_identical(self, deployment, unreliable_deployment, helmet_mini, half_mask, escalation):
        config = StreamConfig(fps=1.5, duration_s=30.0)
        kwargs = dict(cameras=8, mask=half_mask, seed=5)
        plain = simulate_fleet(collaborative_scheme(), deployment, helmet_mini, config, **kwargs)
        wrapped = simulate_fleet(
            collaborative_scheme(),
            unreliable_deployment,
            helmet_mini,
            config,
            escalation=escalation,
            **kwargs,
        )
        assert plain.cameras == wrapped.cameras
        assert plain.latency == wrapped.latency
        assert (plain.frames_offered, plain.frames_served, plain.frames_dropped, plain.frames_uploaded) == (
            wrapped.frames_offered,
            wrapped.frames_served,
            wrapped.frames_dropped,
            wrapped.frames_uploaded,
        )
        assert wrapped.escalations_failed == 0


class TestScheduleEquivalence:
    """A constant rate schedule is the plain scalar link: attaching
    ``RateSchedule.always(bandwidth)`` may not move a byte on any engine,
    scheme, fleet, or admission policy — the schedule-aware refactor's
    zero-overhead contract."""

    @pytest.fixture(scope="class")
    def scheduled_deployment(self, deployment):
        link = deployment.link.with_rate_schedule(
            RateSchedule.always(deployment.link.bandwidth_mbps)
        )
        assert link.bandwidth_mbps == deployment.link.bandwidth_mbps
        assert not link.time_varying
        return Deployment(
            edge=deployment.edge,
            cloud=deployment.cloud,
            link=link,
            small_model_flops=deployment.small_model_flops,
            big_model_flops=deployment.big_model_flops,
        )

    @pytest.mark.parametrize("scheme_name", ["edge", "cloud", "collaborative"])
    def test_static_engine_identical(
        self, deployment, scheduled_deployment, helmet_mini, half_mask, scheme_name
    ):
        scheme = paper_schemes()[scheme_name]
        mask = half_mask if scheme_name == "collaborative" else None
        plain = run_cost(scheme, deployment, helmet_mini, mask=mask, seed=42)
        scheduled = run_cost(scheme, scheduled_deployment, helmet_mini, mask=mask, seed=42)
        assert plain == scheduled

    @pytest.mark.parametrize("scheme_name", ["edge", "cloud", "collaborative"])
    @pytest.mark.parametrize(
        "config",
        [
            StreamConfig(fps=6.0, duration_s=15.0),
            StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=5),
        ],
        ids=["poisson", "saturating"],
    )
    def test_stream_identical(
        self, deployment, scheduled_deployment, helmet_mini, half_mask, scheme_name, config
    ):
        uploaded = half_mask if scheme_name == "collaborative" else None
        plain = StreamSimulator(deployment, helmet_mini, seed=42).run(scheme_name, config, uploaded)
        scheduled = StreamSimulator(scheduled_deployment, helmet_mini, seed=42).run(
            scheme_name, config, uploaded
        )
        assert plain == scheduled

    @pytest.mark.parametrize(
        "scheme_factory",
        [edge_only_scheme, cloud_only_scheme, collaborative_scheme],
        ids=["edge", "cloud", "collaborative"],
    )
    def test_fleet_identical(
        self, deployment, scheduled_deployment, helmet_mini, half_mask, scheme_factory
    ):
        config = StreamConfig(fps=1.5, duration_s=30.0)
        mask = half_mask if scheme_factory is collaborative_scheme else None
        kwargs = dict(cameras=8, mask=mask, seed=5)
        plain = simulate_fleet(scheme_factory(), deployment, helmet_mini, config, **kwargs)
        scheduled = simulate_fleet(
            scheme_factory(), scheduled_deployment, helmet_mini, config, **kwargs
        )
        assert plain == scheduled

    def test_schedule_aware_admission_identical_on_constant_link(
        self, deployment, scheduled_deployment, helmet_mini
    ):
        """On a fixed-rate link the schedule-aware estimator's floor is
        exactly zero, so both variants are the same run."""
        from repro.runtime.control import EstimatedDeadlineAware

        config = StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=30)
        runs = {}
        for label, dep, aware in (
            ("plain-aware", deployment, True),
            ("scheduled-aware", scheduled_deployment, True),
            ("scheduled-blind", scheduled_deployment, False),
        ):
            spec = StreamSpec(
                scheme=cloud_only_scheme(),
                config=config,
                admission=EstimatedDeadlineAware(freshness_s=2.0, schedule_aware=aware),
            )
            runs[label] = serve_stream(dep, helmet_mini, spec, seed=42)
        assert runs["plain-aware"] == runs["scheduled-aware"] == runs["scheduled-blind"]
        assert runs["plain-aware"].frames_shed > 0

    def test_constant_schedule_composes_with_unreliable_link(
        self, deployment, scheduled_deployment, helmet_mini, half_mask
    ):
        """Wrapping the scheduled link with an all-up outage schedule keeps
        the schedule field and still matches the plain run."""
        wrapped_link = UnreliableLink.wrap(
            scheduled_deployment.link, outages=OutageSchedule.always_up()
        )
        assert wrapped_link.schedule == scheduled_deployment.link.schedule
        wrapped = Deployment(
            edge=deployment.edge,
            cloud=deployment.cloud,
            link=wrapped_link,
            small_model_flops=deployment.small_model_flops,
            big_model_flops=deployment.big_model_flops,
        )
        config = StreamConfig(fps=6.0, duration_s=15.0)
        plain = StreamSimulator(deployment, helmet_mini, seed=42).run(
            "collaborative", config, half_mask
        )
        scheduled = StreamSimulator(wrapped, helmet_mini, seed=42).run(
            "collaborative", config, half_mask
        )
        assert plain == scheduled


class TestSpecEquivalence:
    """The spec front doors (`serve_stream`/`serve_fleet`) and the legacy
    keyword entry points (`simulate_stream`/`simulate_fleet`) are the same
    run, bit for bit — the API redesign may not move a single byte."""

    CONFIG = StreamConfig(fps=6.0, duration_s=15.0)

    @pytest.mark.parametrize("scheme", ["edge", "cloud", "collaborative"])
    def test_stream_spec_identical_to_kwargs(self, deployment, helmet_mini, half_mask, scheme):
        factory = {
            "edge": edge_only_scheme,
            "cloud": cloud_only_scheme,
            "collaborative": collaborative_scheme,
        }[scheme]
        mask = half_mask if scheme == "collaborative" else None
        spec = StreamSpec(scheme=factory(), config=self.CONFIG, mask=mask)
        via_spec = serve_stream(deployment, helmet_mini, spec, seed=42)
        via_kwargs = simulate_stream(
            factory(), deployment, helmet_mini, self.CONFIG, mask=mask, seed=42
        )
        assert via_spec == via_kwargs

    def test_stream_spec_with_admission_identical(self, deployment, helmet_mini):
        config = StreamConfig(fps=14.0, duration_s=25.0, max_edge_queue=30)
        spec = StreamSpec(
            scheme=cloud_only_scheme(), config=config, admission=DeadlineAware(freshness_s=2.0)
        )
        via_spec = serve_stream(deployment, helmet_mini, spec, seed=42)
        via_kwargs = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            config,
            admission=DeadlineAware(freshness_s=2.0),
            seed=42,
        )
        assert via_spec == via_kwargs
        assert via_spec.frames_shed > 0

    def test_fleet_spec_identical_to_kwargs(self, deployment, helmet_mini, half_mask):
        spec = FleetSpec(
            scheme=collaborative_scheme(),
            config=self.CONFIG,
            cameras=8,
            mask=half_mask,
            admission=DeadlineAware(freshness_s=2.0),
        )
        via_spec = serve_fleet(deployment, helmet_mini, spec, seed=5)
        via_kwargs = simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            cameras=8,
            mask=half_mask,
            admission=DeadlineAware(freshness_s=2.0),
            seed=5,
        )
        assert via_spec == via_kwargs

    def test_unset_camera_specs_inherit_fleet_defaults(self, deployment, helmet_mini, half_mask):
        """`CameraSpec()` per camera is the homogeneous fleet, bit for bit."""
        homogeneous = FleetSpec(
            scheme=collaborative_scheme(), config=self.CONFIG, cameras=4, mask=half_mask
        )
        explicit = FleetSpec(
            scheme=collaborative_scheme(),
            config=self.CONFIG,
            cameras=(CameraSpec(),) * 4,
            mask=half_mask,
        )
        assert serve_fleet(deployment, helmet_mini, homogeneous, seed=5) == serve_fleet(
            deployment, helmet_mini, explicit, seed=5
        )

    def test_spec_reuse_is_deterministic(self, deployment, helmet_mini):
        """One frozen spec value re-served across seeds and runs: the same
        seed reproduces exactly, different seeds are independent."""
        spec = StreamSpec(scheme=edge_only_scheme(), config=self.CONFIG)
        first = serve_stream(deployment, helmet_mini, spec, seed=7)
        second = serve_stream(deployment, helmet_mini, spec, seed=7)
        other = serve_stream(deployment, helmet_mini, spec, seed=8)
        assert first == second
        assert first.frames_offered != other.frames_offered or first != other
