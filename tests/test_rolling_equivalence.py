"""Bit-for-bit equality of the vectorized rolling evaluator vs the original.

``repro.metrics.rolling`` was rewritten from a per-frame / per-window Python
loop into one vectorized pass (block-diagonal greedy matching up front,
pure-arithmetic PR curves per window).  The rewrite claims *exact* output
equality, not approximate: every float in every :class:`RollingWindow` must
match what the original implementation produced.  ``_legacy_rolling.py`` is
the verbatim pre-rewrite module, kept as the oracle; these tests pin the two
against each other across serving schemes, fleet shapes, overlapping window
grids, admission shedding and failure-injection (deferred-verdict) runs.

Window comparison uses ``dataclasses.astuple`` — the legacy module defines
its own ``RollingWindow`` dataclass, and dataclass ``__eq__`` short-circuits
on class identity.  ``astuple`` equality on float fields IS bit-for-bit
(``==`` on floats), which is the claim under test.

The one intended divergence is also pinned: the legacy ``while i * step_s <
duration_s`` window grid emitted a trailing all-empty window whenever the
float product ``i * step_s`` rounded just below ``duration_s`` (e.g. ``3 *
0.3 < 0.9``); the rewrite's quotient-based count does not.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import numpy as np
import pytest

import _legacy_rolling as legacy
from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import ConfigurationError
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    CameraSpec,
    DeadlineAware,
    Deployment,
    EscalationPolicy,
    OutageSchedule,
    StreamConfig,
    UnreliableLink,
    cloud_only_scheme,
    collaborative_scheme,
    simulate_fleet,
    simulate_stream,
)
from repro.simulate import make_detector


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def small_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(helmet_mini))


def assert_identical(new_windows, old_windows):
    assert len(new_windows) == len(old_windows)
    for new, old in zip(new_windows, old_windows):
        assert dataclasses.astuple(new) == dataclasses.astuple(old)


class TestBitForBitEquality:
    CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0)

    def _compare(self, report, dataset, **kwargs):
        assert_identical(
            rolling_quality(report, dataset, **kwargs),
            legacy.rolling_quality(report, dataset, **kwargs),
        )

    def test_single_stream_adjacent_windows(self, deployment, helmet_mini, big_batch):
        report = simulate_stream(
            cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, detections=big_batch, seed=5
        )
        self._compare(report, helmet_mini, window_s=8.0, duration_s=40.0, freshness_s=2.0)
        self._compare(report, helmet_mini, window_s=8.0, duration_s=40.0)  # no freshness deadline

    def test_eight_camera_fleet(self, deployment, helmet_mini, big_batch):
        report = simulate_fleet(
            cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=8, detections=big_batch, seed=5
        )
        self._compare(report, helmet_mini, window_s=8.0, duration_s=40.0, freshness_s=2.0)

    def test_overlapping_windows(self, deployment, helmet_mini, big_batch):
        # step_s < window_s: every frame lands in several windows, and the
        # 20 s / 3 s grid is float-exact for both implementations
        report = simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=2.0, poisson=True, duration_s=20.0),
            cameras=4,
            detections=big_batch,
            seed=7,
        )
        self._compare(report, helmet_mini, window_s=8.0, step_s=3.0, duration_s=20.0, freshness_s=2.0)

    def test_out_of_order_multi_camera_arrivals(self, deployment, helmet_mini, big_batch):
        # heterogeneous frame rates: the concatenated fleet log interleaves
        # arrival times across cameras, so windowing must not assume a
        # globally sorted log
        cameras = [
            CameraSpec(config=StreamConfig(fps=fps, poisson=True, duration_s=24.0))
            for fps in (0.5, 3.0, 1.0, 2.0)
        ]
        report = simulate_fleet(
            cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=cameras, detections=big_batch, seed=11
        )
        arrivals = np.concatenate([camera.trace.arrivals for camera in report.cameras])
        assert (np.diff(arrivals) < 0).any()  # genuinely out of order
        self._compare(report, helmet_mini, window_s=6.0, duration_s=24.0, freshness_s=2.0)

    def test_admission_shedding_fleet(self, deployment, helmet_mini, big_batch):
        # saturate the shared uplink so DeadlineAware sheds frames: shed
        # frames score as drops and both implementations must agree
        report = simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=4.0, poisson=True, duration_s=20.0),
            cameras=8,
            detections=big_batch,
            admission=DeadlineAware(freshness_s=1.5),
            seed=5,
        )
        assert sum(camera.frames_shed for camera in report.cameras) > 0
        self._compare(report, helmet_mini, window_s=5.0, duration_s=20.0, freshness_s=1.5)

    def test_failure_injection_with_deferred_verdicts(self, deployment, helmet_mini, small_batch, big_batch):
        # outages with a durable escalation queue under the collaborative
        # scheme: failed escalations serve the edge verdict immediately and
        # the queue lands the deferred cloud verdict later, filling the
        # verdict columns — both reconciliations must agree, fresh-upgraded
        # or not
        faulty = Deployment(
            edge=deployment.edge,
            cloud=deployment.cloud,
            link=UnreliableLink.wrap(
                WLAN,
                outages=OutageSchedule.periodic(period_s=10.0, downtime_s=3.0, duration_s=40.0, offset_s=2.0),
                loss_probability=0.05,
            ),
            small_model_flops=deployment.small_model_flops,
            big_model_flops=deployment.big_model_flops,
        )
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::2] = True
        report = simulate_fleet(
            collaborative_scheme(),
            faulty,
            helmet_mini,
            self.CONFIG,
            cameras=4,
            mask=mask,
            small_detections=small_batch,
            detections=big_batch,
            escalation=EscalationPolicy.durable_queue(capacity=64, max_retries=6, max_backoff_s=8.0),
            seed=5,
        )
        assert any((camera.trace.verdict_segments >= 0).any() for camera in report.cameras)
        self._compare(report, helmet_mini, window_s=8.0, duration_s=40.0, freshness_s=4.0)
        self._compare(report, helmet_mini, window_s=8.0, duration_s=40.0)


class TestWindowGridRegression:
    def test_product_rounding_no_longer_emits_phantom_window(self, deployment, helmet_mini, big_batch):
        # 3 * 0.3 == 0.8999… < 0.9 in floats, yet 0.9 / 0.3 == 3.0 exactly:
        # the legacy loop emitted a 4th window starting *at* the horizon
        report = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=10.0, poisson=True, duration_s=0.9),
            detections=big_batch,
            seed=5,
        )
        new = rolling_quality(report, helmet_mini, window_s=0.6, step_s=0.3, duration_s=0.9)
        old = legacy.rolling_quality(report, helmet_mini, window_s=0.6, step_s=0.3, duration_s=0.9)
        assert len(new) == 3
        assert len(old) == 4  # the phantom trailing window the fix removes
        assert old[3].frames == 0
        assert old[3].t_start == pytest.approx(0.9)  # 0.8999… — rounded below the horizon
        assert_identical(new, old[:3])

    def test_quotient_rounding_still_trimmed(self):
        # the other failure mode: ceil(quotient) one too high is trimmed
        from repro.metrics.rolling import _window_count

        assert _window_count(0.9, 0.3) == 3
        assert _window_count(1.8, 0.6) == 3
        assert _window_count(40.0, 8.0) == 5
        assert _window_count(20.0, 3.0) == 7
        assert _window_count(0.0, 1.0) == 1


class TestSegmentMapFallbackExactness:
    def _stub(self, flags, batch_len):
        served = DetectionBatch(
            image_ids=tuple(f"img-{index}" for index in range(batch_len)),
            boxes=np.zeros((0, 4)),
            scores=np.zeros(0),
            labels=np.zeros(0, dtype=np.int64),
            offsets=np.zeros(batch_len + 1, dtype=np.int64),
            detector="stub",
        )
        count = flags.shape[0]
        return SimpleNamespace(
            cameras=None,
            served=served,
            frame_arrivals=np.linspace(0.0, 1.0, count),
            frame_times=np.linspace(0.0, 1.0, count),
            frame_records=np.zeros(count, dtype=np.int64),
            frame_served=flags,
            frame_segments=None,
            frame_verdict_times=None,
            frame_verdict_segments=None,
        )

    def test_served_flag_count_mismatch_rejected(self, helmet_mini):
        # a served batch with MORE segments than served flags (recovered
        # verdicts) cannot be mapped by counting flags — must refuse loudly
        # instead of silently misaligning every frame's detections
        report = self._stub(np.array([True, False, True]), batch_len=3)
        with pytest.raises(ConfigurationError, match="served flags"):
            rolling_quality(report, helmet_mini, window_s=1.0)

    def test_exact_flag_count_accepted(self, deployment, helmet_mini, big_batch):
        # strip the explicit segment map from a real report: counting flags
        # is exact here (every segment is a primary serve) and must
        # reproduce the mapped evaluation
        report = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.5, poisson=True, duration_s=20.0),
            detections=big_batch,
            seed=5,
        )
        trace = report.trace
        stripped = SimpleNamespace(
            cameras=None,
            served=report.served,
            frame_arrivals=trace.arrivals,
            frame_times=trace.times,
            frame_records=trace.records,
            frame_served=trace.served,
            frame_segments=None,
            frame_verdict_times=None,
            frame_verdict_segments=None,
        )
        assert_identical(
            rolling_quality(stripped, helmet_mini, window_s=5.0, duration_s=20.0, freshness_s=2.0),
            rolling_quality(report, helmet_mini, window_s=5.0, duration_s=20.0, freshness_s=2.0),
        )
