"""Tests for the edge-cloud runtime substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.errors import ConfigurationError, RuntimeModelError
from repro.runtime.codec import JpegCodec, detections_payload_bytes
from repro.runtime.devices import JETSON_NANO, RTX3060_SERVER, ComputeDevice
from repro.runtime.executor import Deployment, EdgeCloudRuntime
from repro.runtime.network import ETHERNET_1G, WLAN, NetworkLink


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.1)


@pytest.fixture(scope="module")
def runtime():
    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )
    return EdgeCloudRuntime(deployment=deployment, seed=99)


class TestDevices:
    def test_latency_formula(self):
        device = ComputeDevice(name="d", effective_gflops=100.0, overhead_s=0.001)
        assert device.inference_latency(1e9) == pytest.approx(0.011)

    def test_jetson_small_model_latency_near_paper(self):
        # Paper: small model 1 at ~47 ms/frame on the Jetson Nano.
        latency = JETSON_NANO.inference_latency(5.6e9)
        assert latency == pytest.approx(0.047, rel=0.15)

    def test_server_much_faster_than_edge(self):
        flops = 61.2e9
        assert RTX3060_SERVER.inference_latency(flops) < JETSON_NANO.inference_latency(flops)

    def test_invalid_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeDevice(name="x", effective_gflops=0.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            JETSON_NANO.inference_latency(-1.0)


class TestNetwork:
    def test_transfer_time_scales_with_payload(self):
        small = WLAN.expected_transfer_time(10_000)
        large = WLAN.expected_transfer_time(1_000_000)
        assert large > small

    def test_faster_link_is_faster(self):
        payload = 300_000
        assert ETHERNET_1G.expected_transfer_time(payload) < WLAN.expected_transfer_time(payload)

    def test_jitter_deterministic_given_rng(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        assert WLAN.transfer_time(1000, rng_a) == WLAN.transfer_time(1000, rng_b)

    def test_jittered_link_requires_rng(self):
        # WLAN has jitter_s > 0: sampling a transfer without an RNG used to
        # silently return the jitter-free figure; now it is an explicit error.
        with pytest.raises(ConfigurationError):
            WLAN.transfer_time(1000)

    def test_jitter_free_link_needs_no_rng(self):
        payload = 300_000
        assert ETHERNET_1G.transfer_time(payload) == ETHERNET_1G.expected_transfer_time(payload)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(name="x", bandwidth_mbps=0.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            WLAN.expected_transfer_time(-1)


class TestCodec:
    def test_bigger_image_bigger_payload(self, helmet_mini):
        codec = JpegCodec()
        record = helmet_mini.records[0]
        small_voc = load_dataset("voc07", "test", fraction=0.002).records[0]
        assert codec.encoded_bytes(record) > codec.encoded_bytes(small_voc)

    def test_degraded_image_compresses_better(self, helmet_mini):
        codec = JpegCodec()
        pristine = [r for r in helmet_mini.records if r.quality == 1.0]
        degraded = [r for r in helmet_mini.records if r.quality < 0.7]
        if pristine and degraded:
            assert codec.encoded_bytes(degraded[0]) < codec.encoded_bytes(pristine[0])

    def test_helmet_frame_size_plausible(self, helmet_mini):
        # 1280x720 JPEG at camera quality: roughly 60-250 kB.
        size = JpegCodec().encoded_bytes(helmet_mini.records[0])
        assert 40_000 < size < 300_000

    def test_payload_bytes_monotone(self):
        assert detections_payload_bytes(10) > detections_payload_bytes(1)

    def test_negative_boxes_rejected(self):
        with pytest.raises(ConfigurationError):
            detections_payload_bytes(-1)


class TestExecutor:
    def test_edge_only_no_uplink(self, runtime, helmet_mini):
        cost = runtime.run_edge_only(helmet_mini)
        assert cost.uplink_bytes == 0 and cost.upload_ratio == 0.0

    def test_cloud_only_uploads_everything(self, runtime, helmet_mini):
        cost = runtime.run_cloud_only(helmet_mini)
        assert cost.upload_ratio == 1.0
        assert cost.uplink_bytes > 0

    def test_ordering_edge_ours_cloud(self, runtime, helmet_mini):
        edge = runtime.run_edge_only(helmet_mini)
        cloud = runtime.run_cloud_only(helmet_mini)
        half = np.zeros(len(helmet_mini), dtype=bool)
        half[:: 2] = True
        ours = runtime.run_collaborative(helmet_mini, half)
        assert edge.latency.total < ours.latency.total < cloud.latency.total

    def test_collaborative_bandwidth_saving(self, runtime, helmet_mini):
        cloud = runtime.run_cloud_only(helmet_mini)
        half = np.zeros(len(helmet_mini), dtype=bool)
        half[: len(helmet_mini) // 2] = True
        ours = runtime.run_collaborative(helmet_mini, half)
        assert ours.bandwidth_saving_over(cloud) == pytest.approx(0.5, abs=0.1)

    def test_mask_misalignment_rejected(self, runtime, helmet_mini):
        with pytest.raises(RuntimeModelError):
            runtime.run_collaborative(helmet_mini, np.zeros(3, dtype=bool))

    def test_deterministic_totals(self, helmet_mini):
        deployment = Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=WLAN,
            small_model_flops=5.6e9,
            big_model_flops=61.2e9,
        )
        a = EdgeCloudRuntime(deployment=deployment, seed=1).run_cloud_only(helmet_mini)
        b = EdgeCloudRuntime(deployment=deployment, seed=1).run_cloud_only(helmet_mini)
        assert a.latency.total == pytest.approx(b.latency.total)

    def test_empty_upload_equals_edge_plus_discriminator(self, runtime, helmet_mini):
        none = runtime.run_collaborative(helmet_mini, np.zeros(len(helmet_mini), dtype=bool))
        edge = runtime.run_edge_only(helmet_mini)
        # Collaborative adds the (tiny) discriminator cost per image.
        assert none.latency.total >= edge.latency.total
        assert none.latency.total < edge.latency.total * 1.2

    def test_invalid_deployment_rejected(self):
        with pytest.raises(RuntimeModelError):
            Deployment(
                edge=JETSON_NANO,
                cloud=RTX3060_SERVER,
                link=WLAN,
                small_model_flops=0.0,
                big_model_flops=1.0,
            )
