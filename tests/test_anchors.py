"""Tests for SSD/YOLO anchor generation — the paper's box-budget numbers."""

from __future__ import annotations

import pytest

from repro.detection.anchors import (
    FeatureMapSpec,
    generate_anchors,
    num_anchors,
    ssd300_feature_maps,
    ssd300_small_feature_maps,
    yolo_feature_maps,
)
from repro.errors import ConfigurationError
from repro.zoo.yolo import yolo_small_feature_maps


class TestSsdBudget:
    def test_total_is_8732(self):
        assert num_anchors(ssd300_feature_maps()) == 8732

    def test_first_map_contributes_5776(self):
        maps = ssd300_feature_maps()
        assert maps[0].total_boxes == 5776

    def test_small_model_keeps_2956(self):
        assert num_anchors(ssd300_small_feature_maps()) == 8732 - 5776 == 2956

    def test_removed_fraction_is_66_percent(self):
        removed = 5776 / 8732
        assert removed == pytest.approx(0.66, abs=0.01)

    def test_boxes_per_location_pattern(self):
        pattern = [m.boxes_per_location for m in ssd300_feature_maps()]
        assert pattern == [4, 6, 6, 6, 4, 4]


class TestYoloBudget:
    def test_total_at_608(self):
        maps = yolo_feature_maps(608)
        assert num_anchors(maps) == 3 * (76**2 + 38**2 + 19**2) == 22743

    def test_small_drops_stride8(self):
        assert num_anchors(yolo_small_feature_maps(608)) == 3 * (38**2 + 19**2)

    def test_non_multiple_of_32_rejected(self):
        with pytest.raises(ConfigurationError):
            yolo_feature_maps(600)


class TestGeneration:
    def test_generated_count_matches_analytic(self):
        maps = ssd300_feature_maps()
        grid = generate_anchors(maps)
        assert grid.total == num_anchors(maps)

    def test_anchors_clipped_to_unit_square(self):
        grid = generate_anchors(ssd300_feature_maps())
        assert grid.boxes.min() >= 0.0 and grid.boxes.max() <= 1.0

    def test_per_map_counts(self):
        maps = ssd300_feature_maps()
        grid = generate_anchors(maps)
        assert grid.per_map_counts() == [m.total_boxes for m in maps]
        assert sum(grid.per_map_counts()) == grid.total

    def test_square_anchor_centres_form_grid(self):
        spec = FeatureMapSpec(size=2, scale=0.3, next_scale=None, aspect_ratios=())
        grid = generate_anchors((spec,))
        centers = (grid.boxes[:, :2] + grid.boxes[:, 2:]) / 2.0
        expected = {(0.25, 0.25), (0.25, 0.75), (0.75, 0.25), (0.75, 0.75)}
        got = {(round(cx, 6), round(cy, 6)) for cx, cy in centers}
        assert got == expected

    def test_empty_map_list_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_anchors(())

    def test_aspect_ratio_boxes_have_reciprocal_shapes(self):
        spec = FeatureMapSpec(size=1, scale=0.4, next_scale=None, aspect_ratios=(2.0,))
        grid = generate_anchors((spec,))
        # boxes: 1 square + 2 ratio boxes
        widths = grid.boxes[:, 2] - grid.boxes[:, 0]
        heights = grid.boxes[:, 3] - grid.boxes[:, 1]
        ratios = sorted((widths / heights).round(4).tolist())
        assert ratios[0] == pytest.approx(0.5, rel=1e-3)
        assert ratios[-1] == pytest.approx(2.0, rel=1e-3)
