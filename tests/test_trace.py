"""Tests for the columnar frame trace: layout, builder, percentiles, I/O.

The trace is the storage layer behind every streaming report's frame log, so
these tests pin its contracts directly — validation, value equality,
fleet-level concatenation with segment shifting, builder growth and in-place
verdict reconciliation, latency percentiles, and the ``.npz`` round-trip —
plus the report-level percentile helpers that read it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import ConfigurationError
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    FrameTrace,
    FrameTraceBuilder,
    StreamConfig,
    cloud_only_scheme,
    edge_only_scheme,
    simulate_fleet,
    simulate_stream,
)
from repro.simulate import make_detector


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


def _trace(arrivals, times, served, segments, verdict_times=None, verdict_segments=None):
    count = len(arrivals)
    return FrameTrace(
        arrivals=np.asarray(arrivals, dtype=np.float64),
        times=np.asarray(times, dtype=np.float64),
        records=np.arange(count, dtype=np.int64),
        served=np.asarray(served, dtype=bool),
        segments=np.asarray(segments, dtype=np.int64),
        verdict_times=np.full(count, -np.inf) if verdict_times is None else np.asarray(verdict_times, dtype=np.float64),
        verdict_segments=(
            np.full(count, -1, dtype=np.int64)
            if verdict_segments is None
            else np.asarray(verdict_segments, dtype=np.int64)
        ),
    )


class TestFrameTrace:
    def test_columns_coerced_and_validated(self):
        trace = _trace([0, 1], [1, 2], [1, 0], [0, -1])
        assert trace.arrivals.dtype == np.float64
        assert trace.served.dtype == bool
        assert trace.segments.dtype == np.int64
        assert len(trace) == 2

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="times"):
            FrameTrace(
                arrivals=np.zeros(2),
                times=np.zeros(3),
                records=np.zeros(2, dtype=np.int64),
                served=np.zeros(2, dtype=bool),
                segments=np.zeros(2, dtype=np.int64),
                verdict_times=np.zeros(2),
                verdict_segments=np.zeros(2, dtype=np.int64),
            )

    def test_value_equality_not_identity(self):
        a = _trace([0.0, 1.0], [0.5, 1.5], [True, True], [0, 1])
        b = _trace([0.0, 1.0], [0.5, 1.5], [True, True], [0, 1])
        c = _trace([0.0, 1.0], [0.5, 9.0], [True, True], [0, 1])
        assert a == b
        assert a != c
        assert a != "not a trace"
        assert hash(a) != hash(b) or a is b  # identity hash survives custom __eq__

    def test_empty(self):
        trace = FrameTrace.empty()
        assert len(trace) == 0
        assert trace.latencies().size == 0
        assert trace.latency_percentiles() == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}

    def test_concat_shifts_segments_and_preserves_drops(self):
        a = _trace([0.0, 1.0], [0.2, 1.0], [True, False], [0, -1], [5.0, -np.inf], [1, -1])
        b = _trace([0.5], [0.9], [True], [0])
        merged = FrameTrace.concat([a, b], segment_offsets=[0, 2])
        assert merged.segments.tolist() == [0, -1, 2]
        assert merged.verdict_segments.tolist() == [1, -1, -1]
        assert merged.arrivals.tolist() == [0.0, 1.0, 0.5]

    def test_concat_single_part_zero_offset_is_passthrough(self):
        a = _trace([0.0], [0.1], [True], [0])
        assert FrameTrace.concat([a], segment_offsets=[0]) is a
        assert FrameTrace.concat([a]) is a

    def test_concat_offset_count_mismatch_rejected(self):
        a = _trace([0.0], [0.1], [True], [0])
        with pytest.raises(ConfigurationError, match="segment offsets"):
            FrameTrace.concat([a, a], segment_offsets=[0])

    def test_concat_empty_sequence(self):
        assert len(FrameTrace.concat([])) == 0

    def test_latencies_served_only(self):
        trace = _trace([0.0, 1.0, 2.0], [0.25, 1.0, 2.75], [True, False, True], [0, -1, 1])
        assert trace.latencies().tolist() == [0.25, 0.75]

    def test_latency_percentiles_match_numpy(self):
        ages = np.linspace(0.01, 1.0, 100)
        trace = _trace(np.zeros(100), ages, np.ones(100, dtype=bool), np.arange(100))
        points = trace.latency_percentiles((50.0, 95.0, 99.0))
        expected = np.percentile(ages, [50.0, 95.0, 99.0])
        assert points[50.0] == pytest.approx(expected[0])
        assert points[95.0] == pytest.approx(expected[1])
        assert points[99.0] == pytest.approx(expected[2])

    def test_npz_round_trip(self, tmp_path):
        trace = _trace([0.0, 1.0], [0.5, 1.0], [True, False], [0, -1], [3.0, -np.inf], [1, -1])
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert FrameTrace.load(path) == trace

    def test_load_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, arrivals=np.zeros(1))
        with pytest.raises(ConfigurationError, match="missing columns"):
            FrameTrace.load(path)


class TestFrameTraceBuilder:
    def test_append_grows_and_builds(self):
        builder = FrameTraceBuilder()
        positions = [builder.append(float(i), float(i) + 0.5, i, True, i) for i in range(100)]
        assert positions == list(range(100))
        trace = builder.build()
        assert len(trace) == 100
        assert trace.arrivals.tolist() == [float(i) for i in range(100)]
        assert trace.segments.tolist() == list(range(100))
        assert not np.isfinite(trace.verdict_times).any()

    def test_reserve_is_single_allocation(self):
        builder = FrameTraceBuilder()
        builder.reserve(1000)
        buffer = builder._arrivals
        for i in range(1000):
            builder.append(float(i), float(i), i, False)
        assert builder._arrivals is buffer

    def test_set_verdict_and_mark_served_mutate_in_place(self):
        builder = FrameTraceBuilder()
        kept = builder.append(0.0, 0.1, 0, True, 0)
        dropped = builder.append(1.0, 1.0, 1, False)
        builder.set_verdict(kept, 4.0, 2)
        builder.mark_served(dropped, 5.0, 3)
        trace = builder.build()
        assert trace.verdict_times[kept] == 4.0
        assert trace.verdict_segments[kept] == 2
        assert trace.served[dropped]
        assert trace.times[dropped] == 5.0
        assert trace.segments[dropped] == 3


class TestReportPercentiles:
    CONFIG = StreamConfig(fps=1.0, poisson=True, duration_s=12.0)

    def test_stream_report_percentiles_from_trace(self, deployment, helmet_mini, big_batch):
        report = simulate_stream(
            cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, detections=big_batch, seed=3
        )
        points = report.latency_percentiles()
        ages = report.trace.latencies()
        assert points[50.0] == pytest.approx(float(np.percentile(ages, 50.0)))
        assert points[50.0] <= points[95.0] <= points[99.0]

    def test_stream_report_without_trace_raises(self, deployment, helmet_mini):
        report = simulate_stream(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, seed=3)
        assert report.trace is None
        with pytest.raises(ConfigurationError, match="no frame trace"):
            report.latency_percentiles()

    def test_fleet_trace_concatenates_cameras_with_offsets(self, deployment, helmet_mini, big_batch):
        fleet = simulate_fleet(
            cloud_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=3, detections=big_batch, seed=3
        )
        trace = fleet.trace()
        assert len(trace) == sum(len(camera.trace) for camera in fleet.cameras)
        # fleet segments index the *fleet-level* served batch: every camera's
        # segment range lands after the previous cameras' segments
        offset = 0
        start = 0
        for camera in fleet.cameras:
            rows = slice(start, start + len(camera.trace))
            shifted = trace.segments[rows]
            local = camera.trace.segments
            assert np.array_equal(shifted[local >= 0], local[local >= 0] + offset)
            assert (shifted[local < 0] == -1).all()
            offset += len(camera.served)
            start += len(camera.trace)
        points = fleet.latency_percentiles((50.0, 90.0))
        assert set(points) == {50.0, 90.0}

    def test_fleet_without_traces_raises(self, deployment, helmet_mini):
        fleet = simulate_fleet(edge_only_scheme(), deployment, helmet_mini, self.CONFIG, cameras=2, seed=3)
        with pytest.raises(ConfigurationError, match="fleet camera 0"):
            fleet.trace()


class TestProfileHook:
    def test_repro_profile_dumps_stats(self, deployment, helmet_mini, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
        config = StreamConfig(fps=1.0, poisson=True, duration_s=4.0)
        report = simulate_fleet(edge_only_scheme(), deployment, helmet_mini, config, cameras=2, seed=3)
        assert report.frames_offered > 0
        profile = tmp_path / "simulate_fleet.prof"
        assert profile.exists()
        import pstats

        stats = pstats.Stats(str(profile))
        assert stats.total_calls > 0

    def test_profile_off_by_default(self, deployment, helmet_mini, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
        config = StreamConfig(fps=1.0, poisson=True, duration_s=4.0)
        simulate_fleet(edge_only_scheme(), deployment, helmet_mini, config, cameras=2, seed=3)
        assert not (tmp_path / "simulate_fleet.prof").exists()
