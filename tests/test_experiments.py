"""Integration tests: harness caching, table/figure runners, report output.

These run at the quick configuration (small splits) and assert the paper's
*shape* properties rather than absolute values.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import (
    Harness,
    HarnessConfig,
    figure_04_case_scatter,
    figure_07_threshold_sweep,
    figure_08_map_vs_upload,
    figure_09_counts_vs_upload,
    format_figure,
    format_table,
    format_table_markdown,
    table_01_discriminator,
    table_02_model_zoo,
    table_03_map_small1,
    table_04_counts_small1,
    table_11_helmet_realworld,
    table_12_random_map,
)
from repro.experiments.figures import difficulty_priority


class TestHarnessCaching:
    def test_dataset_memoised(self, harness):
        a = harness.dataset("voc07", "test")
        b = harness.dataset("voc07", "test")
        assert a is b

    def test_detections_memoised(self, harness):
        a = harness.detections("small1", "voc07", "test")
        b = harness.detections("small1", "voc07", "test")
        assert a is b

    def test_disk_cache_roundtrip(self, quick_config):
        first = Harness(quick_config)
        original = first.detections("small1", "voc07", "test")
        second = Harness(quick_config)
        reloaded = second.detections("small1", "voc07", "test")
        assert len(original) == len(reloaded)
        for a, b in zip(original, reloaded):
            assert a.image_id == b.image_id
            np.testing.assert_allclose(a.boxes, b.boxes)
            np.testing.assert_allclose(a.scores, b.scores)
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_discriminator_memoised(self, harness):
        a, _ = harness.discriminator("small1", "ssd", "voc07")
        b, _ = harness.discriminator("small1", "ssd", "voc07")
        assert a is b

    def test_model_map_cached_and_bounded(self, harness):
        value = harness.model_map("ssd", "voc07")
        assert 0.0 < value < 100.0
        assert harness.model_map("ssd", "voc07") == value


class TestTableShapes:
    def test_table01_recall_high_on_ground_truth(self, harness):
        result = table_01_discriminator(harness)
        gt_row = result.row_for("features", "Ground Truth")
        pred_row = result.row_for("features", "Predicted")
        assert gt_row["recall"] > 85.0
        assert gt_row["accuracy"] > 70.0
        assert pred_row["accuracy"] <= gt_row["accuracy"] + 5.0

    def test_table02_pruned_above_80(self, harness):
        result = table_02_model_zoo(harness)
        for row in result.rows[:-1]:
            assert row["pruned_percent"] > 80.0

    def test_table03_orderings(self, harness):
        result = table_03_map_small1(harness)
        for row in result.rows[:-1]:
            assert row["small_map"] < row["e2e_map"] <= row["big_map"] + 2.0
            assert 20.0 < row["upload_percent"] < 80.0

    def test_table03_average_row(self, harness):
        result = table_03_map_small1(harness)
        average = result.rows[-1]
        assert average["setting"] == "Average"
        assert math.isnan(average["big_map"])

    def test_table04_count_ratios(self, harness):
        # Quick-scale splits make the threshold fit noisy; the strict >= 92 %
        # shape criterion is asserted by the full-scale benchmarks.
        result = table_04_counts_small1(harness)
        for row in result.rows[:-1]:
            assert row["small"] < row["e2e"] <= row["big"] * 1.02
            assert row["e2e_over_big_percent"] > 75.0

    def test_table11_runtime_ordering(self, harness):
        result = table_11_helmet_realworld(harness)
        times = result.row_for("metric", "total_inference_time_s")
        assert times["edge_only"] < times["ours"] < times["cloud_only"]
        maps = result.row_for("metric", "mAP")
        assert maps["edge_only"] < maps["ours"] < maps["cloud_only"]

    def test_table12_ours_beats_random(self, harness):
        result = table_12_random_map(harness)
        for row in result.rows:
            assert row["ours_e2e_map"] > row["baseline_e2e_map"]


class TestFigureShapes:
    def test_fig04_separation(self, harness):
        figure = figure_04_case_scatter(harness)
        easy_counts = np.asarray(figure.series["easy_count"])
        difficult_counts = np.asarray(figure.series["difficult_count"])
        easy_areas = np.asarray(figure.series["easy_min_area"])
        difficult_areas = np.asarray(figure.series["difficult_min_area"])
        assert difficult_counts.mean() > easy_counts.mean()
        assert np.median(difficult_areas) < np.median(easy_areas)

    def test_fig07_recall_monotone(self, harness):
        figure = figure_07_threshold_sweep(harness)
        recalls = figure.series["recall"]
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_fig08_concave_increasing_with_knee(self, harness):
        figure = figure_08_map_vs_upload(harness)
        maps = figure.series["e2e_map"]
        assert maps[0] < maps[-1]
        assert all(b >= a - 0.8 for a, b in zip(maps, maps[1:]))  # ~monotone
        fraction = figure.series["fraction_of_cloud_only"]
        # The paper's knee: at 50% upload, >= ~85% of cloud-only quality.
        assert fraction[5] > 0.85
        # Concavity: the first half of the climb gains more than the second.
        first_half = maps[5] - maps[0]
        second_half = maps[10] - maps[5]
        assert first_half > second_half

    def test_fig09_counts_knee(self, harness):
        figure = figure_09_counts_vs_upload(harness)
        fraction = figure.series["fraction_of_cloud_only"]
        assert fraction[5] > 0.85
        assert fraction[-1] == pytest.approx(1.0, abs=1e-6)

    def test_difficulty_priority_orders_uncertain_first(self):
        priority = difficulty_priority(np.array([1, 2]), np.array([2, 2]), np.array([0.4, 0.4]))
        assert priority[0] > priority[1]


class TestAdmissionExperiment:
    """Table XIX / Figure 11: admission policy x scheme on the fleet."""

    def test_outcomes_memoised_and_shared(self, harness):
        first = harness.admission_outcomes()
        assert harness.admission_outcomes() is first
        assert len(first) == 6  # 2 schemes x 3 admission policies

    def test_table19_deadline_aware_wins_saturated(self, harness):
        from repro.experiments import table_19_admission_policies

        result = table_19_admission_policies(harness)
        assert len(result.rows) == 6
        by_key = {(row["scheme"], row["admission"]): row for row in result.rows}
        newest = by_key[("cloud-only", "drop-newest")]
        deadline = by_key[("cloud-only", "deadline-aware")]
        # The acceptance gap: deadline-aware admission measurably beats the
        # historical drop-newest buffer on rolling mAP at the deadline.
        assert deadline["rolling_map"] > 2.0 * newest["rolling_map"]
        assert deadline["fresh_percent"] > newest["fresh_percent"]
        assert deadline["shed_percent"] > 0.0
        assert newest["shed_percent"] == 0.0
        # Control: the unsaturated discriminator fleet is admission-invariant.
        discriminator_rows = [row for (scheme, _), row in by_key.items() if scheme == "discriminator"]
        assert len({row["rolling_map"] for row in discriminator_rows}) == 1
        assert all(row["drop_percent"] == 0.0 for row in discriminator_rows)

    def test_figure11_tradeoff_consistent_with_table(self, harness):
        from repro.experiments import figure_11_staleness_tradeoff

        figure = figure_11_staleness_tradeoff(harness)
        assert len(figure.x_values) == 6
        assert len(figure.series["rolling_map"]) == 6
        assert len(figure.series["fresh_percent"]) == 6
        # Staler served streams never score better than fresh ones at the
        # two extremes of the trade-off.
        stalest = figure.x_values.index(max(figure.x_values))
        freshest = figure.x_values.index(min(figure.x_values))
        assert figure.series["rolling_map"][freshest] >= figure.series["rolling_map"][stalest]


class TestAvailabilityExperiment:
    """Table XX / Figure 12: escalation policies under uplink outages."""

    def test_outcomes_memoised_and_shaped(self, harness):
        first = harness.availability_outcomes()
        assert harness.availability_outcomes() is first
        assert len(first) == 12  # 2 outage schedules x 2 schemes x 3 escalations

    def test_table20_durable_queue_recovers(self, harness):
        from repro.experiments import table_20_availability

        result = table_20_availability(harness)
        assert len(result.rows) == 12
        by_key = {(row["outage"], row["scheme"], row["escalation"]): row for row in result.rows}
        for outage in ("periodic-30", "random-30"):
            drop = by_key[(outage, "cloud-only", "drop-on-failure")]
            durable = by_key[(outage, "cloud-only", "durable-queue")]
            # Only the durable spool recovers verdicts; the drop policies
            # lose the same frames for good and score worse for it.
            assert durable["recovered_verdicts"] > 0
            assert drop["recovered_verdicts"] == 0
            assert durable["frames_lost_percent"] < drop["frames_lost_percent"]
            assert durable["rolling_map"] > drop["rolling_map"]
            # Graceful degradation: the discriminator fleet serves edge
            # verdicts on failure, so the fallback policies lose no frames.
            for escalation in ("drop-on-failure", "durable-queue"):
                assert by_key[(outage, "discriminator", escalation)]["frames_lost_percent"] == 0.0

    def test_figure12_series_match_outcomes(self, harness):
        from repro.experiments import figure_12_outage_recovery

        figure = figure_12_outage_recovery(harness)
        assert len(figure.series) == 6  # periodic-30 only: 2 schemes x 3 escalations
        assert all(len(values) == len(figure.x_values) for values in figure.series.values())
        durable = figure.series["cloud-only/durable-queue"]
        drop = figure.series["cloud-only/drop-on-failure"]
        assert sum(durable) > sum(drop)


class TestControlExperiment:
    """Table XXI / Figure 13: the closed-loop fleet control plane."""

    def test_outcomes_memoised_and_shaped(self, harness):
        first = harness.control_outcomes()
        assert harness.control_outcomes() is first
        assert len(first) == 6  # 4 admission rows + 2 drift rows
        assert [outcome.group for outcome in first].count("admission") == 4

    def test_table21_estimated_recovers_omniscient_gap(self, harness):
        from repro.experiments import table_21_control_plane

        result = table_21_control_plane(harness)
        assert len(result.rows) == 6
        by_key = {(row["group"], row["policy"]): row for row in result.rows}
        floor = by_key[("admission", "drop-newest")]["rolling_map"]
        omniscient = by_key[("admission", "deadline-aware")]["rolling_map"]
        estimated = by_key[("admission", "estimated-deadline")]["rolling_map"]
        coordinated = by_key[("admission", "coordinated")]["rolling_map"]
        # Acceptance: EWMA estimates recover >= 70% of the rolling-mAP gap
        # the omniscient policy opens over the historical drop-newest
        # buffer, and fleet-wide coordination never does worse than the
        # per-camera estimates it is built on.
        gap = omniscient - floor
        assert gap > 0.0
        assert (estimated - floor) >= 0.7 * gap
        assert coordinated >= estimated

    def test_table21_adaptive_quota_beats_static_under_drift(self, harness):
        from repro.experiments import table_21_control_plane

        result = table_21_control_plane(harness)
        by_key = {(row["group"], row["policy"]): row for row in result.rows}
        static = by_key[("drift", "static-threshold")]
        adaptive = by_key[("drift", "adaptive-quota")]
        # The statically fitted thresholds over-upload on the drifted night
        # cameras and saturate the congested uplink; the adaptive quotas
        # cut uploads to the affordable budget and score better for it.
        assert adaptive["rolling_map"] > static["rolling_map"]
        assert adaptive["fresh_percent"] > static["fresh_percent"]
        assert adaptive["uploads"] < static["uploads"]

    def test_figure13_series_match_outcomes(self, harness):
        from repro.experiments import figure_13_control_plane

        figure = figure_13_control_plane(harness)
        assert len(figure.series) == 6
        assert all(len(values) == len(figure.x_values) for values in figure.series.values())
        assert figure.x_values == sorted(figure.x_values)
        coordinated = figure.series["admission/coordinated"]
        newest = figure.series["admission/drop-newest"]
        assert sum(coordinated) > sum(newest)


class TestNetworkExperiment:
    """Table XXII / Figure 14: trace-driven bandwidth through the stack."""

    def test_outcomes_memoised_and_shaped(self, harness):
        first = harness.network_outcomes()
        assert harness.network_outcomes() is first
        # 3 profiles x 2 schemes x 3 admission policies
        assert len(first) == 18
        assert {o.profile for o in first} == {"constant", "periodic-dip", "lte-trace"}
        assert {o.scheme for o in first} == {"cloud-only", "discriminator"}

    def test_constant_profile_schedule_aware_is_identical(self, harness):
        """On the constant profile the schedule-aware floor is exactly zero,
        so both estimator variants are the same run."""
        by = {(o.profile, o.scheme, o.admission): o for o in harness.network_outcomes()}
        for scheme in ("cloud-only", "discriminator"):
            aware = by[("constant", scheme, "estimated-schedule")]
            blind = by[("constant", scheme, "estimated-constant")]
            assert aware.report == blind.report

    def test_table22_schedule_awareness_pays_on_lte_trace(self, harness):
        from repro.experiments import table_22_network

        result = table_22_network(harness)
        assert len(result.rows) == 18
        by_key = {(row["profile"], row["scheme"], row["admission"]): row for row in result.rows}
        # Acceptance: on the LTE-like trace the schedule-aware estimator is
        # at least as good as the constant-estimate variant on rolling mAP —
        # the congestion trough dooms frames the EWMA memory still admits.
        for scheme in ("cloud-only", "discriminator"):
            aware = by_key[("lte-trace", scheme, "estimated-schedule")]["rolling_map"]
            blind = by_key[("lte-trace", scheme, "estimated-constant")]["rolling_map"]
            assert aware >= blind
        # And it is strictly better somewhere: awareness is not a no-op.
        assert (
            by_key[("lte-trace", "cloud-only", "estimated-schedule")]["rolling_map"]
            > by_key[("lte-trace", "cloud-only", "estimated-constant")]["rolling_map"]
        )

    def test_table22_discriminator_degrades_more_gracefully(self, harness):
        """The discriminator's edge verdicts ride the bandwidth dip that
        starves cloud-only: its rolling-mAP loss through each time-varying
        profile is strictly smaller."""
        from repro.experiments import table_22_network

        result = table_22_network(harness)
        by_key = {(row["profile"], row["scheme"], row["admission"]): row for row in result.rows}
        for profile in ("periodic-dip", "lte-trace"):
            losses = {}
            for scheme in ("cloud-only", "discriminator"):
                const = by_key[("constant", scheme, "estimated-schedule")]["rolling_map"]
                varying = by_key[(profile, scheme, "estimated-schedule")]["rolling_map"]
                losses[scheme] = const - varying
            assert losses["discriminator"] < losses["cloud-only"]

    def test_figure14_series_match_outcomes(self, harness):
        from repro.experiments import figure_14_network

        figure = figure_14_network(harness)
        assert len(figure.series) == 6
        assert all(len(values) == len(figure.x_values) for values in figure.series.values())
        assert figure.x_values == sorted(figure.x_values)
        disc = figure.series["discriminator/estimated-schedule"]
        cloud = figure.series["cloud-only/estimated-schedule"]
        assert sum(disc) > sum(cloud)


class TestFormatting:
    def test_text_table_contains_rows(self, harness):
        text = format_table(table_02_model_zoo(harness))
        assert "small1" in text and "ssd" in text

    def test_markdown_table_has_paper_columns(self, harness):
        markdown = format_table_markdown(table_02_model_zoo(harness))
        assert "(measured)" in markdown and "(paper)" in markdown

    def test_figure_formatting(self, harness):
        text = format_figure(figure_07_threshold_sweep(harness))
        assert "Figure 7" in text and "accuracy" in text


class TestQuickConfig:
    def test_quick_sizes(self):
        config = HarnessConfig.quick()
        assert config.train_images <= 1000
        assert config.test_fraction <= 0.2
