"""Availability under failure: outage schedules, lossy uplinks, escalation.

Covers the failure-injection layer end to end: the
:class:`~repro.runtime.network.OutageSchedule` arithmetic, the
:class:`~repro.runtime.network.UnreliableLink` fault model, the faulty
:class:`~repro.runtime.events.FifoResource`, the per-camera durable
:class:`~repro.runtime.serving.EscalationQueue`, and the rolling-quality
reconciliation of deferred cloud verdicts — including the acceptance pin
that a durable queue beats drop-on-failure on rolling mAP under a
saturated-fleet outage schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.errors import ConfigurationError
from repro.metrics.latency import summarize_latencies
from repro.metrics.rolling import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EscalationPolicy,
    EventLoop,
    FifoResource,
    FrameTrace,
    OutageSchedule,
    StreamConfig,
    StreamReport,
    UnreliableLink,
    cloud_only_scheme,
    collaborative_scheme,
    simulate_fleet,
    simulate_stream,
)
from repro.simulate import make_detector


# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.05)


@pytest.fixture(scope="module")
def small_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


def _deployment(link):
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=link,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


OUTAGE = OutageSchedule.periodic(period_s=10.0, downtime_s=3.0, duration_s=30.0, offset_s=2.0)
DURABLE = EscalationPolicy.durable_queue(capacity=64, max_retries=6, max_backoff_s=8.0)


# --------------------------------------------------------------------- #
# OutageSchedule
# --------------------------------------------------------------------- #
class TestOutageSchedule:
    def test_periodic_windows(self):
        schedule = OutageSchedule.periodic(period_s=10.0, downtime_s=3.0, duration_s=25.0, offset_s=2.0)
        assert schedule.windows == ((2.0, 5.0), (12.0, 15.0), (22.0, 25.0))
        assert schedule.downtime_within(25.0) == pytest.approx(9.0)

    def test_is_down_boundaries(self):
        schedule = OutageSchedule(windows=((2.0, 5.0),))
        assert not schedule.is_down(1.999)
        assert schedule.is_down(2.0)  # closed at the start
        assert schedule.is_down(4.999)
        assert not schedule.is_down(5.0)  # open at the end

    def test_failure_instant(self):
        schedule = OutageSchedule(windows=((2.0, 5.0), (10.0, 11.0)))
        assert schedule.failure_instant(3.0, 0.5) == 3.0  # already down
        assert schedule.failure_instant(1.0, 2.5) == 2.0  # outage begins mid-transfer
        assert schedule.failure_instant(5.0, 4.0) is None  # fits between outages
        assert schedule.failure_instant(5.0, 6.0) == 10.0
        assert schedule.failure_instant(20.0, 100.0) is None  # past the last window

    def test_random_schedule_deterministic_and_validated(self):
        a = OutageSchedule.random(seed=3, duration_s=60.0, mean_up_s=7.0, mean_down_s=3.0)
        b = OutageSchedule.random(seed=3, duration_s=60.0, mean_up_s=7.0, mean_down_s=3.0)
        assert a == b
        assert a.windows  # a 30% downtime target over 60 s produces outages
        c = OutageSchedule.random(seed=4, duration_s=60.0, mean_up_s=7.0, mean_down_s=3.0)
        assert a != c

    def test_malformed_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageSchedule(windows=((5.0, 2.0),))
        with pytest.raises(ConfigurationError):
            OutageSchedule(windows=((0.0, 3.0), (2.0, 4.0)))  # overlapping
        with pytest.raises(ConfigurationError):
            OutageSchedule.periodic(period_s=5.0, downtime_s=5.0, duration_s=10.0)

    def test_always_up_never_down(self):
        schedule = OutageSchedule.always_up()
        assert not schedule.is_down(0.0)
        assert schedule.failure_instant(0.0, 1e9) is None


# --------------------------------------------------------------------- #
# UnreliableLink
# --------------------------------------------------------------------- #
class TestUnreliableLink:
    def test_wrap_keeps_timing(self):
        link = UnreliableLink.wrap(WLAN, outages=OUTAGE, loss_probability=0.1)
        assert link.expected_transfer_time(100_000) == WLAN.expected_transfer_time(100_000)
        assert (link.name, link.bandwidth_mbps, link.rtt_s, link.jitter_s) == (
            WLAN.name,
            WLAN.bandwidth_mbps,
            WLAN.rtt_s,
            WLAN.jitter_s,
        )

    def test_transfer_outcome_truncates_at_outage(self):
        link = UnreliableLink.wrap(WLAN, outages=OutageSchedule(windows=((2.0, 5.0),)))
        assert link.transfer_outcome(3.0, 1.0) == (0.0, False)  # already down
        assert link.transfer_outcome(1.0, 2.5) == (1.0, False)  # fails at t=2
        assert link.transfer_outcome(5.0, 1.0) == (1.0, True)

    def test_loss_probability_draws_from_rng(self):
        link = UnreliableLink.wrap(WLAN, loss_probability=0.5)
        rng = np.random.default_rng(0)
        outcomes = [link.transfer_outcome(0.0, 1.0, rng)[1] for _ in range(200)]
        losses = outcomes.count(False)
        assert 60 < losses < 140  # ~50%
        # a lost transfer still occupies the link for its full duration
        assert all(link.transfer_outcome(0.0, 1.0, np.random.default_rng(i))[0] == 1.0 for i in range(5))

    def test_zero_loss_consumes_no_draws(self):
        link = UnreliableLink.wrap(WLAN)
        rng = np.random.default_rng(0)
        link.transfer_outcome(0.0, 1.0, rng)
        assert float(rng.random()) == float(np.random.default_rng(0).random())

    def test_invalid_loss_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            UnreliableLink.wrap(WLAN, loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            UnreliableLink.wrap(WLAN, loss_probability=-0.1)


# --------------------------------------------------------------------- #
# faulty FifoResource
# --------------------------------------------------------------------- #
class TestFaultyResource:
    def test_in_flight_job_fails_at_outage_instant(self):
        link = UnreliableLink.wrap(WLAN, outages=OutageSchedule(windows=((2.0, 5.0),)))
        loop = EventLoop()
        resource = FifoResource(loop, "uplink", faults=link.fault_model(None))
        events: list[tuple[str, float]] = []
        # enters service at t=0 with 3 s of work: the outage at t=2 kills it
        resource.acquire(3.0, lambda t: events.append(("done", t)), lambda t: events.append(("fail", t)))
        # queued behind: would start inside the outage, fails instantly at 2.0
        resource.acquire(1.0, lambda t: events.append(("done", t)), lambda t: events.append(("fail", t)))
        loop.run()
        assert events == [("fail", 2.0), ("fail", 2.0)]
        assert resource.jobs_failed == 2 and resource.jobs_served == 0
        assert resource.busy_time == pytest.approx(2.0)  # truncated occupancy

    def test_faulty_resource_requires_on_fail(self):
        link = UnreliableLink.wrap(WLAN, outages=OUTAGE)
        loop = EventLoop()
        resource = FifoResource(loop, "uplink", faults=link.fault_model(None))
        with pytest.raises(ConfigurationError):
            resource.acquire(1.0, lambda _t: None)

    def test_reliable_resource_never_calls_on_fail(self):
        loop = EventLoop()
        resource = FifoResource(loop, "uplink")
        events: list[str] = []
        resource.acquire(1.0, lambda _t: events.append("done"), lambda _t: events.append("fail"))
        loop.run()
        assert events == ["done"]
        assert resource.jobs_failed == 0
        assert not resource.can_fail


# --------------------------------------------------------------------- #
# EscalationPolicy
# --------------------------------------------------------------------- #
class TestEscalationPolicy:
    def test_stock_policies(self):
        assert not EscalationPolicy.no_retry().fallback
        assert not EscalationPolicy.no_retry().durable
        assert EscalationPolicy.drop_on_failure().fallback
        assert not EscalationPolicy.drop_on_failure().durable
        assert EscalationPolicy.durable_queue().durable

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EscalationPolicy(capacity=-1)
        with pytest.raises(ConfigurationError):
            EscalationPolicy(max_retries=0)
        with pytest.raises(ConfigurationError):
            EscalationPolicy(base_backoff_s=0.0)
        with pytest.raises(ConfigurationError):
            EscalationPolicy(max_backoff_s=0.1, base_backoff_s=0.5)
        with pytest.raises(ConfigurationError):
            EscalationPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            EscalationPolicy.durable_queue(capacity=0)


# --------------------------------------------------------------------- #
# stream-level failure behaviour
# --------------------------------------------------------------------- #
class TestStreamUnderOutage:
    CONFIG = StreamConfig(fps=2.0, duration_s=30.0, poisson=True, max_edge_queue=10)

    def _mask(self, dataset):
        mask = np.zeros(len(dataset), dtype=bool)
        mask[::2] = True
        return mask

    @pytest.mark.parametrize(
        "policy",
        [EscalationPolicy.no_retry(), EscalationPolicy.drop_on_failure(), DURABLE],
        ids=lambda p: p.name,
    )
    def test_served_plus_dropped_equals_offered(self, helmet_mini, small_batch, big_batch, policy):
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE, loss_probability=0.05))
        for scheme, kwargs in (
            (cloud_only_scheme(), dict(detections=big_batch)),
            (
                collaborative_scheme(),
                dict(mask=self._mask(helmet_mini), small_detections=small_batch, detections=big_batch),
            ),
        ):
            report = simulate_stream(
                scheme, deployment, helmet_mini, self.CONFIG, escalation=policy, seed=7, **kwargs
            )
            assert report.frames_served + report.frames_dropped == report.frames_offered
            assert report.escalations_failed > 0
            # every initially-failed escalation resolves exactly one way
            if not policy.durable:
                assert report.escalations_recovered == 0

    def test_cloud_only_drop_vs_durable(self, helmet_mini, big_batch):
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE))
        drop = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            detections=big_batch,
            escalation=EscalationPolicy.drop_on_failure(),
            seed=7,
        )
        durable = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            detections=big_batch,
            escalation=DURABLE,
            seed=7,
        )
        # cloud-only has no edge verdict: failures drop frames unless recovered
        assert drop.frames_dropped > 0
        assert drop.escalations_dropped == drop.frames_dropped
        assert durable.escalations_recovered > 0
        assert durable.frames_served > drop.frames_served
        # a recovered frame is served late: its latency spans the backoff
        assert durable.latency.p99 > drop.latency.p99

    def test_collaborative_fallback_serves_edge_verdict(self, helmet_mini, small_batch, big_batch):
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE))
        mask = self._mask(helmet_mini)
        report = simulate_stream(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            mask=mask,
            small_detections=small_batch,
            detections=big_batch,
            escalation=EscalationPolicy.drop_on_failure(),
            seed=7,
        )
        # graceful degradation: every failed escalation still served a frame
        assert report.frames_dropped == 0
        assert report.escalations_failed > 0
        assert report.escalations_dropped == report.escalations_failed
        # the log maps every frame to a segment; no deferred verdicts landed
        assert (report.frame_segments >= 0).all()
        assert (report.frame_verdict_segments == -1).all()

    def test_collaborative_durable_records_deferred_verdicts(self, helmet_mini, small_batch, big_batch):
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE))
        report = simulate_stream(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            mask=self._mask(helmet_mini),
            small_detections=small_batch,
            detections=big_batch,
            escalation=DURABLE,
            seed=7,
        )
        assert report.escalations_recovered > 0
        recovered = report.frame_verdict_segments >= 0
        assert int(recovered.sum()) == report.escalations_recovered
        # the deferred verdict lands strictly after the fallback serve
        assert (report.frame_verdict_times[recovered] > report.frame_times[recovered]).all()
        # the served batch carries the recovered segments on top of the serves
        assert len(report.served) == report.frames_served + report.escalations_recovered

    def test_fallback_requires_small_detections(self, helmet_mini, big_batch):
        deployment = _deployment(_deployment(WLAN).link)  # plain link first: fine
        simulate_stream(
            collaborative_scheme(),
            deployment,
            helmet_mini,
            self.CONFIG,
            mask=self._mask(helmet_mini),
            detections=big_batch,
            seed=7,
        )
        faulty = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE))
        with pytest.raises(ConfigurationError):
            simulate_stream(
                collaborative_scheme(),
                faulty,
                helmet_mini,
                self.CONFIG,
                mask=self._mask(helmet_mini),
                detections=big_batch,
                seed=7,
            )

    def test_retry_cap_abandons_unlucky_cases(self, helmet_mini, big_batch):
        # a very lossy link with a tight retry budget must abandon cases
        deployment = _deployment(UnreliableLink.wrap(WLAN, loss_probability=0.9))
        policy = EscalationPolicy.durable_queue(capacity=8, max_retries=2, base_backoff_s=0.1, max_backoff_s=0.2)
        report = simulate_stream(
            cloud_only_scheme(),
            deployment,
            helmet_mini,
            StreamConfig(fps=1.0, duration_s=20.0, poisson=False, max_edge_queue=10),
            detections=big_batch,
            escalation=policy,
            seed=11,
        )
        assert report.escalations_dropped > 0
        assert report.frames_served + report.frames_dropped == report.frames_offered

    def test_outage_runs_deterministic(self, helmet_mini, small_batch, big_batch):
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=OUTAGE, loss_probability=0.05))
        runs = [
            simulate_stream(
                collaborative_scheme(),
                deployment,
                helmet_mini,
                self.CONFIG,
                mask=self._mask(helmet_mini),
                small_detections=small_batch,
                detections=big_batch,
                escalation=DURABLE,
                seed=13,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


# --------------------------------------------------------------------- #
# cloud-side outages: the GPU service itself goes down
# --------------------------------------------------------------------- #
class TestCloudOutages:
    """``Deployment.cloud_outages`` fails frames at the cloud GPU, not the
    link: the upload stands (its bytes crossed), the verdict is lost, and
    the same escalation machinery decides what happens next."""

    CONFIG = StreamConfig(fps=2.0, duration_s=30.0, poisson=True, max_edge_queue=10)

    def _cloudy(self, outages=OUTAGE):
        return Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=WLAN,
            small_model_flops=5.6e9,
            big_model_flops=61.2e9,
            cloud_outages=outages,
        )

    def test_always_up_cloud_is_bit_for_bit_plain(self, helmet_mini, big_batch):
        """An empty (or None) cloud schedule keeps the pre-outage path."""
        plain = simulate_stream(
            cloud_only_scheme(), _deployment(WLAN), helmet_mini, self.CONFIG,
            detections=big_batch, seed=7,
        )
        empty = simulate_stream(
            cloud_only_scheme(), self._cloudy(OutageSchedule.always_up()), helmet_mini,
            self.CONFIG, detections=big_batch, seed=7,
        )
        assert plain == empty

    def test_cloud_failures_escalate_on_reliable_link(self, helmet_mini, big_batch):
        """Escalations fire even though the link itself never fails."""
        report = simulate_stream(
            cloud_only_scheme(), self._cloudy(), helmet_mini, self.CONFIG,
            detections=big_batch, escalation=EscalationPolicy.drop_on_failure(), seed=7,
        )
        assert report.escalations_failed > 0
        assert report.frames_served + report.frames_dropped == report.frames_offered
        # The upload completed before the cloud failed: failed frames still
        # count as uploaded, unlike an uplink failure.
        assert report.frames_uploaded > report.frames_served

    def test_durable_queue_recovers_cloud_failures(self, helmet_mini, big_batch):
        drop = simulate_stream(
            cloud_only_scheme(), self._cloudy(), helmet_mini, self.CONFIG,
            detections=big_batch, escalation=EscalationPolicy.drop_on_failure(), seed=7,
        )
        durable = simulate_stream(
            cloud_only_scheme(), self._cloudy(), helmet_mini, self.CONFIG,
            detections=big_batch, escalation=DURABLE, seed=7,
        )
        assert durable.escalations_recovered > 0
        assert durable.frames_served > drop.frames_served

    def test_collaborative_cloud_outage_requires_fallback_verdicts(self, helmet_mini, big_batch):
        """A failable cloud, like a failable link, needs small_detections."""
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::2] = True
        with pytest.raises(ConfigurationError):
            simulate_stream(
                collaborative_scheme(), self._cloudy(), helmet_mini, self.CONFIG,
                mask=mask, detections=big_batch, seed=7,
            )

    def test_cloud_and_link_outages_compose(self, helmet_mini, small_batch, big_batch):
        """Staggered cloud and link windows both feed the escalation queue."""
        link_outages = OutageSchedule.periodic(
            period_s=10.0, downtime_s=2.0, duration_s=30.0, offset_s=6.0
        )
        deployment = Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=UnreliableLink.wrap(WLAN, outages=link_outages),
            small_model_flops=5.6e9,
            big_model_flops=61.2e9,
            cloud_outages=OUTAGE,
        )
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::2] = True
        runs = [
            simulate_stream(
                collaborative_scheme(), deployment, helmet_mini, self.CONFIG,
                mask=mask, small_detections=small_batch, detections=big_batch,
                escalation=DURABLE, seed=13,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        report = runs[0]
        assert report.escalations_failed > 0
        assert report.escalations_recovered > 0
        assert report.frames_served + report.frames_dropped == report.frames_offered

    def test_fleet_cloud_outage_durable_beats_drop(self, helmet_mini, big_batch):
        """The Table XX acceptance shape holds for cloud-side outages too."""
        config = StreamConfig(fps=1.5, duration_s=30.0, poisson=True, max_edge_queue=30)

        def run(policy):
            return simulate_fleet(
                cloud_only_scheme(), self._cloudy(), helmet_mini, config,
                cameras=8, detections=big_batch, escalation=policy, seed=20230701,
            )

        drop = run(EscalationPolicy.drop_on_failure())
        durable = run(DURABLE)
        assert durable.escalations_recovered > 0
        assert durable.frames_served > drop.frames_served


# --------------------------------------------------------------------- #
# rolling-quality reconciliation of deferred verdicts
# --------------------------------------------------------------------- #
class TestVerdictReconciliation:
    def _report(self, dataset):
        """One frame: empty edge verdict served at t=1, perfect cloud verdict
        recovered at t=9 (verdict segment 1)."""
        truth = dataset.records[0].truth
        builder = DetectionBatchBuilder(detector="test")
        builder.append(
            dataset.image_ids[0], np.zeros((0, 4)), np.zeros(0), np.zeros(0, dtype=np.int64)
        )  # segment 0: the edge fallback (empty -> scores zero)
        builder.append(
            dataset.image_ids[0], truth.boxes, np.ones(len(truth.boxes)), truth.labels
        )  # segment 1: the deferred cloud verdict (perfect)
        return StreamReport(
            scheme="collaborative",
            latency=summarize_latencies([1.0]),
            frames_offered=1,
            frames_served=1,
            frames_dropped=0,
            frames_uploaded=0,
            edge_utilization=0.0,
            uplink_utilization=0.0,
            cloud_utilization=0.0,
            escalations_failed=1,
            escalations_recovered=1,
            served=builder.build(),
            trace=FrameTrace(
                arrivals=np.array([0.0]),
                times=np.array([1.0]),
                records=np.array([0], dtype=np.int64),
                served=np.array([True]),
                segments=np.array([0], dtype=np.int64),
                verdict_times=np.array([9.0]),
                verdict_segments=np.array([1], dtype=np.int64),
            ),
        )

    def test_late_verdict_inside_deadline_upgrades(self, helmet_mini):
        report = self._report(helmet_mini)
        windows = rolling_quality(report, helmet_mini, window_s=10.0, duration_s=10.0, freshness_s=20.0)
        assert windows[0].map_percent == pytest.approx(100.0)

    def test_late_verdict_outside_deadline_scores_edge(self, helmet_mini):
        report = self._report(helmet_mini)
        windows = rolling_quality(report, helmet_mini, window_s=10.0, duration_s=10.0, freshness_s=5.0)
        # the fallback serve (t=1) is fresh, the verdict (t=9) is not:
        # the frame scores as edge-served -> empty detections
        assert windows[0].served == 1
        assert windows[0].map_percent == pytest.approx(0.0)

    def test_no_deadline_accepts_any_verdict(self, helmet_mini):
        report = self._report(helmet_mini)
        windows = rolling_quality(report, helmet_mini, window_s=10.0, duration_s=10.0)
        assert windows[0].map_percent == pytest.approx(100.0)


# --------------------------------------------------------------------- #
# the acceptance pin: durable queue beats drop-on-failure on the fleet
# --------------------------------------------------------------------- #
class TestFleetAvailabilityPin:
    def test_durable_queue_beats_drop_on_failure(self, helmet_mini, big_batch):
        """Saturated 8-camera cloud-only fleet under a 30%-downtime schedule:
        the durable escalation queue recovers frames that drop-on-failure
        loses, so its rolling mAP is strictly higher."""
        duration = 30.0
        outages = OutageSchedule.periodic(period_s=10.0, downtime_s=3.0, duration_s=duration)
        deployment = _deployment(UnreliableLink.wrap(WLAN, outages=outages))
        config = StreamConfig(fps=1.5, duration_s=duration, poisson=True, max_edge_queue=30)

        def run(policy):
            return simulate_fleet(
                cloud_only_scheme(),
                deployment,
                helmet_mini,
                config,
                cameras=8,
                detections=big_batch,
                escalation=policy,
                seed=20230701,
            )

        drop = run(EscalationPolicy.drop_on_failure())
        durable = run(DURABLE)
        for fleet in (drop, durable):
            assert fleet.frames_served + fleet.frames_dropped == fleet.frames_offered
        assert durable.escalations_recovered > 0
        assert drop.escalations_dropped > 0

        def mean_map(fleet):
            windows = rolling_quality(fleet, helmet_mini, window_s=8.0, duration_s=duration)
            return float(np.mean([w.map_percent for w in windows]))

        assert mean_map(durable) > mean_map(drop)