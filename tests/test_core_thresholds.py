"""Tests for the three-threshold calibration machinery (Sec. V.D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import (
    area_threshold_sweep,
    count_loss_curve,
    decide_rule,
    fit_confidence_threshold,
    fit_decision_thresholds,
)
from repro.detection.types import Detections, GroundTruth
from repro.errors import CalibrationError


def _dets(scores, image_id="img"):
    scores = np.asarray(scores, dtype=float)
    n = scores.shape[0]
    boxes = np.tile([0.1, 0.1, 0.3, 0.3], (n, 1))
    return Detections(image_id, boxes, scores, np.zeros(n, dtype=np.int64), "t")


def _gt(count, image_id="img"):
    boxes = np.tile([0.1, 0.1, 0.3, 0.3], (count, 1))
    return GroundTruth(image_id, boxes, np.zeros(count, dtype=np.int64))


class TestCountLoss:
    def test_loss_zero_when_threshold_separates(self):
        # 2 true objects: scores 0.9, 0.6 plus noise at 0.05.
        dets = [_dets([0.9, 0.6, 0.05])]
        gts = [_gt(2)]
        thresholds, losses = count_loss_curve(dets, gts, grid=np.array([0.1, 0.3]))
        assert losses.tolist() == [0.0, 0.0]
        assert thresholds.shape == (2,)

    def test_loss_counts_missing_and_extra(self):
        dets = [_dets([0.9])]
        gts = [_gt(3)]
        _, losses = count_loss_curve(dets, gts, grid=np.array([0.2]))
        assert losses[0] == 2.0

    def test_fit_picks_minimiser(self):
        # noise at 0.08, real sub-threshold boxes at 0.3: a threshold between
        # 0.08 and 0.3 recovers the true count of 3.
        dets = [_dets([0.9, 0.3, 0.3, 0.08, 0.08])]
        gts = [_gt(3)]
        fitted = fit_confidence_threshold(dets, gts)
        assert 0.08 < fitted <= 0.3

    def test_empty_grid_rejected(self):
        with pytest.raises(CalibrationError):
            count_loss_curve([_dets([0.9])], [_gt(1)], grid=np.array([]))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(CalibrationError):
            count_loss_curve([_dets([0.9])], [])


class TestDecideRule:
    def test_step1_equal_counts_easy(self):
        verdict = decide_rule(np.array([2]), np.array([2]), np.array([0.01]), 2, 0.31)
        assert verdict.tolist() == [False]

    def test_step2_too_many_objects_difficult(self):
        verdict = decide_rule(np.array([1]), np.array([5]), np.array([0.9]), 2, 0.31)
        assert verdict.tolist() == [True]

    def test_step3_too_small_area_difficult(self):
        verdict = decide_rule(np.array([1]), np.array([2]), np.array([0.05]), 2, 0.31)
        assert verdict.tolist() == [True]

    def test_fallthrough_easy(self):
        verdict = decide_rule(np.array([1]), np.array([2]), np.array([0.6]), 2, 0.31)
        assert verdict.tolist() == [False]

    def test_vectorised(self):
        verdicts = decide_rule(
            np.array([2, 1, 1, 1]),
            np.array([2, 5, 2, 2]),
            np.array([0.01, 0.9, 0.05, 0.6]),
            2,
            0.31,
        )
        assert verdicts.tolist() == [False, True, True, False]


class TestFitDecisionThresholds:
    def test_recovers_planted_thresholds(self):
        rng = np.random.default_rng(0)
        n = 2000
        true_counts = rng.integers(1, 8, size=n)
        min_areas = rng.uniform(0.0, 0.6, size=n)
        # Plant: difficult iff count > 3 or area < 0.2.  The small model is
        # uncertain (serves one fewer box) on every difficult image but also
        # on 40 % of easy ones, so the count/area thresholds — not the
        # uncertainty gate alone — must carry the separation.
        labels = (true_counts > 3) | (min_areas < 0.2)
        noisy_easy = (~labels) & (rng.uniform(size=n) < 0.4)
        uncertain = labels | noisy_easy
        n_predict = np.where(uncertain, np.maximum(true_counts - 1, 0), true_counts)
        count_thr, area_thr, metrics = fit_decision_thresholds(n_predict, true_counts, min_areas, labels)
        assert count_thr == 3
        assert area_thr == pytest.approx(0.2, abs=0.03)
        assert metrics.accuracy > 0.99

    def test_ties_break_toward_recall(self):
        # With all images difficult, any thresholds give the same accuracy as
        # long as they predict difficult; the fit must reach recall 1.
        n_predict = np.array([0, 0, 0, 0])
        true_counts = np.array([2, 3, 2, 3])
        min_areas = np.array([0.05, 0.04, 0.06, 0.03])
        labels = np.array([True, True, True, True])
        _, _, metrics = fit_decision_thresholds(n_predict, true_counts, min_areas, labels)
        assert metrics.recall == 1.0

    def test_empty_grid_rejected(self):
        with pytest.raises(CalibrationError):
            fit_decision_thresholds(
                np.array([1]),
                np.array([1]),
                np.array([0.1]),
                np.array([True]),
                count_grid=np.array([]),
            )


class TestAreaSweep:
    def test_sweep_is_monotone_in_recall(self):
        rng = np.random.default_rng(1)
        n = 400
        true_counts = rng.integers(1, 6, size=n)
        min_areas = rng.uniform(0.0, 0.6, size=n)
        labels = (true_counts > 2) | (min_areas < 0.25)
        n_predict = np.where(labels, np.maximum(true_counts - 1, 0), true_counts)
        rows = area_threshold_sweep(n_predict, true_counts, min_areas, labels, count_threshold=2)
        recalls = [row["recall"] for row in rows]
        # Raising the area threshold can only add positive predictions.
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))

    def test_sweep_columns(self):
        rows = area_threshold_sweep(
            np.array([1]),
            np.array([2]),
            np.array([0.1]),
            np.array([True]),
        )
        assert {"area_threshold", "accuracy", "precision", "recall", "f1"} <= set(rows[0])
