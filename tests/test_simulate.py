"""Tests for the detector-behaviour simulator and its calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import load_dataset
from repro.errors import CalibrationError, ConfigurationError, RegistryError
from repro.metrics.counting import count_summary
from repro.simulate.calibrate import expected_recall, solve_base_recall
from repro.simulate.detector import SimulatedDetector
from repro.simulate.presets import (
    RECALL_TARGETS,
    SHAPE_PRESETS,
    available_pairs,
    make_detector,
)
from repro.simulate.profile import DetectorProfile, detection_probability


@pytest.fixture(scope="module")
def voc_mini():
    return load_dataset("voc07", "test", fraction=0.02)


def _profile(**kwargs) -> DetectorProfile:
    return DetectorProfile(name="test", **kwargs)


class TestDetectionProbability:
    def test_monotone_in_area(self):
        profile = _profile(area_half=0.05)
        areas = np.array([0.001, 0.01, 0.05, 0.2, 0.8])
        p = detection_probability(profile, areas, num_objects=5)
        assert (np.diff(p) > 0).all()

    def test_monotone_decreasing_in_crowding(self):
        profile = _profile(crowd_half=5.0)
        p_few = detection_probability(profile, np.array([0.1]), num_objects=1)
        p_many = detection_probability(profile, np.array([0.1]), num_objects=20)
        assert p_many[0] < p_few[0]

    def test_quality_penalty(self):
        profile = _profile(quality_sensitivity=2.0)
        clean = detection_probability(profile, np.array([0.1]), 1, quality=1.0)
        fuzzy = detection_probability(profile, np.array([0.1]), 1, quality=0.5)
        assert fuzzy[0] < clean[0]

    def test_capped_below_one(self):
        profile = _profile(base_recall=20.0)
        p = detection_probability(profile, np.array([0.5]), 1)
        assert p[0] <= 0.995

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigurationError):
            detection_probability(_profile(), np.array([-0.1]), 1)

    def test_bad_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            detection_probability(_profile(), np.array([0.1]), 1, quality=0.0)

    @settings(max_examples=50)
    @given(
        area=st.floats(1e-4, 0.9),
        count=st.integers(1, 30),
        base=st.floats(0.1, 5.0),
    )
    def test_probability_bounds(self, area, count, base):
        profile = _profile(base_recall=base)
        p = detection_probability(profile, np.array([area]), count)
        assert 0.0 <= p[0] <= 0.995


class TestProfileValidation:
    def test_bad_miss_range_rejected(self):
        with pytest.raises(ConfigurationError):
            _profile(miss_score_lo=0.4, miss_score_hi=0.3)

    def test_supra_threshold_miss_rejected(self):
        with pytest.raises(ConfigurationError):
            _profile(miss_score_lo=0.2, miss_score_hi=0.6)

    def test_zero_base_recall_rejected(self):
        with pytest.raises(ConfigurationError):
            _profile(base_recall=0.0)

    def test_with_base_recall_copy(self):
        profile = _profile(base_recall=1.0)
        copy = profile.with_base_recall(2.0)
        assert copy.base_recall == 2.0 and profile.base_recall == 1.0


class TestSimulatedDetector:
    def test_deterministic_per_image(self, voc_mini):
        detector = SimulatedDetector(_profile(), num_classes=20, seed=11)
        a = detector.detect(voc_mini.records[0])
        b = detector.detect(voc_mini.records[0])
        np.testing.assert_array_equal(a.boxes, b.boxes)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_different_images_independent(self, voc_mini):
        detector = SimulatedDetector(_profile(), num_classes=20, seed=11)
        a = detector.detect(voc_mini.records[0])
        b = detector.detect(voc_mini.records[1])
        assert a.image_id != b.image_id

    def test_different_profiles_differ(self, voc_mini):
        weak = SimulatedDetector(_profile(base_recall=0.2), 20, seed=11)
        strong = SimulatedDetector(DetectorProfile(name="other", base_recall=3.0), 20, seed=11)
        record = voc_mini.records[0]
        weak_count = sum(weak.detect(r).count_above(0.5) for r in voc_mini.records[:40])
        strong_count = sum(strong.detect(r).count_above(0.5) for r in voc_mini.records[:40])
        assert strong_count > weak_count
        assert record is not None

    def test_scores_in_unit_interval(self, voc_mini):
        detector = SimulatedDetector(_profile(), num_classes=20, seed=3)
        for record in voc_mini.records[:30]:
            dets = detector.detect(record)
            if len(dets):
                assert dets.scores.min() >= 0.0 and dets.scores.max() <= 1.0

    def test_served_labels_in_vocabulary(self, voc_mini):
        detector = SimulatedDetector(_profile(), num_classes=20, seed=3)
        for record in voc_mini.records[:30]:
            dets = detector.detect(record)
            if len(dets):
                assert dets.labels.min() >= 0 and dets.labels.max() < 20

    def test_miss_boxes_are_subthreshold(self, voc_mini):
        # With base_recall tiny everything is missed; visible misses must
        # score strictly below 0.5.
        profile = _profile(base_recall=1e-3, miss_visibility=1.0, fp_rate=0.0)
        detector = SimulatedDetector(profile, num_classes=20, seed=5)
        for record in voc_mini.records[:30]:
            dets = detector.detect(record)
            if len(dets):
                assert dets.scores.max() < 0.5

    def test_zero_fp_rate_no_spurious_boxes(self, voc_mini):
        profile = _profile(base_recall=1e-3, miss_visibility=0.0, fp_rate=0.0)
        detector = SimulatedDetector(profile, num_classes=20, seed=5)
        assert all(len(detector.detect(r)) == 0 for r in voc_mini.records[:20])

    def test_detect_split_order(self, voc_mini):
        detector = SimulatedDetector(_profile(), num_classes=20, seed=3)
        split = detector.detect_split(voc_mini)
        assert [d.image_id for d in split] == [r.image_id for r in voc_mini.records]


class TestCalibration:
    def test_expected_recall_monotone_in_base(self, voc_mini):
        lo = expected_recall(_profile(base_recall=0.3), voc_mini)
        hi = expected_recall(_profile(base_recall=1.5), voc_mini)
        assert hi > lo

    def test_solve_hits_target(self, voc_mini):
        solved = solve_base_recall(_profile(), voc_mini, target=0.6)
        assert expected_recall(solved, voc_mini) == pytest.approx(0.6, abs=0.002)

    def test_unreachable_target_raises(self, voc_mini):
        # An absurd area response makes high recall unreachable.
        hard = _profile(area_half=50.0)
        with pytest.raises(CalibrationError):
            solve_base_recall(hard, voc_mini, target=0.9)

    def test_bad_target_rejected(self, voc_mini):
        with pytest.raises(CalibrationError):
            solve_base_recall(_profile(), voc_mini, target=1.5)


class TestPresets:
    def test_available_pairs_cover_paper(self):
        pairs = available_pairs()
        assert ("ssd", "voc07") in pairs
        assert ("yolov4", "voc07+12") in pairs
        assert ("small1", "helmet") in pairs

    def test_unknown_model_rejected(self):
        with pytest.raises(RegistryError):
            make_detector("alexnet", "voc07")

    def test_unknown_pair_rejected(self):
        with pytest.raises(RegistryError):
            make_detector("yolov4", "helmet")

    def test_shape_presets_encode_design_claims(self):
        # Small models must degrade earlier with object size and crowding.
        assert SHAPE_PRESETS["small1"].area_half > SHAPE_PRESETS["ssd"].area_half
        assert SHAPE_PRESETS["small1"].crowd_half < SHAPE_PRESETS["ssd"].crowd_half
        assert SHAPE_PRESETS["yolov4"].area_half < SHAPE_PRESETS["ssd"].area_half

    def test_calibrated_recall_near_target(self, small1_voc07, voc_mini):
        detections = small1_voc07.detect_split(voc_mini)
        summary = count_summary(detections, voc_mini.truths)
        target = RECALL_TARGETS[("small1", "voc07")]
        assert summary.detected_fraction == pytest.approx(target, abs=0.08)

    def test_detector_cache_returns_same_object(self):
        a = make_detector("small1", "voc07")
        b = make_detector("small1", "voc07")
        assert a is b

    def test_big_model_beats_small_model(self, ssd_voc07, small1_voc07, voc_mini):
        big = count_summary(ssd_voc07.detect_split(voc_mini), voc_mini.truths)
        small = count_summary(small1_voc07.detect_split(voc_mini), voc_mini.truths)
        assert big.detected > small.detected
