"""Tests for the analytic model zoo (layers, backbones, Table II)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RegistryError
from repro.zoo.backbones import (
    cspdarknet53_trunk,
    mobilenet_v1_trunk,
    mobilenet_v2_trunk,
    vgg16_ssd_trunk,
    vgg_lite_trunk,
)
from repro.zoo.layers import Tape, TensorShape
from repro.zoo.registry import build_model, list_models, model_zoo_table
from repro.zoo.ssd import build_small_model_1, build_ssd300_vgg16
from repro.zoo.yolo import build_small_yolo_mobilenet_v1, build_yolov4


class TestTapePrimitives:
    def test_conv_params_known(self):
        tape = Tape(TensorShape(3, 32, 32))
        tape.conv("c", 16, kernel=3)
        # 3*3*3*16 weights + 16 biases
        assert tape.total_params == 3 * 3 * 3 * 16 + 16

    def test_conv_macs_known(self):
        tape = Tape(TensorShape(3, 32, 32))
        tape.conv("c", 16, kernel=3)
        assert tape.total_macs == 3 * 3 * 3 * 16 * 32 * 32
        assert tape.total_flops == 2 * tape.total_macs

    def test_stride_halves_output(self):
        tape = Tape(TensorShape(8, 64, 64))
        shape = tape.conv("c", 8, stride=2)
        assert shape.height == 32 and shape.width == 32

    def test_depthwise_groups(self):
        tape = Tape(TensorShape(32, 16, 16))
        tape.depthwise("dw", batch_norm=False)
        # 3*3*1*32 weights + 32 biases (bias on when no BN)
        assert tape.total_params == 9 * 32 + 32

    def test_batch_norm_adds_two_per_channel(self):
        plain = Tape(TensorShape(3, 8, 8))
        plain.conv("c", 4, bias=False)
        with_bn = Tape(TensorShape(3, 8, 8))
        with_bn.conv("c", 4, bias=False, batch_norm=True)
        assert with_bn.total_params == plain.total_params + 8

    def test_pool_free_and_halving(self):
        tape = Tape(TensorShape(8, 10, 10))
        shape = tape.max_pool("p")
        assert shape.height == 5 and tape.total_params == 0

    def test_ceil_mode_pool(self):
        tape = Tape(TensorShape(8, 75, 75))
        shape = tape.max_pool("p", ceil_mode=True)
        assert shape.height == 38

    def test_collapsed_conv_rejected(self):
        tape = Tape(TensorShape(8, 2, 2))
        with pytest.raises(ConfigurationError):
            tape.conv("c", 8, kernel=5, padding=0)

    def test_group_mismatch_rejected(self):
        tape = Tape(TensorShape(6, 8, 8))
        with pytest.raises(ConfigurationError):
            tape.conv("c", 8, groups=4)

    def test_size_mib(self):
        tape = Tape(TensorShape(3, 8, 8))
        tape.conv("c", 4, bias=False)
        assert tape.size_mib == pytest.approx(3 * 3 * 3 * 4 * 4 / 2**20)


class TestBackbones:
    def test_vgg16_taps(self):
        result = vgg16_ssd_trunk()
        assert result.taps["conv4_3"].height == 38
        assert result.taps["conv7"].height == 19
        assert result.taps["conv7"].channels == 1024

    def test_vgg_lite_tap(self):
        result = vgg_lite_trunk()
        assert result.taps["conv7"].height == 19
        assert result.taps["conv7"].channels == 1024

    def test_vgg_lite_has_no_38_tap(self):
        assert "conv4_3" not in vgg_lite_trunk().taps

    def test_mobilenet_v1_truncated_stride(self):
        result = mobilenet_v1_trunk(300, truncate_at_stride=16)
        assert result.taps["final"].height == 19

    def test_mobilenet_v1_full_reaches_stride32(self):
        result = mobilenet_v1_trunk(608, truncate_at_stride=None)
        assert result.taps["final"].height == 19  # 608 / 32

    def test_mobilenet_v2_truncated(self):
        result = mobilenet_v2_trunk(300, truncate_at_stride=16)
        assert result.taps["final"].height == 19

    def test_cspdarknet_taps(self):
        result = cspdarknet53_trunk(608)
        assert result.taps["stage3"].height == 76
        assert result.taps["stage4"].height == 38
        assert result.taps["stage5"].height == 19
        assert result.taps["stage5"].channels == 1024

    def test_bad_width_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            vgg_lite_trunk(width_multiplier=0.0)


class TestTable2Budgets:
    """Table II shape assertions: sizes near the paper, pruned > 80 %."""

    def test_ssd_size_matches_paper_exactly(self):
        spec = build_ssd300_vgg16()
        assert spec.size_mib == pytest.approx(100.28, abs=1.0)

    def test_ssd_flops_near_paper(self):
        spec = build_ssd300_vgg16()
        assert spec.gflops == pytest.approx(61.19, rel=0.05)

    def test_small1_near_paper_size(self):
        spec = build_small_model_1()
        assert spec.size_mib == pytest.approx(18.50, rel=0.15)

    def test_all_small_models_pruned_above_80(self):
        big = build_ssd300_vgg16()
        for name in ("small1", "small2", "small3"):
            spec = build_model(name)
            assert spec.pruned_ratio_vs(big) > 80.0, name

    def test_small_ordering(self):
        sizes = [build_model(n).size_mib for n in ("small1", "small2", "small3")]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_small_models_have_no_38_map(self):
        for name in ("small1", "small2", "small3"):
            spec = build_model(name)
            assert spec.num_anchors == 2956, name

    def test_ssd_has_8732_anchors(self):
        assert build_ssd300_vgg16().num_anchors == 8732

    def test_table_rows_structure(self):
        rows = model_zoo_table()
        assert [row["model"] for row in rows] == ["small1", "small2", "small3", "ssd"]
        assert all(row["gflops"] > 0 for row in rows)


class TestYoloBudgets:
    def test_yolov4_matches_published_weight_count(self):
        spec = build_yolov4()
        # YOLOv4 darknet weights: ~245 MB of fp32 parameters (~64 M params).
        assert spec.size_mib == pytest.approx(245.0, rel=0.05)

    def test_yolov4_flops_at_608(self):
        spec = build_yolov4()
        assert spec.gflops == pytest.approx(128.0, rel=0.15)

    def test_small_yolo_pruned_hard(self):
        big = build_yolov4()
        small = build_small_yolo_mobilenet_v1()
        assert small.pruned_ratio_vs(big) > 85.0

    def test_small_yolo_anchor_budget(self):
        small = build_small_yolo_mobilenet_v1()
        assert small.num_anchors == 3 * (38**2 + 19**2)


class TestRegistry:
    def test_all_models_listed(self):
        assert set(list_models()) == {
            "ssd",
            "small1",
            "small2",
            "small3",
            "yolov4",
            "small-yolo",
            "faster-rcnn",
        }

    def test_aliases(self):
        assert build_model("SSD300").name == build_model("ssd").name
        assert build_model("small model 2").name == build_model("small2").name

    def test_unknown_model_rejected(self):
        with pytest.raises(RegistryError):
            build_model("resnet-gigantic")

    def test_num_classes_changes_heads(self):
        voc = build_model("ssd", num_classes=20)
        helmet = build_model("ssd", num_classes=2)
        assert helmet.params < voc.params
