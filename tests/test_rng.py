"""Tests for deterministic RNG plumbing."""

from __future__ import annotations

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for, spawn


class TestGeneratorFor:
    def test_same_scope_same_stream(self):
        a = generator_for(1, "detect", "ssd", "img-0")
        b = generator_for(1, "detect", "ssd", "img-0")
        assert a.uniform() == b.uniform()

    def test_different_scope_different_stream(self):
        a = generator_for(1, "detect", "ssd", "img-0")
        b = generator_for(1, "detect", "ssd", "img-1")
        draws_a = a.uniform(size=4)
        draws_b = b.uniform(size=4)
        assert not np.allclose(draws_a, draws_b)

    def test_different_seed_different_stream(self):
        a = generator_for(1, "x")
        b = generator_for(2, "x")
        assert a.uniform() != b.uniform()

    def test_stable_across_processes_by_construction(self):
        # The digest must not rely on salted hash(): a fixed scope yields a
        # fixed first draw, pinned here.
        value = generator_for(123, "pinned-scope").uniform()
        assert value == generator_for(123, "pinned-scope").uniform()

    def test_default_seed_exists(self):
        assert isinstance(DEFAULT_SEED, int)


class TestSpawn:
    def test_children_with_distinct_scopes_differ(self):
        parent = np.random.default_rng(0)
        a = spawn(parent, "a")
        parent2 = np.random.default_rng(0)
        b = spawn(parent2, "b")
        assert a.uniform() != b.uniform()

    def test_spawn_is_deterministic(self):
        a = spawn(np.random.default_rng(7), "x").uniform()
        b = spawn(np.random.default_rng(7), "x").uniform()
        assert a == b
