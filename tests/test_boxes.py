"""Unit and property tests for repro.detection.boxes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import (
    as_boxes,
    box_area,
    box_center,
    box_wh,
    boxes_contain,
    clip_boxes,
    cxcywh_to_xyxy,
    iou_matrix,
    pairwise_iou,
    scale_boxes,
    validate_boxes,
    xyxy_to_cxcywh,
)
from repro.errors import GeometryError


def _unit_boxes(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0.0, 0.8, size=(n, 2))
    sizes = rng.uniform(0.01, 0.2, size=(n, 2))
    return np.concatenate([mins, mins + sizes], axis=1)


unit_box_strategy = st.builds(
    lambda x0, y0, w, h: np.array([[x0, y0, min(x0 + w, 1.0), min(y0 + h, 1.0)]]),
    st.floats(0.0, 0.9),
    st.floats(0.0, 0.9),
    st.floats(0.001, 0.5),
    st.floats(0.001, 0.5),
)


class TestAsBoxes:
    def test_empty_input_becomes_0x4(self):
        assert as_boxes([]).shape == (0, 4)

    def test_single_flat_box_is_reshaped(self):
        assert as_boxes([0.1, 0.1, 0.2, 0.2]).shape == (1, 4)

    def test_wrong_width_rejected(self):
        with pytest.raises(GeometryError):
            as_boxes(np.zeros((3, 5)))

    def test_wrong_rank_rejected(self):
        with pytest.raises(GeometryError):
            as_boxes(np.zeros((2, 2, 4)))


class TestValidateBoxes:
    def test_inverted_corners_rejected(self):
        with pytest.raises(GeometryError, match="inverted"):
            validate_boxes([[0.5, 0.5, 0.1, 0.6]])

    def test_nan_rejected(self):
        with pytest.raises(GeometryError, match="non-finite"):
            validate_boxes([[0.0, 0.0, np.nan, 1.0]])

    def test_zero_area_boxes_accepted(self):
        out = validate_boxes([[0.2, 0.2, 0.2, 0.2]])
        assert out.shape == (1, 4)

    def test_empty_allowed_by_default(self):
        assert validate_boxes([]).shape == (0, 4)

    def test_empty_rejected_when_required(self):
        with pytest.raises(GeometryError):
            validate_boxes([], allow_empty=False)


class TestAreaCenterWh:
    def test_unit_square_area(self):
        assert box_area([[0.0, 0.0, 1.0, 1.0]])[0] == pytest.approx(1.0)

    def test_area_of_known_box(self):
        assert box_area([[0.1, 0.2, 0.5, 0.6]])[0] == pytest.approx(0.16)

    def test_center(self):
        np.testing.assert_allclose(box_center([[0.0, 0.0, 1.0, 0.5]]), [[0.5, 0.25]])

    def test_wh(self):
        np.testing.assert_allclose(box_wh([[0.1, 0.2, 0.4, 0.8]]), [[0.3, 0.6]])


class TestIoU:
    def test_identical_boxes_iou_one(self):
        box = [[0.1, 0.1, 0.4, 0.4]]
        assert iou_matrix(box, box)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes_iou_zero(self):
        a = [[0.0, 0.0, 0.2, 0.2]]
        b = [[0.5, 0.5, 0.9, 0.9]]
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_known_half_overlap(self):
        a = [[0.0, 0.0, 0.2, 0.2]]
        b = [[0.1, 0.0, 0.3, 0.2]]
        # intersection 0.02, union 0.06
        assert iou_matrix(a, b)[0, 0] == pytest.approx(1.0 / 3.0)

    def test_matrix_shape(self):
        assert iou_matrix(_unit_boxes(3), _unit_boxes(5, seed=1)).shape == (3, 5)

    def test_empty_operands(self):
        assert iou_matrix([], _unit_boxes(4)).shape == (0, 4)
        assert iou_matrix(_unit_boxes(2), []).shape == (2, 0)

    def test_degenerate_pair_yields_zero(self):
        degenerate = [[0.3, 0.3, 0.3, 0.3]]
        assert iou_matrix(degenerate, degenerate)[0, 0] == 0.0

    @settings(max_examples=60)
    @given(a=unit_box_strategy, b=unit_box_strategy)
    def test_iou_symmetric_and_bounded(self, a, b):
        forward = iou_matrix(a, b)[0, 0]
        backward = iou_matrix(b, a)[0, 0]
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0 + 1e-12

    @settings(max_examples=60)
    @given(box=unit_box_strategy)
    def test_self_iou_is_one(self, box):
        assert iou_matrix(box, box)[0, 0] == pytest.approx(1.0)

    def test_pairwise_matches_diagonal(self):
        a, b = _unit_boxes(6), _unit_boxes(6, seed=2)
        np.testing.assert_allclose(pairwise_iou(a, b), np.diag(iou_matrix(a, b)), atol=1e-12)

    def test_pairwise_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            pairwise_iou(_unit_boxes(2), _unit_boxes(3))


class TestConversions:
    def test_roundtrip_xyxy_cxcywh(self):
        boxes = _unit_boxes(10)
        np.testing.assert_allclose(cxcywh_to_xyxy(xyxy_to_cxcywh(boxes)), boxes, atol=1e-12)

    def test_cxcywh_to_xyxy_known(self):
        np.testing.assert_allclose(cxcywh_to_xyxy([[0.5, 0.5, 0.2, 0.4]]), [[0.4, 0.3, 0.6, 0.7]])

    def test_scale_boxes(self):
        scaled = scale_boxes([[0.0, 0.0, 0.5, 1.0]], 200, 100)
        np.testing.assert_allclose(scaled, [[0.0, 0.0, 100.0, 100.0]])

    def test_scale_does_not_mutate_input(self):
        boxes = _unit_boxes(3)
        before = boxes.copy()
        scale_boxes(boxes, 10, 10)
        np.testing.assert_array_equal(boxes, before)


class TestClipContain:
    def test_clip_bounds(self):
        clipped = clip_boxes([[-0.5, 0.2, 1.5, 0.8]])
        assert clipped[0, 0] == 0.0 and clipped[0, 2] == 1.0

    def test_boxes_contain(self):
        inside = boxes_contain([[0.0, 0.0, 0.5, 0.5]], [[0.25, 0.25], [0.9, 0.9]])
        assert inside.tolist() == [[True, False]]
