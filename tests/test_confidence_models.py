"""Tests for the three confidence-score populations (Fig. 6 structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulate.confidence import miss_scores, noise_scores, served_scores
from repro.simulate.profile import DetectorProfile


@pytest.fixture
def profile():
    return DetectorProfile(name="conf-test")


class TestServedScores:
    def test_always_in_serving_band(self, profile, rng):
        scores = served_scores(profile, rng.uniform(0.05, 0.99, 500), rng)
        assert scores.min() >= 0.5
        assert scores.max() < 1.0

    def test_easier_objects_score_higher_on_average(self, profile):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        easy = served_scores(profile, np.full(2000, 0.95), rng_a)
        hard = served_scores(profile, np.full(2000, 0.2), rng_b)
        assert easy.mean() > hard.mean() + 0.1

    def test_sharper_profile_concentrates_scores(self):
        blunt = DetectorProfile(name="blunt", score_sharpness=1.0)
        sharp = DetectorProfile(name="sharp", score_sharpness=12.0)
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        blunt_scores = served_scores(blunt, np.full(2000, 0.9), rng_a)
        sharp_scores = served_scores(sharp, np.full(2000, 0.9), rng_b)
        assert sharp_scores.std() < blunt_scores.std()

    def test_difficulty_clipped_not_crashing(self, profile, rng):
        scores = served_scores(profile, np.array([0.0, 1.0]), rng)
        assert scores.shape == (2,)


class TestMissScores:
    def test_within_configured_band(self, profile, rng):
        scores = miss_scores(profile, 500, rng)
        assert scores.min() >= profile.miss_score_lo
        assert scores.max() <= profile.miss_score_hi

    def test_always_below_serving_threshold(self, profile, rng):
        scores = miss_scores(profile, 500, rng)
        assert scores.max() < 0.5

    def test_count_zero(self, profile, rng):
        assert miss_scores(profile, 0, rng).shape == (0,)


class TestNoiseScores:
    def test_bounded(self, profile, rng):
        scores = noise_scores(profile, 1000, rng)
        assert scores.min() >= 0.01
        assert scores.max() <= 0.98

    def test_mostly_near_zero(self, profile, rng):
        scores = noise_scores(profile, 2000, rng)
        # With the default exponential scale (0.02 + exp(0.055)) the vast
        # majority of noise boxes sit far below the serving threshold.
        assert np.mean(scores < 0.25) > 0.9

    def test_rarely_crosses_serving_threshold(self, profile, rng):
        scores = noise_scores(profile, 5000, rng)
        assert np.mean(scores >= 0.5) < 0.01

    def test_band_ordering_matches_fig6(self, profile, rng):
        """The Fig. 6 structure: noise << miss band << served band."""
        noise = noise_scores(profile, 2000, rng)
        miss = miss_scores(profile, 2000, rng)
        served = served_scores(profile, np.full(2000, 0.8), rng)
        assert np.median(noise) < np.median(miss) < np.median(served)
