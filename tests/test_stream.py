"""Tests for the discrete-event loop and the streaming simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.errors import ConfigurationError, RuntimeModelError
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EventLoop,
    FifoResource,
    StreamConfig,
    StreamSimulator,
)


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.1)


@pytest.fixture(scope="module")
def simulator(helmet_mini):
    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.5e9,
        big_model_flops=60e9,
    )
    return StreamSimulator(deployment, helmet_mini, seed=42)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired: list[str] = []
        loop.schedule(2.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.run()
        assert fired == ["early", "late"]

    def test_same_time_fires_in_schedule_order(self):
        loop = EventLoop()
        fired: list[int] = []
        for i in range(5):
            loop.schedule(1.0, lambda i=i: fired.append(i))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired: list[float] = []
        loop.schedule(1.0, lambda: loop.schedule(0.5, lambda: fired.append(loop.now)))
        final = loop.run()
        assert fired == [1.5] and final == 1.5

    def test_run_until(self):
        loop = EventLoop()
        fired: list[int] = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.schedule(-1.0, lambda: None)


class TestFifoResource:
    def test_serialises_jobs(self):
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        completions: list[float] = []
        for _ in range(3):
            resource.acquire(1.0, completions.append)
        loop.run()
        assert completions == [1.0, 2.0, 3.0]

    def test_utilization(self):
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        resource.acquire(2.0, lambda _t: None)
        elapsed = loop.run()
        assert resource.utilization(elapsed) == pytest.approx(1.0)
        assert resource.jobs_served == 1

    def test_queue_depth_tracking(self):
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        for _ in range(4):
            resource.acquire(1.0, lambda _t: None)
        assert resource.max_queue_depth >= 3

    def test_negative_service_rejected(self):
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        with pytest.raises(RuntimeModelError):
            resource.acquire(-0.1, lambda _t: None)


class TestStreamSimulator:
    def test_light_load_all_served(self, simulator, helmet_mini):
        config = StreamConfig(fps=2.0, duration_s=20.0, poisson=False)
        mask = np.zeros(len(helmet_mini), dtype=bool)
        report = simulator.run("collaborative", config, mask)
        assert report.frames_dropped == 0
        assert report.frames_served == report.frames_offered

    def test_cloud_saturates_before_collaborative(self, simulator, helmet_mini):
        config = StreamConfig(fps=12.0, duration_s=30.0)
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::5] = True
        cloud = simulator.run("cloud", config)
        ours = simulator.run("collaborative", config, mask)
        assert cloud.latency.p50 > ours.latency.p50
        assert cloud.drop_rate >= ours.drop_rate

    def test_edge_scheme_never_uploads(self, simulator):
        config = StreamConfig(fps=5.0, duration_s=10.0)
        report = simulator.run("edge", config)
        assert report.frames_uploaded == 0 and report.upload_ratio == 0.0

    def test_cloud_scheme_uploads_everything_served(self, simulator):
        config = StreamConfig(fps=2.0, duration_s=10.0, poisson=False)
        report = simulator.run("cloud", config)
        assert report.frames_uploaded == report.frames_offered

    def test_upload_ratio_matches_mask(self, simulator, helmet_mini):
        config = StreamConfig(fps=2.0, duration_s=30.0, poisson=False)
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::4] = True
        report = simulator.run("collaborative", config, mask)
        assert report.upload_ratio == pytest.approx(0.25, abs=0.05)

    def test_deterministic(self, simulator, helmet_mini):
        config = StreamConfig(fps=6.0, duration_s=15.0)
        a = simulator.run("cloud", config)
        b = simulator.run("cloud", config)
        assert a.latency.total == pytest.approx(b.latency.total)

    def test_unknown_scheme_rejected(self, simulator):
        with pytest.raises(RuntimeModelError):
            simulator.run("hybrid", StreamConfig())

    def test_collaborative_without_mask_rejected(self, simulator):
        with pytest.raises(RuntimeModelError):
            simulator.run("collaborative", StreamConfig())

    def test_misaligned_mask_rejected(self, simulator):
        with pytest.raises(RuntimeModelError):
            simulator.run("collaborative", StreamConfig(), np.zeros(3, dtype=bool))

    def test_compare_runs_all_schemes(self, simulator, helmet_mini):
        config = StreamConfig(fps=2.0, duration_s=10.0, poisson=False)
        mask = np.zeros(len(helmet_mini), dtype=bool)
        reports = simulator.compare(config, mask)
        assert set(reports) == {"edge", "cloud", "collaborative"}

    def test_empty_dataset_rejected(self, helmet_mini):
        deployment = Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=WLAN,
            small_model_flops=1e9,
            big_model_flops=1e9,
        )
        empty = helmet_mini.subset(0)
        with pytest.raises(RuntimeModelError):
            StreamSimulator(deployment, empty)

    def test_bad_config_rejected(self):
        with pytest.raises(RuntimeModelError):
            StreamConfig(fps=0.0)
        with pytest.raises(RuntimeModelError):
            StreamConfig(max_edge_queue=0)
