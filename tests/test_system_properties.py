"""Property-based tests of end-to-end system invariants.

These fuzz the serving machinery with randomised upload masks and verify
the algebraic invariants the experiments rely on: the end-to-end result is
always a per-image mixture of the two models' outputs, and quality is
monotone in the upload decisions' correctness, not just their count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SmallBigSystem
from repro.core.discriminator import DifficultCaseDiscriminator
from repro.data import load_dataset
from repro.simulate import make_detector


@pytest.fixture(scope="module")
def context():
    dataset = load_dataset("voc07", "test", fraction=150 / 4952)
    small = make_detector("small1", "voc07")
    big = make_detector("ssd", "voc07")
    system = SmallBigSystem(
        small_model=small,
        big_model=big,
        discriminator=DifficultCaseDiscriminator(0.15, 2, 0.31),
    )
    return system, dataset, small.detect_split(dataset), big.detect_split(dataset)


class TestSystemProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_final_is_pointwise_mixture(self, context, seed):
        system, dataset, small_dets, big_dets = context
        rng = np.random.default_rng(seed)
        mask = rng.uniform(size=len(dataset)) < rng.uniform(0.0, 1.0)
        run = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask,
        )
        for i, final in enumerate(run.final_detections):
            expected = big_dets[i] if mask[i] else small_dets[i]
            assert final is expected

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_upload_ratio_equals_mask_mean(self, context, seed):
        system, dataset, small_dets, big_dets = context
        rng = np.random.default_rng(seed)
        mask = rng.uniform(size=len(dataset)) < 0.4
        run = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask,
        )
        assert run.upload_ratio == pytest.approx(float(np.mean(mask)))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_e2e_counts_bounded_by_models(self, context, seed):
        # The end-to-end count is a per-image mixture of the two models'
        # true-positive counts, so the tight (and correct) bounds are the
        # sums of the per-image minima and maxima — the split-level totals
        # do NOT bound it (a mask can pick the worse model on every image).
        from repro.detection.matching import true_positive_count

        system, dataset, small_dets, big_dets = context
        rng = np.random.default_rng(seed)
        mask = rng.uniform(size=len(dataset)) < rng.uniform(0.0, 1.0)
        run = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask,
        )
        e2e = run.end_to_end_counts().detected
        small_tp = np.array([true_positive_count(d, t) for d, t in zip(small_dets, dataset.truths)])
        big_tp = np.array([true_positive_count(d, t) for d, t in zip(big_dets, dataset.truths)])
        assert np.minimum(small_tp, big_tp).sum() <= e2e
        assert e2e <= np.maximum(small_tp, big_tp).sum()

    def test_informed_mask_beats_random_mask(self, context):
        """Uploading the images where the big model actually finds more
        objects must beat uploading the same number of random images."""
        system, dataset, small_dets, big_dets = context
        gains = np.array([big.count_above(0.5) - small.count_above(0.5) for small, big in zip(small_dets, big_dets)])
        budget = int(0.4 * len(dataset))
        informed = np.zeros(len(dataset), dtype=bool)
        informed[np.argsort(-gains)[:budget]] = True
        rng = np.random.default_rng(0)
        random_mask = np.zeros(len(dataset), dtype=bool)
        random_mask[rng.choice(len(dataset), size=budget, replace=False)] = True

        informed_run = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=informed,
        )
        random_run = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=random_mask,
        )
        assert (informed_run.end_to_end_counts().detected >= random_run.end_to_end_counts().detected)

    def test_flipping_one_correct_upload_never_helps(self, context):
        """Un-uploading a difficult image can only reduce detected objects."""
        system, dataset, small_dets, big_dets = context
        gains = np.array([big.count_above(0.5) - small.count_above(0.5) for small, big in zip(small_dets, big_dets)])
        target = int(np.argmax(gains))
        assert gains[target] >= 1
        mask = np.ones(len(dataset), dtype=bool)
        with_upload = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask,
        )
        mask2 = mask.copy()
        mask2[target] = False
        without_upload = system.run(
            dataset,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask2,
        )
        assert (without_upload.end_to_end_counts().detected <= with_upload.end_to_end_counts().detected)
