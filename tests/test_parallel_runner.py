"""Equivalence suite for the parallel sharded split runner, the streaming
batch builder, the ground-truth batch and the sharded disk cache.

Everything here asserts *exact* (bit-for-bit) identity: detections are a
pure function of ``(seed, profile, image id)``, so sharding, process pools,
builder accumulation and cache round-trips must not change a single byte.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection import DetectionBatch, DetectionBatchBuilder, GroundTruthBatch
from repro.errors import ConfigurationError, GeometryError
from repro.experiments import Harness, HarnessConfig
from repro.metrics.counting import count_detected_objects, count_summary
from repro.metrics.voc_ap import evaluate_detections, mean_average_precision
from repro.runtime.parallel import (
    detect_records,
    resolve_workers,
    run_shards,
    run_split,
    shard_spans,
)
from repro.runtime.pool import WorkerPool


def assert_batches_identical(left: DetectionBatch, right: DetectionBatch) -> None:
    assert left.image_ids == right.image_ids
    assert left.detector == right.detector
    for name in ("boxes", "scores", "labels", "offsets"):
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), f"{name} differ"


@pytest.fixture(scope="module")
def split_small():
    """A 120-image slice of the VOC07 test split (module-local size)."""
    return load_dataset("voc07", "test", fraction=120 / 4952)


@pytest.fixture(scope="module")
def serial_batch(split_small, small1_voc07):
    return DetectionBatch.from_list(small1_voc07.detect_split(split_small), detector=small1_voc07.name)


# --------------------------------------------------------------------- #
# worker resolution + sharding geometry
# --------------------------------------------------------------------- #
def test_resolve_workers_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert resolve_workers(3) == 3
    assert resolve_workers() == 7


def test_resolve_workers_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "")
    assert resolve_workers() == 1


def test_resolve_workers_rejects_bad_values(monkeypatch):
    with pytest.raises(ConfigurationError):
        resolve_workers(0)
    monkeypatch.setenv("REPRO_WORKERS", "two")
    with pytest.raises(ConfigurationError):
        resolve_workers()


@pytest.mark.parametrize("count", [0, 1, 5, 97, 1024])
@pytest.mark.parametrize("shards", [1, 2, 3, 8])
def test_shard_spans_cover_exactly(count, shards):
    spans = shard_spans(count, shards)
    if count == 0:
        assert spans == []
        return
    assert spans[0][0] == 0 and spans[-1][1] == count
    for (_, hi), (lo, _) in zip(spans, spans[1:]):
        assert hi == lo  # contiguous
    lengths = [hi - lo for lo, hi in spans]
    assert all(length >= 1 for length in lengths)
    assert max(lengths) - min(lengths) <= 1  # balanced
    assert len(spans) == min(shards, count)


# --------------------------------------------------------------------- #
# parallel runner ≡ serial detect_split
# --------------------------------------------------------------------- #
def test_run_split_parallel_matches_serial(split_small, small1_voc07, serial_batch):
    with WorkerPool(2) as pool:
        parallel = run_split(small1_voc07, split_small, pool=pool, min_shard_images=8)
    assert_batches_identical(serial_batch, parallel)


def test_run_split_three_workers_matches_serial(split_small, small1_voc07, serial_batch):
    with WorkerPool(3) as pool:
        parallel = run_split(small1_voc07, split_small, pool=pool, min_shard_images=8)
    assert_batches_identical(serial_batch, parallel)


def test_run_split_tiny_split_serial_fallback(split_small, small1_voc07):
    records = split_small.records[:10]
    # 10 images with the default 32-image minimum shard: stays in-process.
    with WorkerPool(8) as pool:
        batch = run_split(small1_voc07, records, pool=pool)
        assert not pool.started  # the fallback never engaged the workers
    assert_batches_identical(batch, detect_records(small1_voc07, records))


def test_run_shards_order_preserved(split_small, small1_voc07, serial_batch):
    records = split_small.records
    shards = [records[0:40], records[40:80], records[80:120]]
    with WorkerPool(2) as pool:
        parts = run_shards(small1_voc07, shards, pool=pool)
    assert [len(part) for part in parts] == [40, 40, 40]
    assert_batches_identical(DetectionBatch.concat(parts), serial_batch)


@pytest.mark.parametrize("workers", [1, 2])
def test_run_shards_on_result_fires_per_completed_shard(split_small, small1_voc07, workers):
    records = split_small.records
    shards = [records[0:40], records[40:80], records[80:120]]
    seen: dict[int, int] = {}
    with WorkerPool(workers) as pool:
        parts = run_shards(
            small1_voc07,
            shards,
            pool=pool,
            on_result=lambda index, batch: seen.__setitem__(index, len(batch)),
        )
    # Every shard reported exactly once, with the batch later returned at
    # that index (completion order may differ; indices must not).
    assert seen == {0: 40, 1: 40, 2: 40}
    assert [len(part) for part in parts] == [40, 40, 40]


def test_detect_records_matches_detect_split(split_small, small1_voc07):
    assert_batches_identical(
        detect_records(small1_voc07, split_small.records),
        DetectionBatch.from_list(
            small1_voc07.detect_split(split_small), detector=small1_voc07.name
        ),
    )


# --------------------------------------------------------------------- #
# DetectionBatchBuilder ≡ from_list
# --------------------------------------------------------------------- #
def test_builder_matches_from_list(serial_batch):
    items = serial_batch.to_list()
    builder = DetectionBatchBuilder()
    for item in items:
        builder.append_detections(item)
    assert len(builder) == len(items)
    assert builder.num_boxes == serial_batch.num_boxes
    assert_batches_identical(builder.build(), DetectionBatch.from_list(items))


def test_builder_raw_append_matches(serial_batch):
    builder = DetectionBatchBuilder(detector=serial_batch.detector)
    for view in serial_batch:
        builder.append(view.image_id, view.boxes, view.scores, view.labels)
    assert_batches_identical(builder.build(), serial_batch)


def test_builder_empty_and_mixed_detectors():
    empty = DetectionBatchBuilder().build()
    assert len(empty) == 0 and empty.num_boxes == 0
    assert empty.detector == "mixed"  # from_list([]) behaviour

    builder = DetectionBatchBuilder()
    builder.append("img-a", np.zeros((0, 4)), np.zeros(0), np.zeros(0, dtype=np.int64))
    batch = builder.build()
    assert batch.image_ids == ("img-a",)
    assert batch.counts().tolist() == [0]


def test_builder_snapshots_are_stable(serial_batch):
    """build() may be called mid-stream; later appends don't mutate it."""
    items = serial_batch.to_list()
    builder = DetectionBatchBuilder(detector=serial_batch.detector)
    half = len(items) // 2
    for item in items[:half]:
        builder.append_detections(item)
    snapshot = builder.build()
    frozen_scores = snapshot.scores.copy()
    for item in items[half:]:
        builder.append_detections(item)
    assert np.array_equal(snapshot.scores, frozen_scores)
    assert_batches_identical(builder.build(), serial_batch)


def test_builder_validates_on_build():
    builder = DetectionBatchBuilder()
    builder.append("bad", np.array([[0.0, 0.0, 0.5, 0.5]]), np.array([1.5]), np.array([0]))
    with pytest.raises(GeometryError):
        builder.build()


def test_builder_rejects_misaligned_appends():
    builder = DetectionBatchBuilder()
    boxes = np.array([[0.0, 0.0, 0.5, 0.5], [0.1, 0.1, 0.6, 0.6]])
    with pytest.raises(GeometryError):  # one score for two boxes: no broadcast
        builder.append("a", boxes, np.array([0.9]), np.array([0, 1]))
    with pytest.raises(GeometryError):  # label shortfall
        builder.append("a", boxes, np.array([0.9, 0.8]), np.array([0]))
    with pytest.raises(GeometryError):  # non-(N, 4) boxes must not reshape
        builder.append("a", np.zeros((2, 8)), np.zeros(4), np.zeros(4, dtype=np.int64))
    assert len(builder) == 0 and builder.num_boxes == 0


def test_concat_inverse_of_slicing(serial_batch):
    pieces = [serial_batch[:30], serial_batch[30:75], serial_batch[75:]]
    assert_batches_identical(DetectionBatch.concat(pieces), serial_batch)
    only = DetectionBatch.concat([serial_batch])
    assert_batches_identical(only, serial_batch)
    none = DetectionBatch.concat([], detector="small1")
    assert len(none) == 0 and none.detector == "small1"


# --------------------------------------------------------------------- #
# GroundTruthBatch ≡ per-image annotations
# --------------------------------------------------------------------- #
def test_ground_truth_batch_flattening(split_small):
    truths = split_small.truths
    gt = GroundTruthBatch.from_truths(truths)
    assert gt.image_ids == split_small.image_ids
    assert gt.total_objects == split_small.total_objects
    assert np.array_equal(gt.counts(), np.array([len(t) for t in truths]))
    assert np.array_equal(gt.boxes, np.concatenate([t.boxes for t in truths]))
    assert np.array_equal(gt.labels, np.concatenate([t.labels for t in truths]))
    assert np.array_equal(gt.min_area_ratios(), np.array([t.min_area_ratio for t in truths]))
    assert np.array_equal(
        gt.image_indices(),
        np.repeat(np.arange(len(truths)), [len(t) for t in truths]),
    )


def test_ground_truth_batch_coerce(split_small):
    gt = split_small.truth_batch
    assert split_small.truth_batch is gt  # cached on the dataset
    assert GroundTruthBatch.coerce(gt) is gt
    assert GroundTruthBatch.coerce(split_small) is gt  # Dataset pass-through
    rebuilt = GroundTruthBatch.coerce(split_small.truths)
    assert rebuilt.image_ids == gt.image_ids
    assert np.array_equal(rebuilt.boxes, gt.boxes)


def test_ground_truth_batch_validation():
    with pytest.raises(GeometryError):
        GroundTruthBatch(
            image_ids=("a",),
            boxes=np.zeros((2, 4)),
            labels=np.zeros(1, dtype=np.int64),
            offsets=np.array([0, 2]),
        )
    with pytest.raises(GeometryError):
        GroundTruthBatch(
            image_ids=("a", "b"),
            boxes=np.zeros((0, 4)),
            labels=np.zeros(0, dtype=np.int64),
            offsets=np.array([0, 0]),
        )


def test_ground_truth_batch_metrics_identical(split_small, serial_batch):
    """mAP / AP curves / counts are bit-for-bit equal via list or batch GT."""
    served = serial_batch.above(0.5)
    truths = split_small.truths
    num_classes = split_small.num_classes

    from_list = evaluate_detections(served, truths, num_classes)
    from_batch = evaluate_detections(served, split_small.truth_batch, num_classes)
    assert from_list.per_class_ap == from_batch.per_class_ap
    assert from_list.map == from_batch.map
    assert mean_average_precision(served, truths, num_classes) == (
        mean_average_precision(served, split_small, num_classes)
    )

    assert count_detected_objects(serial_batch, truths) == (
        count_detected_objects(serial_batch, split_small.truth_batch)
    )
    assert count_summary(serial_batch, truths) == (count_summary(serial_batch, split_small.truth_batch))


def test_count_loss_curve_identical(split_small, serial_batch):
    from repro.core.thresholds import count_loss_curve

    t1, l1 = count_loss_curve(serial_batch, split_small.truths)
    t2, l2 = count_loss_curve(serial_batch, split_small.truth_batch)
    assert np.array_equal(t1, t2) and np.array_equal(l1, l2)


# --------------------------------------------------------------------- #
# harness: sharded disk cache + parallel production
# --------------------------------------------------------------------- #
def _tiny_config(tmp_path, **overrides):
    defaults = dict(
        train_images=40,
        test_fraction=100 / 4952,
        cache_dir=str(tmp_path),
        cache_shard_size=32,
    )
    defaults.update(overrides)
    return HarnessConfig(**defaults)


def test_harness_cache_shards_roundtrip(tmp_path):
    config = _tiny_config(tmp_path)
    first = Harness(config).detections("small1", "voc07", "test")
    shard_files = sorted(os.listdir(tmp_path))
    assert len(shard_files) == 4  # 100 images at shard size 32
    assert all(name.startswith("det-") and name.endswith(".npz") for name in shard_files)
    reloaded = Harness(config).detections("small1", "voc07", "test")
    assert_batches_identical(first, reloaded)


def test_harness_cache_partial_recompute(tmp_path):
    config = _tiny_config(tmp_path)
    first = Harness(config).detections("small1", "voc07", "test")
    shard_files = sorted(os.listdir(tmp_path))
    # Drop one shard and corrupt another: only those two are recomputed,
    # and the reassembled split is identical.
    (tmp_path / shard_files[1]).unlink()
    (tmp_path / shard_files[2]).write_bytes(b"not a zipfile")
    recomputed = Harness(config).detections("small1", "voc07", "test")
    assert_batches_identical(first, recomputed)
    assert len(os.listdir(tmp_path)) == len(shard_files)


def test_harness_parallel_matches_serial(tmp_path):
    serial = Harness(_tiny_config(tmp_path / "serial", workers=1)).detections("small1", "voc07", "test")
    with Harness(_tiny_config(tmp_path / "parallel", workers=2, cache_shard_size=16)) as harness:
        parallel = harness.detections("small1", "voc07", "test")
    assert_batches_identical(serial, parallel)


def test_harness_subset_shares_full_shards(tmp_path):
    """A smaller test fraction reuses the full shards it has in common."""
    big = _tiny_config(tmp_path, test_fraction=96 / 4952, cache_shard_size=32)
    Harness(big).detections("small1", "voc07", "test")
    files_after_big = set(os.listdir(tmp_path))
    assert len(files_after_big) == 3  # 96 images = 3 aligned shards

    small = _tiny_config(tmp_path, test_fraction=80 / 4952, cache_shard_size=32)
    subset = Harness(small).detections("small1", "voc07", "test")
    files_after_small = set(os.listdir(tmp_path))
    # The two aligned shards (0-32, 32-64) were reused; only the truncated
    # final shard (64-80) is new.
    assert len(files_after_small - files_after_big) == 1
    assert len(subset) == 80


def test_harness_workers_from_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    config = _tiny_config(tmp_path)
    assert config.resolve_workers() == 2
    with Harness(config) as env_harness:
        env_parallel = env_harness.detections("small1", "voc07", "test")
    monkeypatch.delenv("REPRO_WORKERS")
    serial = Harness(_tiny_config(tmp_path / "serial-check")).detections("small1", "voc07", "test")
    assert_batches_identical(env_parallel, serial)


# --------------------------------------------------------------------- #
# stream simulator served-batch collection
# --------------------------------------------------------------------- #
def test_stream_collects_served_batch(split_small, serial_batch):
    from repro.runtime import StreamConfig, StreamSimulator
    from repro.runtime.executor import Deployment
    from repro.runtime.devices import JETSON_NANO, RTX3060_SERVER
    from repro.runtime.network import WLAN

    deployment = Deployment(edge=JETSON_NANO, cloud=RTX3060_SERVER, link=WLAN)
    simulator = StreamSimulator(deployment, split_small)
    config = StreamConfig(fps=30.0, duration_s=4.0, poisson=False)
    report = simulator.run("edge", config, detections=serial_batch)
    assert report.served is not None
    assert len(report.served) == report.frames_served
    assert report.served.detector == serial_batch.detector
    # Every served frame's segment matches the source batch's segment.
    for view in report.served:
        index = split_small.image_ids.index(view.image_id)
        source = serial_batch[index]
        assert np.array_equal(view.boxes, source.boxes)
        assert np.array_equal(view.scores, source.scores)
        assert np.array_equal(view.labels, source.labels)
    # Without detections the report stays lean.
    assert simulator.run("edge", config).served is None
