"""Tests for the synthetic dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.classes import COCO18_CLASSES, HELMET_CLASSES, VOC_CLASSES
from repro.data.datasets import DATASET_SETTINGS, list_settings, load_dataset
from repro.data.degrade import Degradation, DegradationModel, PRISTINE
from repro.data.scene import SceneProfile, sample_scene
from repro.data.stats import per_image_features, split_stats
from repro.errors import ConfigurationError, DatasetError


class TestClasses:
    def test_voc_has_20(self):
        assert len(VOC_CLASSES) == 20

    def test_coco18_is_voc_subset_of_18(self):
        assert len(COCO18_CLASSES) == 18
        assert set(COCO18_CLASSES) < set(VOC_CLASSES)

    def test_helmet_has_2(self):
        assert len(HELMET_CLASSES) == 2


class TestSceneProfile:
    def test_invalid_area_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            SceneProfile(mean_extra_objects=1.0, count_dispersion=1.0, area_min=0.5, area_max=0.1)

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            SceneProfile(mean_extra_objects=-1.0, count_dispersion=1.0)

    def test_count_p_from_mean(self):
        profile = SceneProfile(mean_extra_objects=2.0, count_dispersion=1.0)
        assert profile.count_p == pytest.approx(1.0 / 3.0)

    @settings(max_examples=40)
    @given(seed=st.integers(0, 100_000))
    def test_sampled_scene_invariants(self, seed):
        profile = SceneProfile(mean_extra_objects=1.5, count_dispersion=0.6)
        rng = np.random.default_rng(seed)
        scene = sample_scene(profile, num_classes=20, rng=rng)
        assert 1 <= scene.num_objects <= profile.max_objects
        assert scene.boxes.shape == (scene.num_objects, 4)
        assert (scene.boxes >= -1e-9).all() and (scene.boxes <= 1.0 + 1e-9).all()
        assert (scene.boxes[:, 2] >= scene.boxes[:, 0]).all()
        assert (scene.boxes[:, 3] >= scene.boxes[:, 1]).all()
        assert (scene.labels >= 0).all() and (scene.labels < 20).all()
        assert scene.min_area_ratio > 0.0

    def test_single_object_when_mean_zero(self):
        profile = SceneProfile(mean_extra_objects=0.0, count_dispersion=1.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert sample_scene(profile, 5, rng).num_objects == 1


class TestDegradation:
    def test_pristine_defaults(self):
        assert PRISTINE.quality == 1.0 and PRISTINE.blur_sigma == 0.0

    def test_invalid_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            Degradation(quality=0.0)

    def test_zero_fraction_always_pristine(self):
        model = DegradationModel(degraded_fraction=0.0)
        rng = np.random.default_rng(1)
        assert all(model.sample(rng) is PRISTINE for _ in range(20))

    def test_full_fraction_always_degraded(self):
        model = DegradationModel(degraded_fraction=1.0)
        rng = np.random.default_rng(1)
        samples = [model.sample(rng) for _ in range(20)]
        assert all(s.quality < 1.0 for s in samples)
        assert {s.kind for s in samples} <= {"blur", "low-light", "smoke"}

    def test_degraded_quality_within_bounds(self):
        model = DegradationModel(degraded_fraction=1.0, min_quality=0.5, max_quality=0.8)
        rng = np.random.default_rng(2)
        for _ in range(50):
            sample = model.sample(rng)
            assert 0.5 <= sample.quality <= 0.8


class TestDatasets:
    def test_all_settings_registered(self):
        assert set(list_settings()) == {
            "voc07",
            "voc07+12",
            "voc07++12",
            "coco18",
            "helmet",
        }

    def test_split_sizes_match_paper(self):
        assert DATASET_SETTINGS["voc07"].train_size == 5011
        assert DATASET_SETTINGS["voc07"].test_size == 4952
        assert DATASET_SETTINGS["voc07+12"].train_size == 5011 + 11540
        assert DATASET_SETTINGS["coco18"].train_size == 93353
        assert DATASET_SETTINGS["coco18"].test_size == 4914

    def test_fraction_truncates_stream(self):
        small = load_dataset("voc07", "test", fraction=0.01)
        larger = load_dataset("voc07", "test", fraction=0.02)
        assert len(small) < len(larger)
        for a, b in zip(small.records, larger.records):
            assert a.image_id == b.image_id
            np.testing.assert_array_equal(a.truth.boxes, b.truth.boxes)

    def test_determinism_same_seed(self):
        a = load_dataset("helmet", "test", fraction=0.1, seed=7)
        b = load_dataset("helmet", "test", fraction=0.1, seed=7)
        for ra, rb in zip(a.records, b.records):
            np.testing.assert_array_equal(ra.truth.boxes, rb.truth.boxes)
            assert ra.degradation == rb.degradation

    def test_different_seed_changes_data(self):
        a = load_dataset("helmet", "test", fraction=0.1, seed=7)
        b = load_dataset("helmet", "test", fraction=0.1, seed=8)
        same = all(
            ra.truth.boxes.shape == rb.truth.boxes.shape
            and np.allclose(ra.truth.boxes, rb.truth.boxes)
            for ra, rb in zip(a.records, b.records)
        )
        assert not same

    def test_voc07_and_voc0712_share_test_images(self):
        a = load_dataset("voc07", "test", fraction=0.02)
        b = load_dataset("voc07+12", "test", fraction=0.02)
        for ra, rb in zip(a.records, b.records):
            assert ra.image_id == rb.image_id
            np.testing.assert_array_equal(ra.truth.boxes, rb.truth.boxes)

    def test_voc07pp12_test_differs(self):
        a = load_dataset("voc07", "test", fraction=0.02)
        b = load_dataset("voc07++12", "test", fraction=0.02)
        assert a.records[0].image_id != b.records[0].image_id

    def test_unknown_setting_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet", "test")

    def test_unknown_split_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("voc07", "validation")

    def test_bad_fraction_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("voc07", "test", fraction=0.0)

    def test_record_lookup(self):
        ds = load_dataset("voc07", "test", fraction=0.005)
        record = ds.records[3]
        assert ds.record(record.image_id) is record
        with pytest.raises(DatasetError):
            ds.record("nope")

    def test_subset(self):
        ds = load_dataset("voc07", "test", fraction=0.01)
        sub = ds.subset(10)
        assert len(sub) == 10 and sub.classes == ds.classes

    def test_helmet_has_degraded_images(self):
        ds = load_dataset("helmet", "test", fraction=0.3)
        qualities = [r.quality for r in ds.records]
        assert min(qualities) < 1.0
        assert sum(q < 1.0 for q in qualities) / len(qualities) == pytest.approx(0.4, abs=0.12)

    def test_with_degradation_keeps_annotations_aligned(self):
        """Quality drift re-samples degradations but never touches truth —
        per-camera (day/night) variants stay record-aligned with the base."""
        ds = load_dataset("helmet", "test", fraction=0.1)
        night = ds.with_degradation(
            DegradationModel(degraded_fraction=1.0, min_quality=0.45, max_quality=0.7),
            scope="night",
        )
        assert len(night) == len(ds)
        assert night.image_ids == ds.image_ids
        for base, drifted in zip(ds.records, night.records):
            assert drifted.truth is base.truth
            assert drifted.quality <= 0.7
        # deterministic in (seed, scope); a different scope drifts differently
        again = ds.with_degradation(
            DegradationModel(degraded_fraction=1.0, min_quality=0.45, max_quality=0.7),
            scope="night",
        )
        assert [r.degradation for r in again.records] == [r.degradation for r in night.records]
        other = ds.with_degradation(
            DegradationModel(degraded_fraction=1.0, min_quality=0.45, max_quality=0.7),
            scope="dawn",
        )
        assert [r.degradation for r in other.records] != [r.degradation for r in night.records]


class TestStats:
    def test_per_image_features_alignment(self):
        ds = load_dataset("voc07", "test", fraction=0.01)
        counts, min_areas = per_image_features(ds)
        assert counts.shape == min_areas.shape == (len(ds),)
        assert counts.min() >= 1
        assert (min_areas > 0).all()

    def test_split_stats_totals(self):
        ds = load_dataset("voc07", "test", fraction=0.02)
        stats = split_stats(ds)
        assert stats.num_images == len(ds)
        assert stats.total_objects == ds.total_objects
        assert stats.mean_objects == pytest.approx(ds.total_objects / len(ds))

    def test_voc_density_near_devkit(self):
        ds = load_dataset("voc07", "test")
        stats = split_stats(ds)
        # VOC2007 test: 12 032 objects over 4 952 images (2.43 per image).
        assert stats.mean_objects == pytest.approx(2.43, abs=0.15)

    def test_coco_denser_than_voc(self):
        voc = split_stats(load_dataset("voc07", "test", fraction=0.2))
        coco = split_stats(load_dataset("coco18", "test", fraction=0.2))
        assert coco.mean_objects > voc.mean_objects
        assert coco.median_min_area < voc.median_min_area
