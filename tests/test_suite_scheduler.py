"""Exact-equality suite for the persistent worker pool and suite scheduler.

Everything here asserts *exact* (bit-for-bit) identity: detections are a
pure function of ``(seed, profile, image id)``, so neither the
harness-lifetime pool nor the suite-level fan-out may change a single byte
relative to the serial path.  Pool-lifecycle tests additionally pin the
"at most one process pool per harness lifetime" guarantee.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.errors import ConfigurationError
from repro.experiments import Harness, HarnessConfig
from repro.experiments import figures as figures_module
from repro.experiments import tables as tables_module
from repro.experiments.suite import (
    prefetch_detections,
    run_suite,
    suite_artifacts,
)
from repro.runtime.parallel import detect_records, run_shards, run_split
from repro.runtime.pool import WorkerPool


def assert_batches_identical(left: DetectionBatch, right: DetectionBatch) -> None:
    assert left.image_ids == right.image_ids
    assert left.detector == right.detector
    for name in ("boxes", "scores", "labels", "offsets"):
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), f"{name} differ"


def _tiny_config(tmp_path, **overrides):
    defaults = dict(
        train_images=40,
        test_fraction=100 / 4952,
        cache_dir=str(tmp_path),
        cache_shard_size=32,
    )
    defaults.update(overrides)
    return HarnessConfig(**defaults)


#: A small artifact mix spanning models and splits (all on voc07 so the
#: tiny datasets stay cheap to materialise).
TINY_ARTIFACTS = (
    ("small1", "voc07", "test"),
    ("ssd", "voc07", "test"),
    ("small1", "voc07", "train"),
)


# --------------------------------------------------------------------- #
# WorkerPool lifecycle
# --------------------------------------------------------------------- #
def test_pool_serial_fallback_runs_inline():
    pool = WorkerPool(1)
    assert not pool.parallel
    future = pool.submit(sorted, [3, 1, 2])
    assert future.result() == [1, 2, 3]
    assert not pool.started  # serial submissions never fork
    assert pool.start_count == 0


def test_pool_serial_inline_exception_lands_in_future():
    pool = WorkerPool(1)
    future = pool.submit(int, "not a number")
    with pytest.raises(ValueError):
        future.result()


def test_pool_workers_resolve_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert WorkerPool().workers == 3
    monkeypatch.delenv("REPRO_WORKERS")
    assert WorkerPool().workers == 1
    with pytest.raises(ConfigurationError):
        WorkerPool(0)


def test_pool_lazy_start_and_at_most_one_executor():
    with WorkerPool(2) as pool:
        assert not pool.started  # construction is free
        first = pool.submit(sorted, [2, 1]).result()
        assert first == [1, 2]
        assert pool.started
        for _ in range(3):
            pool.submit(sorted, [2, 1]).result()
        assert pool.start_count == 1
    assert pool.closed
    assert not pool.started


def test_pool_shutdown_refuses_new_work():
    pool = WorkerPool(2)
    pool.shutdown()
    pool.shutdown()  # idempotent
    with pytest.raises(ConfigurationError):
        pool.submit(sorted, [1])
    with pytest.raises(ConfigurationError):
        with pool:
            pass


def test_pool_context_manager_shuts_down_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with WorkerPool(2) as pool:
            assert pool.submit(sorted, [2, 1]).result() == [1, 2]
            raise RuntimeError("boom")
    assert pool.closed
    with pytest.raises(ConfigurationError):
        pool.submit(sorted, [1])


# --------------------------------------------------------------------- #
# shared pool across runner calls
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def split_tiny():
    """A 96-image slice of the VOC07 test split (module-local size)."""
    return load_dataset("voc07", "test", fraction=96 / 4952)


def test_pool_reused_across_run_split_calls(split_tiny, small1_voc07):
    records = split_tiny.records
    with WorkerPool(2) as pool:
        first = run_split(small1_voc07, records[:64], pool=pool, min_shard_images=8)
        second = run_split(small1_voc07, records[64:], pool=pool, min_shard_images=8)
        shards = run_shards(small1_voc07, [records[:48], records[48:]], pool=pool)
        assert pool.start_count == 1  # one executor served every call
    assert_batches_identical(first, detect_records(small1_voc07, records[:64]))
    assert_batches_identical(second, detect_records(small1_voc07, records[64:]))
    assert_batches_identical(
        DetectionBatch.concat(shards),
        detect_records(small1_voc07, records),
    )


# --------------------------------------------------------------------- #
# harness pool lifetime
# --------------------------------------------------------------------- #
def test_harness_single_pool_per_lifetime(tmp_path):
    with Harness(_tiny_config(tmp_path, workers=2)) as harness:
        pool = harness.pool()
        assert pool is harness.pool()  # one shared object
        harness.detections("small1", "voc07", "test")
        harness.detections("ssd", "voc07", "test")
        assert harness.pool() is pool
        assert pool.start_count == 1
    assert pool.closed


def test_harness_serial_config_never_forks(tmp_path):
    with Harness(_tiny_config(tmp_path, workers=1)) as harness:
        harness.detections("small1", "voc07", "test")
        assert not harness.pool().started


def test_harness_close_is_idempotent(tmp_path):
    harness = Harness(_tiny_config(tmp_path, workers=2))
    harness.detections("small1", "voc07", "test")
    harness.close()
    harness.close()
    assert harness._pool is not None and harness._pool.closed


# --------------------------------------------------------------------- #
# suite scheduler: exact equality with the serial path
# --------------------------------------------------------------------- #
def test_prefetch_matches_serial_detections(tmp_path):
    serial = Harness(_tiny_config(tmp_path / "serial", workers=1))
    expected = {key: serial.detections(*key) for key in TINY_ARTIFACTS}
    with Harness(_tiny_config(tmp_path / "pooled", workers=2)) as harness:
        produced = prefetch_detections(harness, TINY_ARTIFACTS)
        assert tuple(produced) == TINY_ARTIFACTS
        for key in TINY_ARTIFACTS:
            assert_batches_identical(expected[key], produced[key])
            # Prefetched artifacts are memoised: detections() is now free.
            assert harness.detections(*key) is produced[key]


def test_prefetch_serial_pool_identical(tmp_path):
    """A 1-worker prefetch (inline submissions) is also bit-for-bit exact."""
    serial = Harness(_tiny_config(tmp_path / "serial", workers=1))
    expected = {key: serial.detections(*key) for key in TINY_ARTIFACTS}
    inline = Harness(_tiny_config(tmp_path / "inline", workers=1))
    produced = prefetch_detections(inline, TINY_ARTIFACTS)
    for key in TINY_ARTIFACTS:
        assert_batches_identical(expected[key], produced[key])
    assert not inline.pool().started


def test_prefetch_mixed_warm_and_cold_shards(tmp_path):
    config = _tiny_config(tmp_path, workers=2)
    with Harness(config) as first:
        original = prefetch_detections(first, TINY_ARTIFACTS)
    shard_files = sorted(os.listdir(tmp_path))
    assert len(shard_files) >= 6  # 100-image test split + 40-image train split
    # Drop one shard and corrupt another: the next prefetch reuses every
    # other warm shard and recomputes only these two, byte-identically.
    (tmp_path / shard_files[1]).unlink()
    (tmp_path / shard_files[3]).write_bytes(b"not a zipfile")
    with Harness(config) as second:
        recomputed = prefetch_detections(second, TINY_ARTIFACTS)
    for key in TINY_ARTIFACTS:
        assert_batches_identical(original[key], recomputed[key])
    assert sorted(os.listdir(tmp_path)) == shard_files  # cache healed


def test_prefetch_deduplicates_and_preserves_order(tmp_path):
    with Harness(_tiny_config(tmp_path, workers=2)) as harness:
        duplicated = TINY_ARTIFACTS + TINY_ARTIFACTS[:2]
        produced = prefetch_detections(harness, duplicated)
        assert tuple(produced) == TINY_ARTIFACTS  # first-request order, deduped
        # A second prefetch reuses the same (already started) pool.
        again = prefetch_detections(harness, TINY_ARTIFACTS)
        assert harness.pool().start_count <= 1
        for key in TINY_ARTIFACTS:
            assert produced[key] is again[key]


def test_prefetch_single_span_artifact_subshards_across_pool(tmp_path):
    """One cold artifact whose split fits in a single cache shard still
    engages the pool (sub-sharded like run_split) and stays byte-exact."""
    serial = Harness(_tiny_config(tmp_path / "serial", workers=1, cache_shard_size=1024))
    expected = serial.detections("small1", "voc07", "test")
    pooled_config = _tiny_config(tmp_path / "pooled", workers=2, cache_shard_size=1024)
    with Harness(pooled_config) as harness:
        produced = prefetch_detections(harness, (("small1", "voc07", "test"),))
        assert harness.pool().started  # the single span was split across workers
    assert_batches_identical(expected, produced[("small1", "voc07", "test")])
    # The persisted cache shard is whole: a fresh serial harness reloads it.
    reloaded = Harness(pooled_config).detections("small1", "voc07", "test")
    assert_batches_identical(expected, reloaded)


def test_prefetch_empty_artifact_list(tmp_path):
    with Harness(_tiny_config(tmp_path, workers=2)) as harness:
        assert prefetch_detections(harness, ()) == {}
        assert not harness.pool().started


# --------------------------------------------------------------------- #
# suite artifact enumeration
# --------------------------------------------------------------------- #
def test_table_artifact_enumeration_covers_every_pair():
    artifacts = tables_module.detection_artifacts()
    assert len(artifacts) == len(set(artifacts))  # no duplicates
    for small, big, setting in tables_module.MODEL_PAIRS:
        for split in ("train", "test"):
            assert (small, setting, split) in artifacts
            assert (big, setting, split) in artifacts


def test_figure_artifacts_are_subset_of_tables():
    table_keys = set(tables_module.detection_artifacts())
    assert set(figures_module.detection_artifacts()) <= table_keys


def test_suite_artifacts_selection():
    full = suite_artifacts()
    assert full == tables_module.detection_artifacts()  # figures add nothing
    assert len(full) == len(set(full))
    assert suite_artifacts(tables=False) == figures_module.detection_artifacts()
    assert suite_artifacts(tables=False, figures=False) == ()


# --------------------------------------------------------------------- #
# run_suite end-to-end (figures on the shared quick harness)
# --------------------------------------------------------------------- #
def test_run_suite_figures_match_direct_runners(harness):
    from repro.experiments.figures import all_figures

    result = run_suite(harness, tables=False, figures=True)
    assert result.tables == []
    direct = all_figures(harness)
    assert [f.figure_id for f in result.figures] == [f.figure_id for f in direct]
    for ours, theirs in zip(result.figures, direct):
        assert ours.x_values == theirs.x_values
        assert ours.series == theirs.series
