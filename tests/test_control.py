"""The closed-loop control plane: estimated-time admission, fleet-wide
uplink coordination, adaptive offload quotas.

Covers the protocol contracts (``observe``/``reset`` are optional and
structural; observation is passive), determinism of the estimated paths,
and the :class:`~repro.runtime.control.AdaptiveQuota` wiring of
:class:`~repro.core.adaptive.BudgetController`.  Quality acceptance (gap
recovery, adaptive-vs-static under drift) lives with the experiment runs
in ``test_experiments.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.discriminator import DifficultCaseDiscriminator
from repro.data import load_dataset
from repro.detection.batch import DetectionBatch
from repro.errors import ConfigurationError, RuntimeModelError
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    AdaptiveQuota,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    EstimatedDeadlineAware,
    FleetSpec,
    StreamConfig,
    UplinkCoordinator,
    cloud_only_scheme,
    collaborative_scheme,
    serve_fleet,
    simulate_fleet,
)
from repro.simulate import make_detector

#: The saturated fleet regime of the Table XXI admission rows: eight
#: cameras offer ~12 fps to a shared WLAN uplink that carries ~5.
SATURATED = StreamConfig(fps=1.5, poisson=True, duration_s=40.0, max_edge_queue=30)

FRESHNESS_S = 2.0


@pytest.fixture(scope="module")
def helmet_mini():
    return load_dataset("helmet", "test", fraction=0.08)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def small_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("small1", "helmet").detect_split(helmet_mini))


@pytest.fixture(scope="module")
def big_batch(helmet_mini):
    return DetectionBatch.coerce(make_detector("ssd", "helmet").detect_split(helmet_mini))


def saturated_spec(dataset, big_batch, admission, controller=None) -> FleetSpec:
    return FleetSpec(
        scheme=cloud_only_scheme(),
        config=SATURATED,
        cameras=8,
        mask=~np.zeros(len(dataset), dtype=bool),
        detections=big_batch,
        admission=admission,
        controller=controller,
    )


def fresh_fraction(report) -> float:
    ages = np.concatenate([camera.trace.latencies() for camera in report.cameras])
    return float(np.mean(ages <= FRESHNESS_S)) if ages.size else 0.0


class TestEstimatedDeadlineAware:
    def test_deterministic_and_reusable_across_runs(self, deployment, helmet_mini, big_batch):
        """Same seed, same (reused) policy instance: identical FrameTraces.

        Reuse across runs also exercises the ``reset()`` contract — without
        it the second run would start with the first run's estimates.
        """
        policy = EstimatedDeadlineAware(freshness_s=FRESHNESS_S)
        spec = saturated_spec(helmet_mini, big_batch, policy)
        first = serve_fleet(deployment, helmet_mini, spec, seed=11)
        second = serve_fleet(deployment, helmet_mini, spec, seed=11)
        assert first == second

    def test_sheds_and_stays_fresh_under_saturation(self, deployment, helmet_mini, big_batch):
        baseline = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, DropNewest()), seed=11
        )
        estimated = serve_fleet(
            deployment,
            helmet_mini,
            saturated_spec(helmet_mini, big_batch, EstimatedDeadlineAware(freshness_s=FRESHNESS_S)),
            seed=11,
        )
        assert estimated.frames_shed > 0
        assert fresh_fraction(estimated) > 4.0 * fresh_fraction(baseline)

    def test_cold_start_is_drop_newest(self, deployment, helmet_mini, big_batch):
        """Below ``min_observations`` the policy must not shed at all."""
        cold = EstimatedDeadlineAware(freshness_s=FRESHNESS_S, min_observations=10**9)
        report = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, cold), seed=11
        )
        baseline = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, DropNewest()), seed=11
        )
        assert report.frames_shed == 0
        assert report == baseline

    def test_validation(self):
        with pytest.raises(RuntimeModelError):
            EstimatedDeadlineAware(freshness_s=0.0)
        with pytest.raises(ConfigurationError):
            EstimatedDeadlineAware(halflife=0)
        with pytest.raises(ConfigurationError):
            EstimatedDeadlineAware(min_observations=0)


class TestUplinkCoordinator:
    def test_sweeps_and_is_deterministic(self, deployment, helmet_mini, big_batch):
        coordinator = UplinkCoordinator(freshness_s=FRESHNESS_S)
        spec = saturated_spec(
            helmet_mini,
            big_batch,
            EstimatedDeadlineAware(freshness_s=FRESHNESS_S),
            controller=coordinator,
        )
        first = serve_fleet(deployment, helmet_mini, spec, seed=11)
        swept = coordinator.swept
        assert swept > 0
        second = serve_fleet(deployment, helmet_mini, spec, seed=11)
        assert first == second
        assert coordinator.swept == swept

    def test_coordinated_not_staler_than_uncoordinated(self, deployment, helmet_mini, big_batch):
        estimated = serve_fleet(
            deployment,
            helmet_mini,
            saturated_spec(helmet_mini, big_batch, EstimatedDeadlineAware(freshness_s=FRESHNESS_S)),
            seed=11,
        )
        coordinated = serve_fleet(
            deployment,
            helmet_mini,
            saturated_spec(
                helmet_mini,
                big_batch,
                EstimatedDeadlineAware(freshness_s=FRESHNESS_S),
                controller=UplinkCoordinator(freshness_s=FRESHNESS_S),
            ),
            seed=11,
        )
        assert fresh_fraction(coordinated) >= fresh_fraction(estimated)

    def test_validation(self):
        with pytest.raises(RuntimeModelError):
            UplinkCoordinator(freshness_s=-1.0)
        with pytest.raises(ConfigurationError):
            UplinkCoordinator(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            UplinkCoordinator(halflife=0)
        with pytest.raises(ConfigurationError):
            UplinkCoordinator(min_observations=0)


class _SlackAware:
    """The minimal user policy of the ``repro.runtime.policies`` docstring:
    no ``observe``, no ``reset`` — both must be genuinely optional."""

    name = "slack-aware"

    def admit(self, camera, arrival) -> bool:
        camera.shed_expired(freshness_s=1.0)
        return camera.buffer_has_room()


class _RecordingDropNewest(DropNewest):
    """DropNewest plus a passive ``observe`` hook that only records."""

    def __init__(self) -> None:
        self.events = []

    def observe(self, camera, event) -> None:
        self.events.append(event)


class TestObserverContract:
    def test_minimal_user_policy_runs(self, deployment, helmet_mini, big_batch):
        report = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, _SlackAware()), seed=11
        )
        assert report.frames_shed > 0

    def test_observation_is_passive(self, deployment, helmet_mini, big_batch):
        """Attaching an observer must not move a byte of the run itself."""
        recorder = _RecordingDropNewest()
        observed = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, recorder), seed=11
        )
        stock = serve_fleet(
            deployment, helmet_mini, saturated_spec(helmet_mini, big_batch, DropNewest()), seed=11
        )
        assert observed == stock
        assert recorder.events
        kinds = {event.kind for event in recorder.events}
        assert kinds <= {"served", "failed"}
        for event in recorder.events[:50]:
            assert event.completion >= event.arrival
            if event.kind == "served":
                assert event.queue_wait >= 0.0
                assert event.entry_time >= 0.0
                assert event.downstream_time >= -1e-12


class TestAdaptiveQuota:
    @pytest.fixture(scope="class")
    def discriminator(self):
        return DifficultCaseDiscriminator(
            confidence_threshold=0.25, count_threshold=1, area_threshold=0.1
        )

    def quota_spec(self, dataset, small_batch, big_batch, quota) -> FleetSpec:
        return FleetSpec(
            scheme=collaborative_scheme(),
            config=StreamConfig(fps=1.5, poisson=True, duration_s=40.0, max_edge_queue=30),
            cameras=4,
            small_detections=small_batch,
            detections=big_batch,
            offload=quota,
        )

    def test_tracks_target_ratio(self, deployment, helmet_mini, small_batch, big_batch, discriminator):
        quota = AdaptiveQuota(discriminator, small_batch, 0.2)
        serve_fleet(
            deployment,
            helmet_mini,
            self.quota_spec(helmet_mini, small_batch, big_batch, quota),
            seed=11,
        )
        assert quota.decisions > 100
        assert quota.uploads > 0
        assert quota.uploads / quota.decisions == pytest.approx(0.2, abs=0.12)

    def test_reusable_and_deterministic(self, deployment, helmet_mini, small_batch, big_batch, discriminator):
        quota = AdaptiveQuota(discriminator, small_batch, 0.2)
        spec = self.quota_spec(helmet_mini, small_batch, big_batch, quota)
        first = serve_fleet(deployment, helmet_mini, spec, seed=11)
        uploads = quota.uploads
        second = serve_fleet(deployment, helmet_mini, spec, seed=11)
        assert first == second
        assert quota.uploads == uploads

    def test_quality_feedback_raises_target(self, deployment, helmet_mini, small_batch, big_batch, discriminator):
        """A camera whose audit miss rate exceeds the reference must end the
        run with a raised per-camera upload target; with the loop disabled
        the target must not move."""
        missing = np.ones(len(small_batch))
        active = AdaptiveQuota(
            discriminator, small_batch, 0.2, feedback=missing, reference=0.0, quality_gain=1.0
        )
        serve_fleet(
            deployment,
            helmet_mini,
            self.quota_spec(helmet_mini, small_batch, big_batch, active),
            seed=11,
        )
        targets = [c.target_ratio for c in active._controllers.values()]
        assert targets and all(target > 0.2 for target in targets)

        frozen = AdaptiveQuota(
            discriminator, small_batch, 0.2, feedback=missing, reference=0.0, quality_gain=0.0
        )
        serve_fleet(
            deployment,
            helmet_mini,
            self.quota_spec(helmet_mini, small_batch, big_batch, frozen),
            seed=11,
        )
        assert all(c.target_ratio == 0.2 for c in frozen._controllers.values())

    def test_mask_and_offload_conflict(self, deployment, helmet_mini, small_batch, big_batch, discriminator):
        quota = AdaptiveQuota(discriminator, small_batch, 0.2)
        spec = FleetSpec(
            scheme=collaborative_scheme(),
            config=SATURATED,
            cameras=2,
            mask=np.zeros(len(helmet_mini), dtype=bool),
            small_detections=small_batch,
            detections=big_batch,
            offload=quota,
        )
        with pytest.raises(ConfigurationError):
            serve_fleet(deployment, helmet_mini, spec, seed=11)

    def test_validation(self, discriminator, small_batch):
        with pytest.raises(ConfigurationError):
            AdaptiveQuota(discriminator, small_batch, 0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveQuota(discriminator, small_batch, 0.2, feedback=np.ones(3))
        with pytest.raises(ConfigurationError):
            AdaptiveQuota(discriminator, small_batch, 0.2, reference=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveQuota(discriminator, small_batch, 0.2, quality_gain=-0.1)
        with pytest.raises(ConfigurationError):
            AdaptiveQuota(discriminator, small_batch, 0.2, target_bounds=(0.5, 0.2))


class TestHeterogeneousControllers:
    def test_per_camera_offload_overrides_fleet(self, deployment, helmet_mini, small_batch, big_batch):
        """A per-camera AdaptiveQuota composes with fleet-level masks on the
        other cameras — the camera-unset-inherits-fleet rule."""
        discriminator = DifficultCaseDiscriminator(
            confidence_threshold=0.25, count_threshold=1, area_threshold=0.1
        )
        quota = AdaptiveQuota(discriminator, small_batch, 0.3)
        mask = np.zeros(len(helmet_mini), dtype=bool)
        mask[::4] = True
        spec = FleetSpec(
            scheme=collaborative_scheme(),
            config=StreamConfig(fps=1.5, poisson=True, duration_s=30.0, max_edge_queue=30),
            cameras=(CameraSpec(), CameraSpec(offload=quota)),
            mask=mask,
            small_detections=small_batch,
            detections=big_batch,
        )
        report = serve_fleet(deployment, helmet_mini, spec, seed=11)
        assert len(report.cameras) == 2
        assert quota.decisions > 0
