"""Tests for the GroundTruth / Detections containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.types import Detections, GroundTruth
from repro.errors import GeometryError


def _gt(boxes, labels, image_id="img"):
    return GroundTruth(image_id, np.asarray(boxes, dtype=float), np.asarray(labels))


def _dets(boxes, scores, labels, image_id="img"):
    return Detections(
        image_id,
        np.asarray(boxes, dtype=float),
        np.asarray(scores, dtype=float),
        np.asarray(labels),
        detector="test",
    )


class TestGroundTruth:
    def test_len_and_num_objects(self):
        gt = _gt([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.6, 0.6]], [0, 1])
        assert len(gt) == 2 and gt.num_objects == 2

    def test_area_ratios(self):
        gt = _gt([[0.0, 0.0, 0.5, 0.5]], [0])
        assert gt.area_ratios[0] == pytest.approx(0.25)

    def test_min_area_ratio(self):
        gt = _gt([[0.0, 0.0, 0.5, 0.5], [0.0, 0.0, 0.1, 0.1]], [0, 0])
        assert gt.min_area_ratio == pytest.approx(0.01)

    def test_min_area_of_empty_image_is_one(self):
        gt = _gt(np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert gt.min_area_ratio == 1.0

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            _gt([[0.1, 0.1, 0.2, 0.2]], [0, 1])


class TestDetections:
    def test_sorted_by_score_descending(self):
        dets = _dets(
            [[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4], [0.5, 0.5, 0.6, 0.6]],
            [0.3, 0.9, 0.6],
            [0, 1, 2],
        )
        assert dets.scores.tolist() == [0.9, 0.6, 0.3]
        assert dets.labels.tolist() == [1, 2, 0]

    def test_empty_constructor(self):
        dets = Detections.empty("img", detector="x")
        assert len(dets) == 0 and dets.top_score() == 0.0

    def test_above_threshold(self):
        dets = _dets([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4]], [0.8, 0.3], [0, 0])
        assert len(dets.above(0.5)) == 1
        assert dets.count_above(0.5) == 1
        assert dets.count_above(0.2) == 2

    def test_min_area_above(self):
        dets = _dets([[0.0, 0.0, 0.5, 0.5], [0.0, 0.0, 0.1, 0.1]], [0.9, 0.6], [0, 0])
        assert dets.min_area_above(0.5) == pytest.approx(0.01)
        assert dets.min_area_above(0.7) == pytest.approx(0.25)

    def test_min_area_above_empty_returns_one(self):
        dets = _dets([[0.0, 0.0, 0.5, 0.5]], [0.3], [0])
        assert dets.min_area_above(0.5) == 1.0

    def test_for_class(self):
        dets = _dets([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4]], [0.8, 0.7], [2, 5])
        only = dets.for_class(5)
        assert len(only) == 1 and only.labels[0] == 5

    def test_score_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            _dets([[0.1, 0.1, 0.2, 0.2]], [1.5], [0])

    def test_score_count_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            _dets([[0.1, 0.1, 0.2, 0.2]], [0.5, 0.6], [0])

    def test_top_score(self):
        dets = _dets([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4]], [0.4, 0.85], [0, 0])
        assert dets.top_score() == pytest.approx(0.85)
