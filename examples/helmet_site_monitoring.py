"""Real-world scenario: safety-helmet monitoring on a building site.

Run:  python examples/helmet_site_monitoring.py

Reproduces the paper's Sec. VI.D deployment: a Jetson Nano runs small model
1 next to the site camera, an RTX3060 server runs SSD across the WLAN, and
the difficult-case discriminator decides which frames are worth uploading.
Prints the Table XI comparison — accuracy, detected objects, total
inference time and upload ratio for edge-only / cloud-only / collaborative
serving — on the synthetic Sedna-style helmet dataset (blur, low light and
smoke included).
"""

from __future__ import annotations

from repro import DifficultCaseDiscriminator, SmallBigSystem, load_dataset
from repro.metrics import count_summary, mean_average_precision
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EdgeCloudRuntime,
)
from repro.simulate import make_detector
from repro.zoo import build_model


def main() -> None:
    print("Calibrating detectors on the helmet dataset...")
    small = make_detector("small1", "helmet")
    big = make_detector("ssd", "helmet")

    train = load_dataset("helmet", "train", fraction=0.5)
    discriminator, _ = DifficultCaseDiscriminator.fit(small.detect_split(train), big.detect_split(train), train.truths)
    system = SmallBigSystem(small_model=small, big_model=big, discriminator=discriminator)

    test = load_dataset("helmet", "test")
    print(f"serving {len(test)} camera frames ({test.total_objects} annotated heads/helmets)\n")
    run = system.run(test)

    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )
    runtime = EdgeCloudRuntime(deployment=deployment)
    edge_cost = runtime.run_edge_only(test)
    cloud_cost = runtime.run_cloud_only(test)
    ours_cost = runtime.run_collaborative(test, run.uploaded)

    def served_map(detections):
        return mean_average_precision([d.above(0.5) for d in detections], test.truths, test.num_classes)

    rows = [
        ("mAP (%)", served_map(run.small_detections), served_map(run.big_detections), run.end_to_end_map()),
        (
            "detected objects",
            count_summary(run.small_detections, test.truths).detected,
            count_summary(run.big_detections, test.truths).detected,
            run.end_to_end_counts().detected,
        ),
        ("total time (s)", edge_cost.latency.total, cloud_cost.latency.total, ours_cost.latency.total),
        ("uplink (MB)", 0.0, cloud_cost.uplink_bytes / 1e6, ours_cost.uplink_bytes / 1e6),
    ]
    print(f"{'metric':<22}{'edge-only':>12}{'cloud-only':>12}{'ours':>12}")
    for name, edge, cloud, ours in rows:
        print(f"{name:<22}{edge:>12.2f}{cloud:>12.2f}{ours:>12.2f}")
    print(f"\nupload ratio: {100 * run.upload_ratio:.1f}% of frames")
    print(f"time saved vs cloud-only: {100 * ours_cost.latency.saving_over(cloud_cost.latency):.1f}%")
    print(f"bandwidth saved vs cloud-only: {100 * ours_cost.bandwidth_saving_over(cloud_cost):.1f}%")


if __name__ == "__main__":
    main()
