"""Availability under failure: uplink outages and the durable escalation queue.

Run:  python examples/outage_recovery.py

Eight helmet-site cameras share one WLAN uplink to the cloud — and the
uplink is *unreliable*: down six seconds of every twenty (a maintenance
cycle), with 5% per-transfer loss on top.  What happens to a difficult case
whose upload fails?

* ``no-retry`` drops the frame on the spot — even when the edge already has
  a verdict for it.
* ``drop-on-failure`` serves the frame's *edge* verdict immediately
  (graceful degradation, per AppealNet) but abandons the cloud appeal.
* ``durable-queue`` serves the edge verdict too, then spools the case and
  retries with exponential backoff until the link returns — the deferred
  cloud verdict upgrades the frame after the outage.

Cloud-only serving has no edge verdict to fall back on, so the escalation
policy decides whether outage frames are lost forever or merely late.
"""

from __future__ import annotations

import numpy as np

from repro import DifficultCaseDiscriminator, load_dataset, make_detector
from repro.core import DiscriminatorPolicy
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EscalationPolicy,
    OutageSchedule,
    StreamConfig,
    UnreliableLink,
    cloud_only_scheme,
    collaborative_scheme,
    simulate_fleet,
)
from repro.zoo import build_model

CAMERAS = 8
CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0)
WINDOW_S = 8.0
LOSS = 0.05


def main() -> None:
    print("Preparing the helmet small-big system...")
    small_model = make_detector("small1", "helmet")
    big_model = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    test = load_dataset("helmet", "test", fraction=0.5)
    small = DetectionBatch.coerce(small_model.detect_split(test))
    big = DetectionBatch.coerce(big_model.detect_split(test))
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(test, small)
    served = DetectionBatch.where(mask, big, small)

    outages = OutageSchedule.periodic(period_s=20.0, downtime_s=6.0, duration_s=CONFIG.duration_s)
    link = UnreliableLink.wrap(WLAN, outages=outages, loss_probability=LOSS)
    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=link,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )
    downtime = outages.downtime_within(CONFIG.duration_s)
    print(
        f"\nuplink down {downtime:g}s of {CONFIG.duration_s:g}s "
        f"({100 * downtime / CONFIG.duration_s:.0f}%), {100 * LOSS:g}% transfer loss"
    )

    escalations = [
        ("no-retry", EscalationPolicy.no_retry()),
        ("drop-on-failure", EscalationPolicy.drop_on_failure()),
        ("durable-queue", EscalationPolicy.durable_queue(capacity=64, max_retries=6, max_backoff_s=8.0)),
    ]
    schemes = [
        ("cloud-only", cloud_only_scheme(), np.ones(len(test), dtype=bool), big),
        ("discriminator", collaborative_scheme(policy, name="discriminator"), mask, served),
    ]
    header = (
        f"{'scheme':<15}{'escalation':<17}{'lost':>7}{'failed':>8}"
        f"{'dropped':>9}{'recovered':>11}{'rolling mAP':>13}"
    )
    print(f"\n{header}")
    for scheme_label, scheme, scheme_mask, scheme_served in schemes:
        for escalation_label, escalation in escalations:
            fleet = simulate_fleet(
                scheme,
                deployment,
                test,
                CONFIG,
                cameras=CAMERAS,
                mask=scheme_mask,
                small_detections=small,
                detections=scheme_served,
                escalation=escalation,
            )
            windows = rolling_quality(fleet, test, window_s=WINDOW_S, duration_s=CONFIG.duration_s)
            scored = [w for w in windows if w.frames]
            mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
            print(
                f"{scheme_label:<15}{escalation_label:<17}"
                f"{100 * fleet.drop_rate:>6.1f}%{fleet.escalations_failed:>8}"
                f"{fleet.escalations_dropped:>9}{fleet.escalations_recovered:>11}"
                f"{mean_map:>13.2f}"
            )
    print("\ncloud-only loses every outage frame unless the durable queue")
    print("replays it after the link returns; the discriminator fleet serves")
    print("edge verdicts through the outage either way, and the queue then")
    print("upgrades the spooled cases to their cloud verdicts late.")


if __name__ == "__main__":
    main()
