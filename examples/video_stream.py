"""Video-stream serving: where edge-cloud collaboration actually wins.

Run:  python examples/video_stream.py

The paper motivates the small-big framework with video workloads.  This
example streams helmet-camera frames through the three serving schemes at
increasing frame rates and shows the phenomenon static tables cannot:
cloud-only *saturates the WLAN uplink* — queueing delay explodes and frames
drop — while the collaborative scheme, which uploads only difficult frames,
keeps real-time latency far past cloud-only's breaking point.
"""

from __future__ import annotations

from repro import DifficultCaseDiscriminator, SmallBigSystem, load_dataset
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EdgeCloudRuntime,
    StreamConfig,
    StreamSimulator,
)
from repro.simulate import make_detector
from repro.zoo import build_model


def main() -> None:
    print("Preparing the helmet small-big system...")
    small = make_detector("small1", "helmet")
    big = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(small.detect_split(train), big.detect_split(train), train.truths)
    system = SmallBigSystem(small_model=small, big_model=big, discriminator=discriminator)
    test = load_dataset("helmet", "test", fraction=0.5)
    run = system.run(test)
    print(f"discriminator uploads {100 * run.upload_ratio:.1f}% of frames\n")

    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )
    simulator = StreamSimulator(deployment, test)

    print(f"{'fps':>5}  {'scheme':<14}{'p50 (ms)':>10}{'p99 (ms)':>10}" f"{'drops':>8}{'uplink util':>13}")
    for fps in (2.0, 5.0, 10.0, 20.0):
        config = StreamConfig(fps=fps, duration_s=60.0)
        reports = simulator.compare(config, run.uploaded)
        for name, report in reports.items():
            print(
                f"{fps:>5.0f}  {name:<14}{1000 * report.latency.p50:>10.1f}"
                f"{1000 * report.latency.p99:>10.1f}"
                f"{100 * report.drop_rate:>7.1f}%"
                f"{100 * report.uplink_utilization:>12.1f}%"
            )
        print()
    print("cloud-only saturates once the uplink hits 100% utilisation; the")
    print("collaborative scheme keeps serving in real time because only the")
    print("difficult fraction of frames crosses the network.")

    # Sanity anchor: the static Table XI totals for the same deployment.
    runtime = EdgeCloudRuntime(deployment=deployment)
    cloud = runtime.run_cloud_only(test)
    ours = runtime.run_collaborative(test, run.uploaded)
    print(
        f"\n(batch totals for reference: cloud-only {cloud.latency.total:.1f}s, "
        f"ours {ours.latency.total:.1f}s -> {100 * ours.latency.saving_over(cloud.latency):.0f}% saved)"
    )


if __name__ == "__main__":
    main()
