"""Closed-loop fleet control: estimated admission, coordination, quotas.

Run:  python examples/closed_loop_control.py

The deadline-aware admission policy in ``admission_control.py`` is
omniscient — it reads exact queue state out of the simulator, which no
deployment can do.  This example closes the loop with information a real
fleet actually has, on the spec-based serving API (``FleetSpec`` +
``serve_fleet``):

Part 1 — the information ladder.  Eight cloud-only cameras saturate one
shared WLAN uplink.  ``EstimatedDeadlineAware`` sheds doomed frames using
only EWMA estimates learned from each camera's own completion events, and
recovers nearly all of the omniscient policy's rolling-mAP gain over the
historical drop-newest buffer.  Adding an ``UplinkCoordinator`` — a fleet
controller on the shared event loop that sweeps doomed frames across
cameras, stalest first — does even better than per-camera estimates alone.

Part 2 — adaptive offload quotas under drift.  Half the fleet switches to
degraded night footage on a congested uplink: the statically fitted
discriminator threshold flags far more night frames difficult and busts
the upload budget by half again, while per-camera ``AdaptiveQuota``
controllers steer the realised upload ratio onto the affordable budget
and keep the fleet fresh at near-parity quality.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import DifficultCaseDiscriminator, load_dataset, make_detector
from repro.core import DiscriminatorPolicy
from repro.data.degrade import DegradationModel
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    AdaptiveQuota,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    EstimatedDeadlineAware,
    FleetSpec,
    StreamConfig,
    UplinkCoordinator,
    cloud_only_scheme,
    collaborative_scheme,
    serve_fleet,
)
from repro.zoo import build_model

CAMERAS = 8
CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0, max_edge_queue=30)
WINDOW_S = 8.0
FRESHNESS_S = 2.0
UPLOAD_BUDGET = 0.10
CONGESTED_MBPS = 2.2


def fleet_map(report, dataset) -> tuple[float, float]:
    """Rolling mAP at the freshness deadline, plus fresh-serve percent."""
    windows = rolling_quality(
        report,
        dataset,
        window_s=WINDOW_S,
        duration_s=CONFIG.duration_s,
        freshness_s=FRESHNESS_S,
    )
    scored = [w for w in windows if w.frames]
    mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
    fresh = 100.0 * sum(w.served for w in windows) / max(report.frames_offered, 1)
    return mean_map, fresh


def main() -> None:
    print("Preparing the helmet small-big system...")
    small_model = make_detector("small1", "helmet")
    big_model = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    test = load_dataset("helmet", "test", fraction=0.5)
    small = DetectionBatch.coerce(small_model.detect_split(test))
    big = DetectionBatch.coerce(big_model.detect_split(test))

    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )

    # ----------------------------------------------------------------- #
    # Part 1: the information ladder on the saturated cloud-only fleet
    # ----------------------------------------------------------------- #
    print(f"\n{CAMERAS} cloud-only cameras over one shared {WLAN.bandwidth_mbps} Mbps uplink:")
    print(f"\n{'policy':<22}{'shed':>8}{'fresh':>8}{'rolling mAP':>13}")
    everything = ~np.zeros(len(test), dtype=bool)
    ladder = [
        ("drop-newest", DropNewest(), None),
        ("deadline (omniscient)", DeadlineAware(freshness_s=FRESHNESS_S), None),
        ("estimated-deadline", EstimatedDeadlineAware(freshness_s=FRESHNESS_S), None),
        (
            "coordinated",
            EstimatedDeadlineAware(freshness_s=FRESHNESS_S),
            UplinkCoordinator(freshness_s=FRESHNESS_S),
        ),
    ]
    for label, admission, controller in ladder:
        spec = FleetSpec(
            scheme=cloud_only_scheme(),
            config=CONFIG,
            cameras=CAMERAS,
            mask=everything,
            detections=big,
            admission=admission,
            controller=controller,
        )
        report = serve_fleet(deployment, test, spec)
        mean_map, fresh = fleet_map(report, test)
        shed = 100.0 * report.frames_shed / max(report.frames_offered, 1)
        print(f"{label:<22}{shed:>7.1f}%{fresh:>7.1f}%{mean_map:>13.2f}")
    print("\nEWMA estimates of each camera's own completions recover nearly all")
    print("of the omniscient policy's gain; sweeping stalest-first across the")
    print("whole fleet between arrivals recovers the rest and then some.")

    # ----------------------------------------------------------------- #
    # Part 2: adaptive offload quotas when half the fleet drifts
    # ----------------------------------------------------------------- #
    night = test.with_degradation(
        DegradationModel(degraded_fraction=1.0, min_quality=0.3, max_quality=0.55),
        scope="night-shift",
    )
    night_small = DetectionBatch.coerce(small_model.detect_split(night))
    night_big = DetectionBatch.coerce(big_model.detect_split(night))
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(test, small)
    night_mask = policy.select(night, night_small)
    congested = replace(
        deployment, link=replace(WLAN, name="wlan-congested", bandwidth_mbps=CONGESTED_MBPS)
    )
    scheme = collaborative_scheme(policy, name="discriminator")
    night_cameras = CAMERAS // 2
    day_cameras = CAMERAS - night_cameras

    print(f"\n{night_cameras} of {CAMERAS} cameras drift to night footage on a "
          f"{CONGESTED_MBPS} Mbps uplink")
    print(f"(upload budget {100 * UPLOAD_BUDGET:.0f}% of frames):\n")
    print(f"{'offload policy':<18}{'uploads':>9}{'fresh':>8}{'rolling mAP':>13}")

    # Statically fitted thresholds: the night cameras' discriminator flags
    # far more frames difficult, over-committing the congested link.
    static = FleetSpec(
        scheme=scheme,
        config=CONFIG,
        cameras=(CameraSpec(),) * day_cameras
        + (
            CameraSpec(
                dataset=night,
                detections=night_big,
                small_detections=night_small,
                mask=night_mask,
            ),
        )
        * night_cameras,
        mask=mask,
        detections=big,
        small_detections=small,
    )
    report = serve_fleet(congested, test, static)
    mean_map, fresh = fleet_map(report, test)
    print(f"{'static-threshold':<18}{report.frames_uploaded:>9}{fresh:>7.1f}%{mean_map:>13.2f}")

    # Per-camera adaptive quotas: each controller steers the discriminator's
    # area threshold so the realised upload ratio tracks the budget.
    day_quota = AdaptiveQuota(discriminator, small, UPLOAD_BUDGET)
    night_quota = AdaptiveQuota(discriminator, night_small, UPLOAD_BUDGET)
    adaptive = FleetSpec(
        scheme=scheme,
        config=CONFIG,
        cameras=(CameraSpec(offload=day_quota),) * day_cameras
        + (
            CameraSpec(
                dataset=night,
                detections=night_big,
                small_detections=night_small,
                offload=night_quota,
            ),
        )
        * night_cameras,
        detections=big,
        small_detections=small,
    )
    report = serve_fleet(congested, test, adaptive)
    mean_map, fresh = fleet_map(report, test)
    uploads = day_quota.uploads + night_quota.uploads
    print(f"{'adaptive-quota':<18}{uploads:>9}{fresh:>7.1f}%{mean_map:>13.2f}")
    print("\nThe static threshold busts the budget by half again and serves stale;")
    print("the quota controllers hold the budget and stay fresh at near-parity")
    print("rolling mAP — closing the loop without refitting anything.  (Table")
    print("XXI runs the same comparison at the experiment harness's calibration,")
    print("where holding the budget wins the quality column outright.)")


if __name__ == "__main__":
    main()
