"""Multi-camera fleet serving with online quality evaluation.

Run:  python examples/stream_fleet.py

Eight helmet-site cameras stream into one shared WLAN uplink and one cloud
GPU.  Every offload policy — the difficult-case discriminator, the paper's
upload baselines at the same bandwidth quota, and edge/cloud-only — plugs
into the identical serving pipeline, and each run is scored *online*:
rolling-window mAP and missed-object error over every arriving frame, with
dropped and stale (late beyond a freshness deadline) results counting as
empty detections.  Cloud-only saturates the shared uplink and its measured
quality collapses; the discriminator keeps edge-like latency while
recovering most of the big model's quality.
"""

from __future__ import annotations

import numpy as np

from repro import DifficultCaseDiscriminator, load_dataset, make_detector
from repro.baselines import (
    BlurUploadPolicy,
    ConfidenceUploadPolicy,
    RandomUploadPolicy,
)
from repro.core import DiscriminatorPolicy
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    StreamConfig,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    simulate_fleet,
)
from repro.zoo import build_model

CAMERAS = 8
CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0)
WINDOW_S = 8.0
FRESHNESS_S = 2.0


def main() -> None:
    print("Preparing the helmet small-big system...")
    small_model = make_detector("small1", "helmet")
    big_model = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    test = load_dataset("helmet", "test", fraction=0.5)
    small = DetectionBatch.coerce(small_model.detect_split(test))
    big = DetectionBatch.coerce(big_model.detect_split(test))
    quota = float(discriminator.decide_split(small).mean())
    print(f"discriminator upload quota: {100 * quota:.1f}% of frames\n")

    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )

    never = np.zeros(len(test), dtype=bool)
    entries = [
        ("edge-only", edge_only_scheme(), never, small),
        ("cloud-only", cloud_only_scheme(), ~never, big),
    ]
    for label, policy in [
        ("discriminator", DiscriminatorPolicy(discriminator)),
        ("random", RandomUploadPolicy(ratio=quota)),
        ("blur", BlurUploadPolicy(ratio=quota)),
        ("confidence", ConfidenceUploadPolicy(ratio=quota)),
    ]:
        mask = policy.select(test, small)
        entries.append((label, collaborative_scheme(policy, name=label), mask, DetectionBatch.where(mask, big, small)))

    print(f"{CAMERAS} cameras x {CONFIG.fps} fps over one {WLAN.bandwidth_mbps} Mbps uplink:\n")
    print(f"{'policy':<14}{'upload':>8}{'drops':>8}{'p50 (ms)':>10}{'rolling mAP':>13}{'missed obj':>12}")
    results: dict[str, list] = {}
    for label, scheme, mask, served in entries:
        report = simulate_fleet(
            scheme,
            deployment,
            test,
            CONFIG,
            cameras=CAMERAS,
            mask=mask,
            detections=served,
        )
        windows = rolling_quality(
            report,
            test,
            window_s=WINDOW_S,
            duration_s=CONFIG.duration_s,
            freshness_s=FRESHNESS_S,
        )
        results[label] = windows
        scored = [w for w in windows if w.frames]
        mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
        mean_err = sum(w.count_error_percent for w in scored) / max(len(scored), 1)
        print(
            f"{label:<14}{100 * report.upload_ratio:>7.1f}%{100 * report.drop_rate:>7.1f}%"
            f"{1000 * report.latency.p50:>10.1f}{mean_map:>13.2f}{mean_err:>11.1f}%"
        )

    print("\nper-window mAP (cloud-only vs discriminator):")
    for label in ("cloud-only", "discriminator"):
        series = "  ".join(f"{w.map_percent:5.1f}" for w in results[label])
        print(f"  {label:<14} {series}")
    print("\nthe shared uplink is the fleet's bottleneck: policies that upload")
    print("everything shed frames and lose measured quality; the discriminator")
    print("spends the uplink only on difficult frames and holds its level.")


if __name__ == "__main__":
    main()
