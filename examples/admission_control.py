"""Deadline-aware admission control and heterogeneous camera fleets.

Run:  python examples/admission_control.py

Part 1 — admission control.  Eight helmet-site cameras saturate one shared
WLAN uplink under cloud-only serving, and then the camera buffer's
*admission policy* decides what quality an operator actually sees.  The
historical drop-newest rule refuses arriving frames while the buffer holds
ever-staler ones, so every served result blows the freshness deadline;
drop-oldest keeps the buffer fresh-ish but still serves from a deep queue;
the deadline-aware buffer sheds exactly the frames that provably cannot
return in time, and its served stream stays fresh enough to count.

Part 2 — heterogeneous fleets.  Real fleets are not eight identical
cameras: this one mixes frame rates, a night camera with degraded imagery,
an edge-only camera and a deadline-aware cloud-only camera over the same
shared uplink and cloud GPU, via per-camera ``CameraSpec``s.
"""

from __future__ import annotations

from repro import DifficultCaseDiscriminator, load_dataset, make_detector
from repro.core import DiscriminatorPolicy
from repro.data.degrade import DegradationModel
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    DropOldest,
    StreamConfig,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    simulate_fleet,
)
from repro.zoo import build_model

CAMERAS = 8
CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0)
WINDOW_S = 8.0
FRESHNESS_S = 2.0


def main() -> None:
    print("Preparing the helmet small-big system...")
    small_model = make_detector("small1", "helmet")
    big_model = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    test = load_dataset("helmet", "test", fraction=0.5)
    small = DetectionBatch.coerce(small_model.detect_split(test))
    big = DetectionBatch.coerce(big_model.detect_split(test))
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(test, small)
    served = DetectionBatch.where(mask, big, small)

    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )

    # ----------------------------------------------------------------- #
    # Part 1: admission policies on the saturated cloud-only fleet
    # ----------------------------------------------------------------- #
    print(f"\n{CAMERAS} cloud-only cameras over one shared {WLAN.bandwidth_mbps} Mbps uplink")
    print(f"(freshness deadline {FRESHNESS_S:g} s — a stale result scores as a miss):\n")
    print(f"{'admission':<16}{'drops':>8}{'shed':>8}{'p50 (s)':>9}{'fresh':>8}{'rolling mAP':>13}")
    admissions = [DropNewest(), DropOldest(), DeadlineAware(freshness_s=FRESHNESS_S)]
    for admission in admissions:
        report = simulate_fleet(
            cloud_only_scheme(),
            deployment,
            test,
            CONFIG,
            cameras=CAMERAS,
            detections=big,
            admission=admission,
        )
        windows = rolling_quality(
            report,
            test,
            window_s=WINDOW_S,
            duration_s=CONFIG.duration_s,
            freshness_s=FRESHNESS_S,
        )
        scored = [w for w in windows if w.frames]
        mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
        fresh = sum(w.served for w in windows) / max(report.frames_offered, 1)
        print(
            f"{admission.name:<16}{100 * report.drop_rate:>7.1f}%"
            f"{100 * report.frames_shed / max(report.frames_offered, 1):>7.1f}%"
            f"{report.latency.p50:>9.2f}{100 * fresh:>7.1f}%{mean_map:>13.2f}"
        )
    print("\ndrop-newest/drop-oldest serve from a tens-of-seconds-deep queue —")
    print("fresh serves collapse; deadline-aware sheds doomed frames instead")
    print("and keeps the uplink working only on results that still count.")

    # ----------------------------------------------------------------- #
    # Part 2: a heterogeneous fleet over the same shared resources
    # ----------------------------------------------------------------- #
    night = test.with_degradation(
        DegradationModel(degraded_fraction=0.9, min_quality=0.45, max_quality=0.7),
        scope="night-shift",
    )
    night_small = DetectionBatch.coerce(small_model.detect_split(night))
    night_big = DetectionBatch.coerce(big_model.detect_split(night))
    night_mask = policy.select(night, night_small)
    night_served = DetectionBatch.where(night_mask, night_big, night_small)
    specs = [
        CameraSpec(),  # the fleet default: discriminator-collaborative, 1.5 fps
        CameraSpec(config=StreamConfig(fps=4.0, duration_s=CONFIG.duration_s)),  # high-rate gate camera
        CameraSpec(scheme=edge_only_scheme(), detections=small),  # bandwidth-free corner camera
        CameraSpec(  # critical-zone camera: everything to the cloud, freshness enforced
            scheme=cloud_only_scheme(),
            detections=big,
            admission=DeadlineAware(freshness_s=FRESHNESS_S),
        ),
        CameraSpec(  # night camera: same scenes, degraded imagery
            dataset=night,
            mask=night_mask,
            detections=night_served,
        ),
    ]
    fleet = simulate_fleet(
        collaborative_scheme(policy, name="discriminator"),
        deployment,
        test,
        CONFIG,
        cameras=specs,
        mask=mask,
        detections=served,
    )
    labels = ["default", "fast-4fps", "edge-only", "cloud-deadline", "night"]
    print(f"\nheterogeneous {len(specs)}-camera fleet (shared uplink + cloud GPU):\n")
    print(f"{'camera':<16}{'scheme':<15}{'offered':>8}{'served':>8}{'upload':>8}{'p50 (ms)':>10}")
    for label, camera in zip(labels, fleet.cameras):
        print(
            f"{label:<16}{camera.scheme:<15}{camera.frames_offered:>8}{camera.frames_served:>8}"
            f"{100 * camera.upload_ratio:>7.1f}%{1000 * camera.latency.p50:>10.1f}"
        )
    windows = rolling_quality(
        fleet,
        test,
        window_s=WINDOW_S,
        duration_s=CONFIG.duration_s,
        freshness_s=FRESHNESS_S,
    )
    scored = [w for w in windows if w.frames]
    mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
    print(f"\nfleet-wide rolling mAP at the {FRESHNESS_S:g} s deadline: {mean_map:.2f}")
    print("mixed rates, schemes and imagery share one uplink without starving it.")


if __name__ == "__main__":
    main()
