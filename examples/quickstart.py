"""Quickstart: build a small-big system and serve images with it.

Run:  python examples/quickstart.py

Builds the paper's default configuration — small model 1 (VGG-Lite SSD) at
the edge, SSD300 in the cloud, the difficult-case discriminator in between —
fits the three thresholds on the VOC07 training split, and serves a handful
of test images, printing where each was served and why.
"""

from __future__ import annotations

from repro import load_dataset, quickstart_system
from repro.core.features import extract_features


def main() -> None:
    print("Fitting the small-big system on voc07 (this calibrates both")
    print("detectors and the discriminator's three thresholds)...\n")
    system, report = quickstart_system("voc07", train_images=1500)

    disc = system.discriminator
    print("fitted thresholds:")
    print(f"  noise-filter confidence : {disc.confidence_threshold:.2f}  (paper: 0.15-0.35)")
    print(f"  object count            : {disc.count_threshold}     (paper: 2)")
    print(f"  minimum area ratio      : {disc.area_threshold:.2f}  (paper: 0.31)")
    print(f"training difficult-case share: {100 * report.difficult_fraction:.1f}%\n")

    test = load_dataset("voc07", "test", fraction=12 / 4952)
    uploaded_count = 0
    for record in test.records:
        preliminary = system.small_model.detect(record)
        features = extract_features(preliminary, disc.confidence_threshold)
        final, uploaded = system.process_image(record)
        uploaded_count += int(uploaded)
        route = "-> CLOUD (difficult)" if uploaded else "-> edge  (easy)"
        print(
            f"{record.image_id}: {len(record.truth)} objects, "
            f"served {features.n_predict}, estimated {features.n_estimated}, "
            f"min-area {features.min_area_estimated:.3f}  {route}, "
            f"{final.count_above(0.5)} boxes served"
        )

    print(f"\nuploaded {uploaded_count}/{len(test)} images to the cloud")


if __name__ == "__main__":
    main()
