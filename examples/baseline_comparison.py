"""Baseline comparison: the discriminator vs the Sec. VI.E upload strategies.

Run:  python examples/baseline_comparison.py [setting]

At a matched upload budget, compares end-to-end mAP and detected-object
counts of four ways to choose which images go to the cloud:

* the paper's difficult-case discriminator (semantic features),
* random selection,
* Brenner-gradient blur ranking (Eq. 2, computed on rendered pixels),
* mean top-1 confidence ranking.
"""

from __future__ import annotations

import sys

from repro import DifficultCaseDiscriminator, SmallBigSystem, load_dataset
from repro.baselines import (
    BlurUploadPolicy,
    ConfidenceUploadPolicy,
    RandomUploadPolicy,
)
from repro.simulate import make_detector


def main(setting: str = "voc07") -> None:
    print(f"setting: {setting}")
    small = make_detector("small1", setting)
    big = make_detector("ssd", setting)

    train = load_dataset(setting, "train", fraction=1500 / 5011)
    discriminator, _ = DifficultCaseDiscriminator.fit(small.detect_split(train), big.detect_split(train), train.truths)
    system = SmallBigSystem(small_model=small, big_model=big, discriminator=discriminator)

    test = load_dataset(setting, "test", fraction=0.4)
    small_dets = small.detect_split(test)
    big_dets = big.detect_split(test)

    ours = system.run(test, small_detections=small_dets, big_detections=big_dets)
    budget = ours.upload_ratio
    print(f"upload budget (set by the discriminator): {100 * budget:.1f}%\n")

    policies = {
        "ours (discriminator)": None,
        "random": RandomUploadPolicy(ratio=budget),
        "blurred (Brenner)": BlurUploadPolicy(ratio=budget),
        "top-1 confidence": ConfidenceUploadPolicy(ratio=budget),
    }
    print(f"{'strategy':<22}{'e2e mAP':>10}{'detected':>10}{'upload %':>10}")
    for name, policy in policies.items():
        if policy is None:
            run = ours
        else:
            mask = policy.select(test, small_dets)
            run = system.run(
                test,
                small_detections=small_dets,
                big_detections=big_dets,
                uploaded=mask,
            )
        print(
            f"{name:<22}{run.end_to_end_map():>10.2f}"
            f"{run.end_to_end_counts().detected:>10d}"
            f"{100 * run.upload_ratio:>10.1f}"
        )
    print(f"\ncloud-only reference: mAP {ours.big_model_map():.2f}, " f"{ours.big_model_counts().detected} objects")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "voc07")
