"""Time-varying links: trace-driven bandwidth through the runtime stack.

Run:  python examples/trace_driven_network.py

The paper's testbed WLAN is a constant 5.5 Mbps.  Real uplinks are not: a
cellular link breathes with load, and a camera moving away from its access
point fades.  This example attaches the bundled bandwidth traces from
``benchmarks/traces/`` to the shared fleet uplink and shows the two things
the schedule buys:

* **Admission that sees the dip coming.**  ``EstimatedDeadlineAware`` dooms
  a frame by comparing its estimated completion against the freshness
  deadline.  The constant-estimate variant trusts EWMA memory of *past*
  completions, so at the onset of a congestion trough it keeps admitting
  frames the link can no longer deliver in time.  The schedule-aware
  variant folds the link schedule's remaining-time bound into every doom
  test and sheds them at arrival instead.
* **Per-camera mobility.**  ``CameraSpec.link_scale`` modulates the shared
  schedule per camera — the bundled ``mobility_scale`` trace is a camera
  walking away from the access point and back.

The discriminator scheme rides every profile far more gracefully than
cloud-only: its edge verdicts keep serving while the uplink crawls.
"""

from __future__ import annotations

import numpy as np

from repro import DifficultCaseDiscriminator, load_dataset, make_detector
from repro.core import DiscriminatorPolicy
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    CameraSpec,
    Deployment,
    EstimatedDeadlineAware,
    FleetSpec,
    StreamConfig,
    bundled_trace,
    cloud_only_scheme,
    collaborative_scheme,
    serve_fleet,
)
from repro.zoo import build_model

CAMERAS = 8
CONFIG = StreamConfig(fps=1.5, poisson=True, duration_s=40.0, max_edge_queue=30)
WINDOW_S = 8.0
FRESHNESS_S = 2.0


def main() -> None:
    print("Preparing the helmet small-big system...")
    small_model = make_detector("small1", "helmet")
    big_model = make_detector("ssd", "helmet")
    train = load_dataset("helmet", "train", fraction=0.4)
    discriminator, _ = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    test = load_dataset("helmet", "test", fraction=0.5)
    small = DetectionBatch.coerce(small_model.detect_split(test))
    big = DetectionBatch.coerce(big_model.detect_split(test))
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(test, small)
    served = DetectionBatch.where(mask, big, small)

    def deployment(link):
        return Deployment(
            edge=JETSON_NANO,
            cloud=RTX3060_SERVER,
            link=link,
            small_model_flops=float(build_model("small1", num_classes=2).flops),
            big_model_flops=float(build_model("ssd", num_classes=2).flops),
        )

    lte = bundled_trace("lte_like")
    profiles = [
        ("constant", WLAN),
        ("periodic-dip", WLAN.with_rate_schedule(bundled_trace("periodic_dip"))),
        ("lte-trace", WLAN.with_rate_schedule(lte)),
    ]
    print(
        f"\nlte_like trace: mean {lte.mean_rate_mbps:.2f} Mbps, "
        f"trough {min(lte.rates_mbps):.2f} Mbps at "
        f"t=[{lte.times[lte.rates_mbps.index(min(lte.rates_mbps))]:.0f}s...] "
        f"(WLAN constant: {WLAN.bandwidth_mbps:g} Mbps)"
    )

    schemes = [
        ("cloud-only", cloud_only_scheme(), np.ones(len(test), dtype=bool), big),
        ("discriminator", collaborative_scheme(policy, name="discriminator"), mask, served),
    ]
    admissions = [
        ("estimated-constant", lambda: EstimatedDeadlineAware(FRESHNESS_S, schedule_aware=False)),
        ("estimated-schedule", lambda: EstimatedDeadlineAware(FRESHNESS_S)),
    ]
    header = (
        f"{'profile':<14}{'scheme':<15}{'admission':<20}"
        f"{'served':>7}{'shed':>6}{'fresh':>8}{'rolling mAP':>13}"
    )
    print(f"\n{header}")
    for profile_label, link in profiles:
        for scheme_label, scheme, scheme_mask, scheme_served in schemes:
            for admission_label, make_admission in admissions:
                spec = FleetSpec(
                    scheme=scheme,
                    config=CONFIG,
                    cameras=CAMERAS,
                    mask=scheme_mask,
                    small_detections=small,
                    detections=scheme_served,
                    admission=make_admission(),
                )
                fleet = serve_fleet(deployment(link), test, spec)
                windows = rolling_quality(
                    fleet, test, window_s=WINDOW_S,
                    duration_s=CONFIG.duration_s, freshness_s=FRESHNESS_S,
                )
                scored = [w for w in windows if w.frames]
                mean_map = sum(w.map_percent for w in scored) / max(len(scored), 1)
                fresh = 100.0 * sum(w.served for w in windows) / max(fleet.frames_offered, 1)
                print(
                    f"{profile_label:<14}{scheme_label:<15}{admission_label:<20}"
                    f"{fleet.frames_served:>7}{fleet.frames_shed:>6}"
                    f"{fresh:>7.1f}%{mean_map:>13.2f}"
                )

    # Per-camera mobility: half the fleet walks away from the access point.
    mobility = bundled_trace("mobility_scale")
    cameras = tuple(
        CameraSpec(link_scale=mobility if index % 2 else None) for index in range(CAMERAS)
    )
    spec = FleetSpec(
        scheme=cloud_only_scheme(),
        config=CONFIG,
        cameras=cameras,
        mask=np.ones(len(test), dtype=bool),
        detections=big,
        admission=EstimatedDeadlineAware(FRESHNESS_S),
    )
    fleet = serve_fleet(deployment(WLAN.with_rate_schedule(lte)), test, spec)
    print(
        f"\nmobility: {CAMERAS // 2} of {CAMERAS} cameras modulated by the "
        f"mobility_scale trace -> {fleet.frames_served} served, "
        f"{fleet.frames_shed} shed on the lte-trace uplink"
    )
    print("\nthe schedule-aware estimator sheds doomed frames at arrival,")
    print("before they pay queue time; the constant-estimate variant learns")
    print("the trough only from completions that already missed.  either")
    print("way, the discriminator's edge verdicts ride out every profile")
    print("that starves the cloud-only fleet.")


if __name__ == "__main__":
    main()
