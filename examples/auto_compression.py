"""Automatic small-model compression (the paper's Sec. VII future work).

Run:  python examples/auto_compression.py

"The users only need to select the object detection models in the cloud,
and then a lightweight object detection model suitable for given edge
devices and the difficult-case discriminator can be automatically
obtained."  This example does exactly that for three edge-device budgets:
search the Sec. IV.B design space, build the winning small model, predict
its capability profile, calibrate it, fit a discriminator and report the
end-to-end operating point on VOC07.
"""

from __future__ import annotations

from repro import DifficultCaseDiscriminator, SmallBigSystem, load_dataset
from repro.simulate import SimulatedDetector, make_detector
from repro.simulate.calibrate import solve_base_recall
from repro.zoo import search_configuration


def main() -> None:
    setting = "voc07"
    big = make_detector("ssd", setting)
    train = load_dataset(setting, "train", fraction=1500 / 5011)
    test = load_dataset(setting, "test", fraction=0.3)
    big_train = big.detect_split(train)
    big_test = big.detect_split(test)

    budgets = [(25.0, "flagship edge box"), (10.0, "Jetson-class device"), (4.0, "MCU-class camera")]
    print(f"{'budget':>8}  {'config':<34}{'MiB':>7}{'GFLOPs':>8}" f"{'upload %':>10}{'e2e mAP':>9}")
    for budget_mib, label in budgets:
        result = search_configuration(size_budget_mib=budget_mib)
        # Predicted profile -> calibrated capability (recall scaled by the
        # compute heuristic) -> deployable detector.
        profile = solve_base_recall(
            result.predicted_profile, train,
            target=min(0.9, 0.40 * (result.spec.gflops / 6.3) ** 0.2),
        )
        small = SimulatedDetector(profile=profile, num_classes=train.num_classes)
        discriminator, _ = DifficultCaseDiscriminator.fit(small.detect_split(train), big_train, train.truths)
        system = SmallBigSystem(small_model=small, big_model=big, discriminator=discriminator)
        run = system.run(test, big_detections=big_test)
        config = result.config
        desc = f"{config.base} w={config.width_multiplier:g} " f"e/{config.extras_divisor} c7={config.conv7_channels}"
        print(
            f"{budget_mib:>6.0f}MB  {desc:<34}{result.spec.size_mib:>7.2f}"
            f"{result.spec.gflops:>8.2f}{100 * run.upload_ratio:>10.1f}"
            f"{run.end_to_end_map():>9.2f}"
        )
        print(f"          ({label}; cloud-only mAP {run.big_model_map():.2f})")
    print("\nTighter budgets produce weaker small models; the discriminator")
    print("compensates by uploading more, holding end-to-end mAP close to")
    print("cloud-only — the framework's flexible trade-off (Sec. IV.B).")


if __name__ == "__main__":
    main()
