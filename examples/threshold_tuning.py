"""Threshold tuning walk-through (Sec. V.D and Fig. 7).

Run:  python examples/threshold_tuning.py

Shows how the discriminator's three thresholds are obtained from a training
split: the Eq. 1 count-loss curve that fixes the noise-filter confidence
threshold, and the accuracy surface over (count threshold, area threshold)
that fixes the other two, with an ASCII rendering of the Fig. 7 sweep.
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.core import (
    area_threshold_sweep,
    count_loss_curve,
    fit_decision_thresholds,
    label_cases,
)
from repro.simulate import make_detector


def _bar(value: float, lo: float, hi: float, width: int = 36) -> str:
    filled = int((value - lo) / max(hi - lo, 1e-9) * width)
    return "#" * filled


def main() -> None:
    setting = "voc07+12"
    small = make_detector("small1", setting)
    big = make_detector("ssd", setting)
    train = load_dataset(setting, "train", fraction=3000 / 16551)

    print(f"running both models over {len(train)} training images...")
    small_dets = small.detect_split(train)
    big_dets = big.detect_split(train)
    labels = label_cases(small_dets, big_dets)
    print(f"difficult cases: {100 * labels.mean():.1f}% of the split\n")

    # --- threshold 1: noise filter via the Eq. 1 count loss ------------- #
    grid, losses = count_loss_curve(small_dets, train.truths)
    best = int(np.argmin(losses))
    print("Eq. 1 count loss  L(t) = sum |N_predict(t) - N_truth|  (per image):")
    for i in range(0, grid.size, 4):
        marker = "  <-- optimum" if i == best else ""
        print(
            f"  t={grid[i]:.2f}  {losses[i] / len(train):6.3f}  "
            f"{_bar(-losses[i], -losses.max(), -losses.min())}{marker}"
        )
    confidence_threshold = float(grid[best])
    print(f"\nfitted confidence threshold: {confidence_threshold:.2f} " f"(paper: 0.15-0.35)\n")

    # --- thresholds 2-3: grid search with true features ----------------- #
    n_predict = np.array([d.count_above(0.5) for d in small_dets])
    true_counts = np.array([len(t) for t in train.truths])
    true_areas = np.array([t.min_area_ratio for t in train.truths])
    count_thr, area_thr, metrics = fit_decision_thresholds(n_predict, true_counts, true_areas, labels)
    print(f"fitted count threshold: {count_thr} (paper: 2)")
    print(f"fitted area threshold:  {area_thr:.2f} (paper: 0.31)")
    print(
        f"fit quality: accuracy {100 * metrics.accuracy:.2f}%, "
        f"recall {100 * metrics.recall:.2f}%, "
        f"precision {100 * metrics.precision:.2f}% "
        f"(paper: 85.35 / 98.24 / 77.51)\n"
    )

    # --- Fig. 7: sweep the area threshold at count threshold 2 ---------- #
    rows = area_threshold_sweep(
        n_predict, true_counts, true_areas, labels, count_threshold=2,
        area_grid=np.round(np.arange(0.0, 0.52, 0.04), 2),
    )
    print("Fig. 7 sweep (count threshold fixed at 2):")
    print(f"  {'area thr':>8}  {'accuracy':>8}  {'precision':>9}  {'recall':>7}")
    for row in rows:
        print(
            f"  {row['area_threshold']:>8.2f}  {100 * row['accuracy']:>7.2f}%"
            f"  {100 * row['precision']:>8.2f}%  {100 * row['recall']:>6.2f}%"
        )


if __name__ == "__main__":
    main()
