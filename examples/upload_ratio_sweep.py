"""Upload-ratio sweep (Figs. 8 and 9): accuracy/bandwidth trade-off curves.

Run:  python examples/upload_ratio_sweep.py

Ranks test images by the discriminator's difficulty signals, sweeps the
fraction uploaded to the cloud from 0 % to 100 %, and prints the end-to-end
mAP and detected-object curves with their characteristic knee at ~50 %.
"""

from __future__ import annotations

import numpy as np

from repro import DifficultCaseDiscriminator, SmallBigSystem, load_dataset
from repro.core.features import extract_feature_arrays
from repro.experiments.figures import difficulty_priority
from repro.simulate import make_detector


def main() -> None:
    setting = "voc07+12"
    small = make_detector("small1", setting)
    big = make_detector("ssd", setting)
    train = load_dataset(setting, "train", fraction=2000 / 16551)
    discriminator, _ = DifficultCaseDiscriminator.fit(small.detect_split(train), big.detect_split(train), train.truths)
    system = SmallBigSystem(small_model=small, big_model=big, discriminator=discriminator)

    test = load_dataset(setting, "test", fraction=0.4)
    small_dets = small.detect_split(test)
    big_dets = big.detect_split(test)

    n_predict, n_estimated, min_area = extract_feature_arrays(small_dets, discriminator.confidence_threshold)
    priority = difficulty_priority(
        n_predict,
        n_estimated,
        min_area,
        count_threshold=discriminator.count_threshold,
        area_threshold=discriminator.area_threshold,
    )
    order = np.lexsort((np.arange(priority.shape[0]), -priority))

    print(f"{'upload %':>9}  {'e2e mAP':>8}  {'% of cloud':>10}  " f"{'detected':>9}  {'% of cloud':>10}")
    cloud_map = cloud_count = None
    for ratio in np.arange(0.0, 1.01, 0.1):
        mask = np.zeros(len(test), dtype=bool)
        mask[order[: int(round(ratio * len(test)))]] = True
        run = system.run(
            test,
            small_detections=small_dets,
            big_detections=big_dets,
            uploaded=mask,
        )
        e2e_map = run.end_to_end_map()
        e2e_count = run.end_to_end_counts().detected
        if ratio == 1.0 or cloud_map is None:
            cloud_map = run.big_model_map()
            cloud_count = run.big_model_counts().detected
        print(
            f"{100 * ratio:>8.0f}%  {e2e_map:>8.2f}  "
            f"{100 * e2e_map / cloud_map:>9.1f}%  {e2e_count:>9d}  "
            f"{100 * e2e_count / cloud_count:>9.1f}%"
        )
    print("\nThe knee sits near 50% upload: ~90% of cloud-only mAP and ~94%")
    print("of its detections for half the bandwidth (the paper's headline).")


if __name__ == "__main__":
    main()
