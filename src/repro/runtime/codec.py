"""Transfer-size models.

What crosses the edge-to-cloud link is (a) JPEG-compressed camera frames for
difficult cases and (b) the tiny serialized detection results coming back.
The JPEG model is a standard bits-per-pixel estimate; quality-degraded
(blurry, dark) images compress better, which the size model reflects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import ImageRecord
from repro.errors import ConfigurationError

__all__ = ["JpegCodec", "detections_payload_bytes"]


@dataclass(frozen=True)
class JpegCodec:
    """JPEG size estimator.

    ``bits_per_pixel`` around 1.2 corresponds to camera-quality JPEG
    (quality ~85) on natural imagery.
    """

    bits_per_pixel: float = 1.2
    header_bytes: int = 600

    def __post_init__(self) -> None:
        if self.bits_per_pixel <= 0.0:
            raise ConfigurationError("bits_per_pixel must be > 0")

    def encoded_bytes(self, record: ImageRecord) -> int:
        """Estimated JPEG size of one image record.

        Blur and low light remove high-frequency content; the effective
        bits-per-pixel shrinks with image quality (floor at 45 %).
        """
        truth = record.truth
        pixels = truth.width * truth.height
        quality_scale = 0.45 + 0.55 * record.quality
        return self.header_bytes + int(pixels * self.bits_per_pixel * quality_scale / 8)


def detections_payload_bytes(num_boxes: int) -> int:
    """Serialized detection-result size (label, score, four coordinates).

    Six float32 values plus framing per box, and a small envelope.
    """
    if num_boxes < 0:
        raise ConfigurationError("num_boxes must be >= 0")
    return 96 + 28 * num_boxes
