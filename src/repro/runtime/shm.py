"""Zero-copy shared-memory transport for detection shards.

The parallel split runner historically returned every worker's
:class:`~repro.detection.batch.DetectionBatch` by pickling its flat numpy
columns through the process-pool result pipe — a pure copy (serialise, pipe
write, pipe read, deserialise) of arrays that are already process-shareable
on Linux.  This module ships those columns through named
``multiprocessing.shared_memory`` segments instead:

* **Creator side** (the pool worker): :func:`share_batch` packs the four
  flat columns of a batch — ``boxes``/``scores``/``labels``/``offsets`` —
  into one named segment at a fixed, deterministic layout and returns a tiny
  picklable :class:`SharedBatchHandle` (segment name + geometry + image
  ids).  The worker unregisters the segment from its own resource tracker:
  ownership is handed to whichever process adopts the handle.
* **Adopter side** (the parent): :func:`adopt_batch` maps the segment via
  ``numpy.memmap`` over its ``/dev/shm`` backing file, **unlinks the name
  immediately** (the mapping stays valid until the views die, but the
  segment can never outlive the process as a ``/dev/shm`` leak), and
  returns a :class:`~repro.detection.batch.DetectionBatch` whose arrays are
  read-only zero-copy views of the shared pages.

Adoption is therefore a one-shot ownership transfer: a handle can be
adopted once (or explicitly :func:`discard_batch`-ed); afterwards the name
is gone.  Handles that never reach an adopter — worker crashes, exceptions
mid-drain — are reaped deterministically by :class:`SharedArena`, which
scopes every segment of one pool under a unique name prefix and unlinks
whatever is left under that prefix on :meth:`~SharedArena.sweep` (called by
:meth:`~repro.runtime.pool.WorkerPool.shutdown` and, as a last resort, by a
``weakref`` finalizer on the arena itself).  :func:`leaked_segments` is the
test/CI helper asserting that nothing survived.
"""

from __future__ import annotations

import itertools
import os
import sys
import uuid
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layering cycles
    from repro.detection.batch import DetectionBatch

__all__ = [
    "DEFAULT_MAX_SEGMENT_BYTES",
    "SHM_DIR",
    "SharedArena",
    "SharedBatchHandle",
    "ShmTransport",
    "adopt_batch",
    "discard_batch",
    "leaked_segments",
    "share_batch",
    "shm_supported",
]

#: Backing directory of POSIX shared-memory segments on Linux.
SHM_DIR = Path("/dev/shm")

#: Segments above this size fall back to the pickle pipe (``/dev/shm`` is a
#: tmpfs, typically capped at half of RAM — a runaway shard must not fill it).
DEFAULT_MAX_SEGMENT_BYTES = 1 << 30

_ITEM_BYTES = 8  # float64 / int64: every column is 8 bytes per element

_segment_counter = itertools.count()


def shm_supported() -> bool:
    """Whether the zero-copy transport can engage on this platform.

    Requires Linux (the pool pins the ``fork`` start method there, and
    adoption maps the segment's ``/dev/shm`` backing file directly).
    """
    return sys.platform.startswith("linux") and SHM_DIR.is_dir()


def _untrack(segment) -> None:
    """Unregister a created segment from this process's resource tracker.

    The creator hands ownership to the adopter; without this, the worker's
    tracker would unlink (and warn about) segments the parent still reads.
    """
    try:  # pragma: no cover - tracker internals vary across 3.10-3.13
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _close_quietly(segment) -> None:
    """Close a creator-side mapping, tolerating lingering buffer exports."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - exception-path bookkeeping only
        pass  # mapping dies with the process; the name is already handled


@dataclass(frozen=True)
class ShmTransport:
    """Picklable worker-side instructions for returning a shard via shm.

    ``prefix`` scopes every segment the workers create under the owning
    pool's :class:`SharedArena`; ``max_segment_bytes`` is the oversize
    fallback threshold (bigger shards return through the pickle pipe).
    """

    prefix: str
    max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES


@dataclass(frozen=True)
class SharedBatchHandle:
    """The picklable description of one batch parked in shared memory.

    The segment layout is fixed and derivable from the geometry alone:
    ``boxes`` (float64, ``(num_boxes, 4)``) at offset 0, then ``scores``
    (float64), ``labels`` (int64) and ``offsets`` (int64,
    ``num_images + 1``), all 8-byte aligned by construction.
    """

    name: str
    nbytes: int
    num_boxes: int
    image_ids: tuple[str, ...]
    detector: str

    @property
    def num_images(self) -> int:
        return len(self.image_ids)


def _layout(num_boxes: int, num_images: int) -> tuple[int, int, int, int, int]:
    """Byte offsets of the four columns plus the total segment size."""
    boxes_off = 0
    scores_off = boxes_off + num_boxes * 4 * _ITEM_BYTES
    labels_off = scores_off + num_boxes * _ITEM_BYTES
    offsets_off = labels_off + num_boxes * _ITEM_BYTES
    total = offsets_off + (num_images + 1) * _ITEM_BYTES
    return boxes_off, scores_off, labels_off, offsets_off, total


def share_batch(
    batch: "DetectionBatch",
    *,
    prefix: str,
    max_bytes: int | None = None,
) -> SharedBatchHandle | None:
    """Park a batch's flat columns in a named shared-memory segment.

    Returns the handle, or ``None`` when the segment would exceed
    ``max_bytes`` (the caller then falls back to the pickle pipe).  On any
    failure mid-write the segment is unlinked before the error propagates —
    a handle either reaches the caller or the name is gone.
    """
    from multiprocessing.shared_memory import SharedMemory

    num_boxes = batch.num_boxes
    num_images = len(batch)
    boxes_off, scores_off, labels_off, offsets_off, total = _layout(num_boxes, num_images)
    if max_bytes is not None and total > max_bytes:
        return None
    name = f"{prefix}-{os.getpid()}-{next(_segment_counter)}"
    segment = SharedMemory(create=True, name=name, size=max(total, 1))
    try:
        _write_columns(segment.buf, batch, boxes_off, scores_off, labels_off, offsets_off)
        _untrack(segment)
    except BaseException:
        _untrack(segment)
        _close_quietly(segment)
        _unlink_name(name)
        raise
    _close_quietly(segment)
    return SharedBatchHandle(
        name=name,
        nbytes=total,
        num_boxes=num_boxes,
        image_ids=batch.image_ids,
        detector=batch.detector,
    )


def _write_columns(buf, batch, boxes_off, scores_off, labels_off, offsets_off) -> None:
    """Copy the four columns into the mapping (views die on return, so the
    creator can close its mapping without lingering buffer exports)."""
    n = batch.num_boxes
    m = len(batch)
    np.ndarray((n, 4), dtype=np.float64, buffer=buf, offset=boxes_off)[...] = batch.boxes
    np.ndarray((n,), dtype=np.float64, buffer=buf, offset=scores_off)[...] = batch.scores
    np.ndarray((n,), dtype=np.int64, buffer=buf, offset=labels_off)[...] = batch.labels
    np.ndarray((m + 1,), dtype=np.int64, buffer=buf, offset=offsets_off)[...] = batch.offsets


def adopt_batch(handle: SharedBatchHandle) -> "DetectionBatch":
    """Materialise a handle as a batch of zero-copy views, consuming it.

    The segment name is unlinked *before* the batch is returned — the
    mapping (held alive by the views' base chain) survives, but nothing is
    left in ``/dev/shm`` no matter what the caller does afterwards.  A
    handle can be adopted at most once.
    """
    from repro.detection.batch import DetectionBatch

    path = SHM_DIR / handle.name
    try:
        raw = np.memmap(path, dtype=np.uint8, mode="r", shape=(max(handle.nbytes, 1),))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"shared segment {handle.name!r} is gone or truncated: {exc}") from exc
    _unlink_name(handle.name)
    n = handle.num_boxes
    m = handle.num_images
    boxes_off, scores_off, labels_off, offsets_off, _ = _layout(n, m)
    boxes = raw[boxes_off:scores_off].view(np.float64).reshape(n, 4)
    scores = raw[scores_off:labels_off].view(np.float64)
    labels = raw[labels_off:offsets_off].view(np.int64)
    offsets = raw[offsets_off : offsets_off + (m + 1) * _ITEM_BYTES].view(np.int64)
    return DetectionBatch._trusted(
        handle.image_ids,
        boxes,
        scores,
        labels,
        offsets,
        handle.detector,
    )


def discard_batch(handle: SharedBatchHandle) -> None:
    """Unlink a handle's segment without adopting it (error-path cleanup)."""
    _unlink_name(handle.name)


def _unlink_name(name: str) -> None:
    try:
        os.unlink(SHM_DIR / name)
    except OSError:
        pass  # already adopted/swept, or never created


def leaked_segments(prefix: str) -> tuple[str, ...]:
    """Names of ``/dev/shm`` segments still carrying ``prefix``.

    The leak-check helper: tests and CI assert this is empty after pool
    shutdown, worker exceptions and ``WorkerPool.__exit__`` on error.
    """
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return ()
    return tuple(sorted(name for name in entries if name.startswith(prefix)))


def _sweep_prefix(prefix: str) -> tuple[str, ...]:
    leaked = leaked_segments(prefix)
    for name in leaked:
        _unlink_name(name)
    return leaked


class SharedArena:
    """Scopes one pool's shared segments under a unique, sweepable prefix.

    The arena itself allocates nothing — workers create segments named
    under :attr:`prefix` (via the picklable :attr:`transport`), the parent
    adopts them one by one, and whatever never got adopted (exception
    paths, abandoned futures, crashed workers) is unlinked by
    :meth:`sweep`.  :class:`~repro.runtime.pool.WorkerPool` sweeps on
    shutdown; a ``weakref`` finalizer sweeps on garbage collection as the
    last resort, so an arena can never outlive the run as a ``/dev/shm``
    leak.
    """

    def __init__(
        self,
        *,
        prefix: str | None = None,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> None:
        if prefix is not None and ("/" in prefix or not prefix):
            raise ConfigurationError(f"arena prefix must be a non-empty name without '/', got {prefix!r}")
        self.prefix = prefix or f"repro-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.max_segment_bytes = int(max_segment_bytes)
        self._finalizer = weakref.finalize(self, _sweep_prefix, self.prefix)

    @property
    def transport(self) -> ShmTransport:
        """The picklable instructions workers need to publish into this arena."""
        return ShmTransport(prefix=self.prefix, max_segment_bytes=self.max_segment_bytes)

    def adopt(self, handle: SharedBatchHandle) -> "DetectionBatch":
        """See :func:`adopt_batch`."""
        return adopt_batch(handle)

    def discard(self, handle: SharedBatchHandle) -> None:
        """See :func:`discard_batch`."""
        discard_batch(handle)

    def leaked(self) -> tuple[str, ...]:
        """Segments under this arena's prefix still present in ``/dev/shm``."""
        return leaked_segments(self.prefix)

    def sweep(self) -> tuple[str, ...]:
        """Unlink every remaining segment under the prefix; returns names."""
        return _sweep_prefix(self.prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArena(prefix={self.prefix!r}, max_segment_bytes={self.max_segment_bytes})"
