"""End-to-end latency and bandwidth accounting (Table XI).

Three serving schemes are modelled per image:

* **edge-only** — the small model runs on the edge device; nothing crosses
  the network.
* **cloud-only** — every frame is JPEG-encoded, uploaded, processed by the
  big model on the server, and results return.
* **collaborative** — the small model plus the difficult-case discriminator
  run at the edge for every frame; difficult frames additionally pay the
  cloud-only path.

The per-frame stage arithmetic lives in :mod:`repro.runtime.serving` — the
three schemes here are :func:`~repro.runtime.serving.paper_schemes` run
through the shared static engine, and :meth:`EdgeCloudRuntime.run_scheme`
accepts any other :class:`~repro.runtime.serving.ServingScheme` (e.g. a
baseline offload policy).  The executor is deterministic given a seed
(jitter draws are scoped per image), so Table XI's totals are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.datasets import Dataset, ImageRecord
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.runtime.serving import (
    DISCRIMINATOR_FLOPS,
    Deployment,
    RunCost,
    ServingScheme,
    cloud_only_scheme,
    cloud_round_trip_time,
    collaborative_scheme,
    edge_compute_time,
    edge_only_scheme,
    run_cost,
)

__all__ = ["Deployment", "RunCost", "EdgeCloudRuntime", "DISCRIMINATOR_FLOPS"]


@dataclass(frozen=True)
class EdgeCloudRuntime:
    """Latency/bandwidth simulator for one deployment."""

    deployment: Deployment
    seed: int = DEFAULT_SEED

    # ------------------------------------------------------------------ #
    # per-image costs
    # ------------------------------------------------------------------ #
    def edge_latency(self, record: ImageRecord) -> float:
        """Small model plus discriminator on the edge device."""
        return edge_compute_time(self.deployment, discriminate=True)

    def cloud_round_trip(self, record: ImageRecord, result_boxes: int = 8) -> float:
        """Upload one frame, run the big model, return the results."""
        rng = generator_for(self.seed, "net", record.image_id)
        return cloud_round_trip_time(self.deployment, record, rng, result_boxes=result_boxes)

    # ------------------------------------------------------------------ #
    # split-level schemes
    # ------------------------------------------------------------------ #
    def run_scheme(
        self,
        scheme: ServingScheme,
        dataset: Dataset,
        *,
        mask: np.ndarray | None = None,
        small_detections: DetectionBatch | list[Detections] | None = None,
    ) -> RunCost:
        """Serve ``dataset`` under any scheme (policy- or mask-driven)."""
        return run_cost(
            scheme,
            self.deployment,
            dataset,
            mask=mask,
            small_detections=small_detections,
            seed=self.seed,
        )

    def run_edge_only(self, dataset: Dataset) -> RunCost:
        """Every frame served by the small model at the edge."""
        return self.run_scheme(edge_only_scheme(), dataset)

    def run_cloud_only(self, dataset: Dataset) -> RunCost:
        """Every frame uploaded and served by the big model."""
        return self.run_scheme(cloud_only_scheme(), dataset)

    def run_collaborative(self, dataset: Dataset, uploaded: np.ndarray | list[bool]) -> RunCost:
        """Small model everywhere; cloud round trip for uploaded frames."""
        return self.run_scheme(collaborative_scheme(), dataset, mask=uploaded)
