"""End-to-end latency and bandwidth accounting (Table XI).

Three serving schemes are modelled per image:

* **edge-only** — the small model runs on the edge device; nothing crosses
  the network.
* **cloud-only** — every frame is JPEG-encoded, uploaded, processed by the
  big model on the server, and results return.
* **collaborative** — the small model plus the difficult-case discriminator
  run at the edge for every frame; difficult frames additionally pay the
  cloud-only path.

The executor is deterministic given a seed (jitter draws are scoped per
image), so Table XI's totals are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.datasets import Dataset, ImageRecord
from repro.errors import RuntimeModelError
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.runtime.codec import JpegCodec, detections_payload_bytes
from repro.runtime.devices import ComputeDevice
from repro.runtime.network import NetworkLink

__all__ = ["Deployment", "RunCost", "EdgeCloudRuntime"]

#: FLOPs of the threshold-based difficult-case discriminator.  It compares a
#: few dozen scores against thresholds — negligible next to any CNN, but
#: accounted for honesty.
DISCRIMINATOR_FLOPS = 2.0e4


@dataclass(frozen=True)
class Deployment:
    """Hardware/network description of one deployment."""

    edge: ComputeDevice
    cloud: ComputeDevice
    link: NetworkLink
    codec: JpegCodec = field(default_factory=JpegCodec)
    small_model_flops: float = 6.3e9
    big_model_flops: float = 62.7e9

    def __post_init__(self) -> None:
        if self.small_model_flops <= 0 or self.big_model_flops <= 0:
            raise RuntimeModelError("model FLOPs must be positive")


@dataclass(frozen=True)
class RunCost:
    """Aggregate cost of serving one split under one scheme."""

    latency: LatencySummary
    uploaded_images: int
    total_images: int
    uplink_bytes: int
    downlink_bytes: int

    @property
    def upload_ratio(self) -> float:
        """Fraction of images sent to the cloud."""
        if self.total_images == 0:
            return 0.0
        return self.uploaded_images / self.total_images

    def bandwidth_saving_over(self, other: "RunCost") -> float:
        """Fractional uplink bytes saved relative to ``other``."""
        if other.uplink_bytes == 0:
            return 0.0
        return 1.0 - self.uplink_bytes / other.uplink_bytes


@dataclass(frozen=True)
class EdgeCloudRuntime:
    """Latency/bandwidth simulator for one deployment."""

    deployment: Deployment
    seed: int = DEFAULT_SEED

    # ------------------------------------------------------------------ #
    # per-image costs
    # ------------------------------------------------------------------ #
    def edge_latency(self, record: ImageRecord) -> float:
        """Small model plus discriminator on the edge device."""
        device = self.deployment.edge
        return device.inference_latency(
            self.deployment.small_model_flops
        ) + device.inference_latency(DISCRIMINATOR_FLOPS)

    def cloud_round_trip(self, record: ImageRecord, result_boxes: int = 8) -> float:
        """Upload one frame, run the big model, return the results."""
        dep = self.deployment
        rng = generator_for(self.seed, "net", record.image_id)
        upload = dep.link.transfer_time(dep.codec.encoded_bytes(record), rng)
        inference = dep.cloud.inference_latency(dep.big_model_flops)
        download = dep.link.transfer_time(detections_payload_bytes(result_boxes), rng)
        return upload + inference + download

    # ------------------------------------------------------------------ #
    # split-level schemes
    # ------------------------------------------------------------------ #
    def run_edge_only(self, dataset: Dataset) -> RunCost:
        """Every frame served by the small model at the edge."""
        latencies = [
            self.deployment.edge.inference_latency(self.deployment.small_model_flops)
            for _ in dataset.records
        ]
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=0,
            total_images=len(dataset),
            uplink_bytes=0,
            downlink_bytes=0,
        )

    def run_cloud_only(self, dataset: Dataset) -> RunCost:
        """Every frame uploaded and served by the big model."""
        dep = self.deployment
        latencies = [self.cloud_round_trip(record) for record in dataset.records]
        uplink = sum(dep.codec.encoded_bytes(record) for record in dataset.records)
        downlink = len(dataset) * detections_payload_bytes(8)
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=len(dataset),
            total_images=len(dataset),
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )

    def run_collaborative(
        self, dataset: Dataset, uploaded: np.ndarray | list[bool]
    ) -> RunCost:
        """Small model everywhere; cloud round trip for uploaded frames."""
        mask = np.asarray(uploaded, dtype=bool).reshape(-1)
        if mask.shape[0] != len(dataset):
            raise RuntimeModelError(
                f"uploaded mask has {mask.shape[0]} entries for "
                f"{len(dataset)} images"
            )
        dep = self.deployment
        latencies: list[float] = []
        uplink = 0
        for record, send in zip(dataset.records, mask):
            latency = self.edge_latency(record)
            if send:
                latency += self.cloud_round_trip(record)
                uplink += dep.codec.encoded_bytes(record)
            latencies.append(latency)
        downlink = int(mask.sum()) * detections_payload_bytes(8)
        return RunCost(
            latency=summarize_latencies(latencies),
            uploaded_images=int(mask.sum()),
            total_images=len(dataset),
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )
