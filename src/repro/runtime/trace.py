"""Columnar per-frame traces of streaming runs.

Every offered frame of a simulated stream produces one row of bookkeeping:
when it arrived, when (and whether) a result was ready, which dataset record
it showed, which segment of the served batch holds its detections, and —
under failure injection — the deferred cloud verdict a durable escalation
queue recovered for it.  Historically each :class:`_CameraStream` kept those
rows as eight parallel Python lists; at fleet scale (thousands of cameras,
tens of thousands of frames) the lists dominated both simulation time and
the memory profile, and every consumer immediately re-packed them into
arrays anyway.

:class:`FrameTrace` stores the log structure-of-arrays — seven aligned
columns, one row per offered frame — so the rolling-quality evaluator, the
admission/availability experiments and the latency-percentile helpers all
read the same flat arrays with zero re-packing.  :class:`FrameTraceBuilder`
is the streaming producer (amortised doubling growth, in-place verdict
reconciliation), mirroring :class:`~repro.detection.batch.DetectionBatchBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FrameTrace", "FrameTraceBuilder"]

#: Column order of the on-disk ``.npz`` payload (also the constructor order).
_COLUMNS = (
    "arrivals",
    "times",
    "records",
    "served",
    "segments",
    "verdict_times",
    "verdict_segments",
)


@dataclass(frozen=True, eq=False)
class FrameTrace:
    """One stream's (or fleet's) per-frame log, stored structure-of-arrays.

    Attributes
    ----------
    arrivals:
        Arrival instant of every offered frame, in event order.
    times:
        Result-ready instant (the arrival again for dropped frames).
    records:
        Dataset record index each frame showed.
    served:
        Whether a result was produced at all.
    segments:
        Segment index into the run's served :class:`DetectionBatch`
        (``-1`` for drops).
    verdict_times / verdict_segments:
        Deferred cloud verdict a durable escalation queue recovered for a
        frame that first served its edge fallback — when it landed and which
        served segment holds it (``-inf`` / ``-1`` when there is none).
    """

    arrivals: np.ndarray
    times: np.ndarray
    records: np.ndarray
    served: np.ndarray
    segments: np.ndarray
    verdict_times: np.ndarray
    verdict_segments: np.ndarray

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrivals, dtype=np.float64).reshape(-1)
        times = np.asarray(self.times, dtype=np.float64).reshape(-1)
        records = np.asarray(self.records, dtype=np.int64).reshape(-1)
        served = np.asarray(self.served, dtype=bool).reshape(-1)
        segments = np.asarray(self.segments, dtype=np.int64).reshape(-1)
        verdict_times = np.asarray(self.verdict_times, dtype=np.float64).reshape(-1)
        verdict_segments = np.asarray(self.verdict_segments, dtype=np.int64).reshape(-1)
        count = arrivals.shape[0]
        for name, column in (
            ("times", times),
            ("records", records),
            ("served", served),
            ("segments", segments),
            ("verdict_times", verdict_times),
            ("verdict_segments", verdict_segments),
        ):
            if column.shape[0] != count:
                raise ConfigurationError(
                    f"FrameTrace: column {name!r} has {column.shape[0]} rows for {count} arrivals"
                )
        object.__setattr__(self, "arrivals", arrivals)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "records", records)
        object.__setattr__(self, "served", served)
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "verdict_times", verdict_times)
        object.__setattr__(self, "verdict_segments", verdict_segments)

    def __len__(self) -> int:
        return int(self.arrivals.shape[0])

    def __eq__(self, other: object) -> bool:
        """Column-wise value equality (the dataclass default would raise on
        multi-element arrays)."""
        if not isinstance(other, FrameTrace):
            return NotImplemented
        return all(np.array_equal(getattr(self, name), getattr(other, name)) for name in _COLUMNS)

    # defining __eq__ sets __hash__ to None; keep traces hashable by identity
    __hash__ = object.__hash__

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "FrameTrace":
        """A zero-frame trace (the report of a stream that saw no arrivals)."""
        return cls(
            arrivals=np.zeros(0),
            times=np.zeros(0),
            records=np.zeros(0, dtype=np.int64),
            served=np.zeros(0, dtype=bool),
            segments=np.zeros(0, dtype=np.int64),
            verdict_times=np.zeros(0),
            verdict_segments=np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def concat(
        cls,
        parts: Sequence["FrameTrace"],
        *,
        segment_offsets: Sequence[int] | np.ndarray | None = None,
    ) -> "FrameTrace":
        """Concatenate per-camera traces into one fleet-level trace.

        ``segment_offsets`` (one per part) shifts each part's non-negative
        ``segments``/``verdict_segments`` by that part's offset in the
        concatenated served batch, so the fleet trace indexes the fleet
        batch directly; ``-1``/"no segment" markers are preserved.  Without
        offsets the columns concatenate unshifted.
        """
        parts = list(parts)
        if segment_offsets is not None and len(segment_offsets) != len(parts):
            raise ConfigurationError(
                f"FrameTrace.concat: got {len(segment_offsets)} segment offsets for {len(parts)} traces"
            )
        if not parts:
            return cls.empty()
        if len(parts) == 1 and (segment_offsets is None or int(segment_offsets[0]) == 0):
            return parts[0]
        segment_parts: list[np.ndarray] = []
        verdict_parts: list[np.ndarray] = []
        for index, part in enumerate(parts):
            offset = 0 if segment_offsets is None else int(segment_offsets[index])
            if offset:
                segment_parts.append(np.where(part.segments >= 0, part.segments + offset, -1))
                verdict_parts.append(np.where(part.verdict_segments >= 0, part.verdict_segments + offset, -1))
            else:
                segment_parts.append(part.segments)
                verdict_parts.append(part.verdict_segments)
        return cls(
            arrivals=np.concatenate([part.arrivals for part in parts]),
            times=np.concatenate([part.times for part in parts]),
            records=np.concatenate([part.records for part in parts]),
            served=np.concatenate([part.served for part in parts]),
            segments=np.concatenate(segment_parts),
            verdict_times=np.concatenate([part.verdict_times for part in parts]),
            verdict_segments=np.concatenate(verdict_parts),
        )

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    def latencies(self) -> np.ndarray:
        """Result age (completion minus arrival, seconds) of every served frame."""
        return (self.times - self.arrivals)[self.served]

    def latency_percentiles(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)) -> dict[float, float]:
        """Per-frame latency percentiles over the served frames.

        Returns ``{percentile: seconds}``; all zeros when nothing was served
        (a trace with no served frames has no latency distribution to read).
        """
        points = [float(point) for point in percentiles]
        ages = self.latencies()
        if ages.size == 0:
            return {point: 0.0 for point in points}
        values = np.percentile(ages, points)
        return {point: float(value) for point, value in zip(points, values)}

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialise the seven columns as a compressed ``.npz``."""
        np.savez_compressed(path, **{name: getattr(self, name) for name in _COLUMNS})

    @classmethod
    def load(cls, path) -> "FrameTrace":
        """Rebuild a trace from :meth:`save` output (validated on entry)."""
        payload = np.load(path)
        missing = [name for name in _COLUMNS if name not in payload]
        if missing:
            raise ConfigurationError(f"FrameTrace.load: payload is missing columns {missing}")
        return cls(**{name: payload[name] for name in _COLUMNS})


class FrameTraceBuilder:
    """Appendable accumulator producing :class:`FrameTrace` layouts.

    Rows land straight in flat numpy buffers that grow by doubling, so a
    camera logging tens of thousands of frames does amortised O(frames)
    array writes with no per-frame Python list churn.  Deferred-verdict
    reconciliation mutates rows in place by position — exactly the contract
    the durable escalation queue needs — so :meth:`build` should be called
    once the run has drained.
    """

    __slots__ = (
        "_arrivals",
        "_times",
        "_records",
        "_served",
        "_segments",
        "_verdict_times",
        "_verdict_segments",
        "_count",
    )

    def __init__(self, capacity: int = 0) -> None:
        capacity = max(int(capacity), 0)
        self._arrivals = np.empty(capacity, dtype=np.float64)
        self._times = np.empty(capacity, dtype=np.float64)
        self._records = np.empty(capacity, dtype=np.int64)
        self._served = np.empty(capacity, dtype=bool)
        self._segments = np.empty(capacity, dtype=np.int64)
        self._verdict_times = np.empty(capacity, dtype=np.float64)
        self._verdict_segments = np.empty(capacity, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def reserve(self, extra: int) -> None:
        """Grow the buffers to hold ``extra`` more rows (one reallocation)."""
        needed = self._count + max(int(extra), 0)
        capacity = int(self._arrivals.shape[0])
        if needed <= capacity:
            return
        capacity = max(needed, capacity * 2, 16)
        for name in ("_arrivals", "_times", "_records", "_served", "_segments", "_verdict_times", "_verdict_segments"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    def append(self, arrival: float, time: float, record: int, served: bool, segment: int = -1) -> int:
        """Log one offered frame; returns its row position.

        ``segment`` is the frame's index in the run's served batch (``-1``
        for drops); the deferred-verdict columns start empty and are filled
        later through :meth:`set_verdict` / :meth:`mark_served`.
        """
        position = self._count
        if position >= self._arrivals.shape[0]:
            self.reserve(1)
        self._arrivals[position] = arrival
        self._times[position] = time
        self._records[position] = record
        self._served[position] = served
        self._segments[position] = segment
        self._verdict_times[position] = -np.inf
        self._verdict_segments[position] = -1
        self._count = position + 1
        return position

    def set_verdict(self, position: int, time: float, segment: int) -> None:
        """Attach a deferred cloud verdict to an already-served frame."""
        self._verdict_times[position] = time
        self._verdict_segments[position] = segment

    def mark_served(self, position: int, time: float, segment: int) -> None:
        """Un-drop a frame: a recovered escalation produced its first result."""
        self._times[position] = time
        self._served[position] = True
        self._segments[position] = segment

    def build(self) -> "FrameTrace":
        """Snapshot the logged rows as a validated :class:`FrameTrace`."""
        count = self._count
        return FrameTrace(
            arrivals=self._arrivals[:count],
            times=self._times[:count],
            records=self._records[:count],
            served=self._served[:count],
            segments=self._segments[:count],
            verdict_times=self._verdict_times[:count],
            verdict_segments=self._verdict_segments[:count],
        )
