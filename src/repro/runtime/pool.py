"""Harness-lifetime persistent process pool.

Historically every :func:`repro.runtime.parallel.run_shards` call constructed
its own ``ProcessPoolExecutor`` and tore it down again, so a table suite that
produces dozens of detection artifacts paid process startup dozens of times.
:class:`WorkerPool` amortises that cost across an entire harness lifetime:

* **Lazy start** — constructing a pool is free; the underlying executor is
  created on the first parallel :meth:`~WorkerPool.submit` and reused by every
  later call.
* **Serial fallback** — a pool with ``workers <= 1`` never starts a process;
  :meth:`~WorkerPool.submit` runs the task inline and returns an
  already-completed future, so callers write one code path.
* **Clean shutdown** — pools are context managers; ``__exit__`` (also on
  exception) shuts the executor down and marks the pool closed, and further
  submissions raise :class:`~repro.errors.ConfigurationError`.

Worker count resolution is shared with the experiment harness: an explicit
``workers`` argument wins, otherwise the ``REPRO_WORKERS`` environment
variable, otherwise 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["WorkerPool", "resolve_workers"]


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_WORKERS`` env > 1."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"worker count must be >= 1, got {workers}")
    return workers


class WorkerPool:
    """A lazily-started, reusable process pool with a serial fallback.

    The pool is cheap to construct and safe to share: the executor starts at
    most once per pool lifetime (see :attr:`start_count`), every submitter
    sees the same worker processes, and detections stay bit-for-bit identical
    to the serial path because tasks are pure functions of their pickled
    arguments.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._workers = resolve_workers(workers)
        self._executor: ProcessPoolExecutor | None = None
        self._start_count = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Configured worker count (1 means serial inline execution)."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """Whether submissions may run on worker processes."""
        return self._workers > 1

    @property
    def started(self) -> bool:
        """Whether the underlying executor currently exists."""
        return self._executor is not None

    @property
    def start_count(self) -> int:
        """How many times an executor has been started (at most 1 per use)."""
        return self._start_count

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return f"WorkerPool(workers={self._workers}, {state})"

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``, returning a future.

        Serial pools run the task inline (eagerly, in submission order) and
        return a completed future, so callers need no separate serial branch.
        """
        if self._closed:
            raise ConfigurationError("cannot submit to a closed WorkerPool")
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Workers are pure compute over pickled inputs: fork is the
            # cheapest start method where it is reliable (Linux), and pinning
            # it keeps behaviour stable across Python versions that change
            # the default.
            context = multiprocessing.get_context("fork") if sys.platform.startswith("linux") else None
            self._executor = ProcessPoolExecutor(max_workers=self._workers, mp_context=context)
            self._start_count += 1
        return self._executor

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (if any) and refuse further submissions."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        if self._closed:
            raise ConfigurationError("cannot re-enter a closed WorkerPool")
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False
