"""Harness-lifetime persistent process pool.

Historically every :func:`repro.runtime.parallel.run_shards` call constructed
its own ``ProcessPoolExecutor`` and tore it down again, so a table suite that
produces dozens of detection artifacts paid process startup dozens of times.
:class:`WorkerPool` amortises that cost across an entire harness lifetime:

* **Lazy start** — constructing a pool is free; the underlying executor is
  created on the first parallel :meth:`~WorkerPool.submit` and reused by every
  later call.
* **Serial fallback** — a pool with ``workers <= 1`` never starts a process;
  :meth:`~WorkerPool.submit` runs the task inline and returns an
  already-completed future, so callers write one code path.
* **Clean shutdown** — pools are context managers; ``__exit__`` (also on
  exception) shuts the executor down and marks the pool closed, and further
  submissions raise :class:`~repro.errors.ConfigurationError`.

Two zero-copy data-plane facilities hang off the pool because their
lifetimes are the pool's:

* **Fork-inherited snapshots** — :func:`register_inherited` parks a large
  parent-side object (a dataset's record list) in a module-level registry.
  Workers forked *after* registration inherit the registry pages for free
  (copy-on-write), so tasks can ship a tiny ``(token, span)`` instead of a
  pickled record list; :meth:`WorkerPool.inherits` reports whether a given
  token made it into the workers (parallel Linux pools capture the
  registered token set at executor start).
* **Shared-memory arena** — :attr:`WorkerPool.arena` scopes every segment
  the workers publish results through (see :mod:`repro.runtime.shm`);
  :meth:`~WorkerPool.shutdown` sweeps whatever was never adopted, so pool
  teardown — normal or exceptional — leaves ``/dev/shm`` clean.

Worker count resolution is shared with the experiment harness: an explicit
``workers`` argument wins, otherwise the ``REPRO_WORKERS`` environment
variable, otherwise 1 (serial).  The ``REPRO_SHM`` environment variable
(``0`` to disable) gates the shared-memory return path.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.runtime.shm import SharedArena, ShmTransport, shm_supported

__all__ = [
    "WorkerPool",
    "inherited_token",
    "inherited_value",
    "register_inherited",
    "resolve_workers",
]


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_WORKERS`` env > 1."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"worker count must be >= 1, got {workers}")
    return workers


# --------------------------------------------------------------------- #
# fork-inherited snapshot registry
# --------------------------------------------------------------------- #
#: Token -> value.  Filled in the parent; forked workers inherit the whole
#: mapping (copy-on-write pages), so resolving a token is free of transport.
_INHERITED: dict[str, Any] = {}
#: id(value) -> token, so re-registering the same object is idempotent.  The
#: strong reference in ``_INHERITED`` keeps the id stable.
_TOKENS_BY_ID: dict[int, str] = {}
_token_counter = itertools.count()


def register_inherited(value: Any) -> str:
    """Park ``value`` for fork inheritance, returning its stable token.

    Registering the same object again returns the same token.  The registry
    holds a strong reference for the life of the process — register
    long-lived objects (memoised dataset record lists), not throwaways.
    Registration only reaches workers forked afterwards; check
    :meth:`WorkerPool.inherits` before shipping a token to a started pool.
    """
    token = _TOKENS_BY_ID.get(id(value))
    if token is not None and _INHERITED.get(token) is value:
        return token
    token = f"inherit-{os.getpid()}-{next(_token_counter)}"
    _TOKENS_BY_ID[id(value)] = token
    _INHERITED[token] = value
    return token


def inherited_token(value: Any) -> str | None:
    """The token ``value`` is registered under, or ``None``."""
    token = _TOKENS_BY_ID.get(id(value))
    if token is not None and _INHERITED.get(token) is value:
        return token
    return None


def inherited_value(token: str) -> Any:
    """Resolve a token (worker side, via the fork-inherited registry)."""
    try:
        return _INHERITED[token]
    except KeyError:
        raise ConfigurationError(
            f"snapshot {token!r} was not inherited by this process; "
            "it must be registered before the worker pool starts"
        ) from None


class WorkerPool:
    """A lazily-started, reusable process pool with a serial fallback.

    The pool is cheap to construct and safe to share: the executor starts at
    most once per pool lifetime (see :attr:`start_count`), every submitter
    sees the same worker processes, and detections stay bit-for-bit identical
    to the serial path because tasks are pure functions of their arguments —
    whether those arrive pickled, as fork-inherited snapshot spans, or leave
    through the shared-memory arena.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._workers = resolve_workers(workers)
        self._executor: ProcessPoolExecutor | None = None
        self._start_count = 0
        self._closed = False
        self._arena: SharedArena | None = None
        self._inherited_at_start: frozenset[str] | None = None
        # Workers are pure compute over small inputs: fork is the cheapest
        # start method where it is reliable (Linux), and pinning it keeps
        # behaviour stable across Python versions that change the default.
        # Fork is also what makes snapshot inheritance and the /dev/shm
        # arena possible, so both features key off the same flag.
        self._fork = sys.platform.startswith("linux")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Configured worker count (1 means serial inline execution)."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """Whether submissions may run on worker processes."""
        return self._workers > 1

    @property
    def started(self) -> bool:
        """Whether the underlying executor currently exists."""
        return self._executor is not None

    @property
    def start_count(self) -> int:
        """How many times an executor has been started (at most 1 per use)."""
        return self._start_count

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return f"WorkerPool(workers={self._workers}, {state})"

    # ------------------------------------------------------------------ #
    # zero-copy data plane
    # ------------------------------------------------------------------ #
    @property
    def shm_enabled(self) -> bool:
        """Whether shard results may return through shared memory.

        True for parallel pools on Linux (where :mod:`repro.runtime.shm`
        can map segments) unless ``REPRO_SHM=0`` disables the path.  Serial
        pools run inline — there is nothing to transport.
        """
        if not self.parallel or self._closed or not self._fork:
            return False
        env = os.environ.get("REPRO_SHM", "").strip().lower()
        if env in {"0", "off", "false", "no"}:
            return False
        return shm_supported()

    @property
    def arena(self) -> SharedArena | None:
        """The pool's shared-memory arena (``None`` when shm is disabled).

        Created lazily; swept by :meth:`shutdown`, so segment lifetime can
        never exceed pool lifetime.
        """
        if not self.shm_enabled:
            return None
        if self._arena is None:
            self._arena = SharedArena()
        return self._arena

    @property
    def shm_transport(self) -> ShmTransport | None:
        """Worker-side publish instructions, or ``None`` for the pickle path."""
        arena = self.arena
        return arena.transport if arena is not None else None

    def inherits(self, token: str) -> bool:
        """Whether workers can resolve ``token`` from the fork registry.

        Serial pools run inline in the registering process, so every token
        resolves.  Parallel pools inherit the registry at fork time: before
        the executor starts, any currently-registered token will be
        inherited; afterwards only the tokens captured at start are
        available (later registrations fall back to pickled inputs).
        Non-fork platforms never inherit.
        """
        if not self.parallel:
            return True
        if not self._fork:
            return False
        if self._executor is None:
            return token in _INHERITED
        return token in (self._inherited_at_start or frozenset())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``, returning a future.

        Serial pools run the task inline (eagerly, in submission order) and
        return a completed future, so callers need no separate serial branch.
        """
        if self._closed:
            raise ConfigurationError("cannot submit to a closed WorkerPool")
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except Exception as exc:
                # Only ordinary errors belong on the future;
                # KeyboardInterrupt/SystemExit must propagate to the caller
                # exactly as they would from any inline call.
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Capture the snapshot-token set before any worker can fork:
            # everything registered up to here is inherited, nothing after.
            self._inherited_at_start = frozenset(_INHERITED)
            context = multiprocessing.get_context("fork") if self._fork else None
            self._executor = ProcessPoolExecutor(max_workers=self._workers, mp_context=context)
            self._start_count += 1
        return self._executor

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (if any), sweep the arena, refuse further work."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
        if self._arena is not None:
            # Deterministic unlink of anything the workers published but the
            # parent never adopted (exception paths, abandoned futures).
            self._arena.sweep()
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        if self._closed:
            raise ConfigurationError("cannot re-enter a closed WorkerPool")
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False
