"""Edge-cloud execution substrate: devices, links, codecs, serving schemes."""

from repro.runtime.codec import JpegCodec, detections_payload_bytes
from repro.runtime.devices import JETSON_NANO, RTX3060_SERVER, RYZEN9_CPU, ComputeDevice
from repro.runtime.events import EventLoop, FifoResource
from repro.runtime.executor import EdgeCloudRuntime
from repro.runtime.network import ETHERNET_1G, LTE, WLAN, NetworkLink
from repro.runtime.parallel import (
    detect_records,
    run_shards,
    run_split,
    shard_spans,
)
from repro.runtime.pool import WorkerPool, resolve_workers
from repro.runtime.serving import (
    DISCRIMINATOR_FLOPS,
    AlwaysOffload,
    Deployment,
    FleetReport,
    NeverOffload,
    OffloadPolicy,
    RunCost,
    ServingScheme,
    StreamConfig,
    StreamReport,
    cloud_only_scheme,
    cloud_round_trip_time,
    collaborative_scheme,
    edge_compute_time,
    edge_only_scheme,
    paper_schemes,
    run_cost,
    simulate_fleet,
    simulate_stream,
)
from repro.runtime.stream import StreamSimulator

__all__ = [
    "EventLoop",
    "FifoResource",
    "WorkerPool",
    "detect_records",
    "resolve_workers",
    "run_shards",
    "run_split",
    "shard_spans",
    "StreamConfig",
    "StreamReport",
    "StreamSimulator",
    "JpegCodec",
    "detections_payload_bytes",
    "JETSON_NANO",
    "RTX3060_SERVER",
    "RYZEN9_CPU",
    "ComputeDevice",
    "DISCRIMINATOR_FLOPS",
    "Deployment",
    "EdgeCloudRuntime",
    "RunCost",
    "ETHERNET_1G",
    "LTE",
    "WLAN",
    "NetworkLink",
    "AlwaysOffload",
    "FleetReport",
    "NeverOffload",
    "OffloadPolicy",
    "ServingScheme",
    "cloud_only_scheme",
    "cloud_round_trip_time",
    "collaborative_scheme",
    "edge_compute_time",
    "edge_only_scheme",
    "paper_schemes",
    "run_cost",
    "simulate_fleet",
    "simulate_stream",
]
