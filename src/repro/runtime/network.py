"""Network-link model for the edge-to-cloud WLAN."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["NetworkLink", "WLAN", "ETHERNET_1G", "LTE"]


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link with bandwidth, propagation delay and jitter.

    Attributes
    ----------
    bandwidth_mbps:
        Sustained goodput in megabits per second.
    rtt_s:
        Round-trip propagation + protocol latency in seconds.
    jitter_s:
        Standard deviation of a log-normal multiplicative jitter applied to
        each transfer when an RNG is supplied; 0 disables jitter.
    """

    name: str
    bandwidth_mbps: float
    rtt_s: float = 0.01
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0.0:
            raise ConfigurationError("bandwidth_mbps must be > 0")
        if self.rtt_s < 0.0 or self.jitter_s < 0.0:
            raise ConfigurationError("rtt_s and jitter_s must be >= 0")

    def transfer_time(self, payload_bytes: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to move ``payload_bytes`` across the link (one way).

        Includes half the RTT as the one-way protocol cost; a full
        request/response exchange therefore costs one RTT plus both
        serialisation times.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")
        serialisation = payload_bytes * 8 / (self.bandwidth_mbps * 1e6)
        base = self.rtt_s / 2.0 + serialisation
        if rng is not None and self.jitter_s > 0.0:
            base *= float(np.exp(rng.normal(0.0, self.jitter_s)))
        return base


#: The paper's testbed link: edge and server on the same WLAN.
WLAN = NetworkLink(name="wlan", bandwidth_mbps=5.5, rtt_s=0.012, jitter_s=0.15)

#: Wired lab link (ablations).
ETHERNET_1G = NetworkLink(name="ethernet-1g", bandwidth_mbps=940.0, rtt_s=0.001)

#: Cellular uplink (ablations — the wide-area deployment the intro motivates).
LTE = NetworkLink(name="lte", bandwidth_mbps=5.0, rtt_s=0.05, jitter_s=0.3)
