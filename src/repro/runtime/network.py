"""Network-link model for the edge-to-cloud WLAN.

Two layers live here: :class:`NetworkLink`, the always-up bandwidth/RTT/
jitter model the paper's Table XI accounting uses, and the availability
wrapper :class:`UnreliableLink` — the same link with an
:class:`OutageSchedule` (scheduled and/or seeded random down windows) and a
per-transfer loss probability.  The streaming engine consults the wrapper's
:meth:`UnreliableLink.transfer_outcome` at the instant a transfer enters
service, so an uplink transfer in flight when an outage begins fails *at the
outage instant* instead of silently succeeding.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._rng import generator_for
from repro.errors import ConfigurationError

__all__ = [
    "NetworkLink",
    "OutageSchedule",
    "UnreliableLink",
    "WLAN",
    "ETHERNET_1G",
    "LTE",
]


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link with bandwidth, propagation delay and jitter.

    Attributes
    ----------
    bandwidth_mbps:
        Sustained goodput in megabits per second.
    rtt_s:
        Round-trip propagation + protocol latency in seconds.
    jitter_s:
        Standard deviation of a log-normal multiplicative jitter applied to
        each transfer when an RNG is supplied; 0 disables jitter.
    """

    name: str
    bandwidth_mbps: float
    rtt_s: float = 0.01
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0.0:
            raise ConfigurationError("bandwidth_mbps must be > 0")
        if self.rtt_s < 0.0 or self.jitter_s < 0.0:
            raise ConfigurationError("rtt_s and jitter_s must be >= 0")

    def expected_transfer_time(self, payload_bytes: int) -> float:
        """Jitter-free seconds to move ``payload_bytes`` across the link.

        The deterministic figure — half the RTT as the one-way protocol cost
        plus serialisation at the sustained goodput, i.e. the median of the
        log-normal jitter distribution.  This is what the *streaming* engines
        use for every stage service time: queueing there is modelled by the
        event loop, and deterministic service times keep fleet runs
        reproducible event for event.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")
        serialisation = payload_bytes * 8 / (self.bandwidth_mbps * 1e6)
        return self.rtt_s / 2.0 + serialisation

    def transfer_time(self, payload_bytes: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to move ``payload_bytes`` across the link (one way).

        Includes half the RTT as the one-way protocol cost; a full
        request/response exchange therefore costs one RTT plus both
        serialisation times.

        A jittered link (``jitter_s > 0``) *requires* an RNG: silently
        returning the jitter-free figure painted deterministic numbers as
        sampled ones.  Callers that deliberately want the jitter-free figure
        (the static engine's no-upload frames, every streaming stage time)
        use :meth:`expected_transfer_time` instead.
        """
        if self.jitter_s > 0.0 and rng is None:
            raise ConfigurationError(
                f"link {self.name!r} has jitter_s={self.jitter_s} and needs an RNG; "
                "use expected_transfer_time() for the deliberate jitter-free figure"
            )
        base = self.expected_transfer_time(payload_bytes)
        if rng is not None and self.jitter_s > 0.0:
            base *= float(np.exp(rng.normal(0.0, self.jitter_s)))
        return base


@dataclass(frozen=True)
class OutageSchedule:
    """When the edge-to-cloud path is down.

    ``windows`` is a sorted tuple of non-overlapping ``(start, end)`` down
    intervals in simulated seconds; the link is up everywhere else (an empty
    tuple — the default — is an always-up schedule).  Build deterministic
    up/down cycles with :meth:`periodic` and seeded random outages with
    :meth:`random`.
    """

    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        previous_end = 0.0
        for start, end in self.windows:
            if start < 0.0 or end <= start:
                raise ConfigurationError(f"malformed outage window ({start}, {end})")
            if start < previous_end:
                raise ConfigurationError("outage windows must be sorted and non-overlapping")
            previous_end = end
        # bisect keys, precomputed once (frozen dataclass: set via object.__setattr__)
        object.__setattr__(self, "_starts", tuple(start for start, _ in self.windows))

    @classmethod
    def always_up(cls) -> "OutageSchedule":
        """A schedule with no outages (the implicit pre-failure-injection world)."""
        return cls()

    @classmethod
    def periodic(
        cls,
        *,
        period_s: float,
        downtime_s: float,
        duration_s: float,
        offset_s: float = 0.0,
    ) -> "OutageSchedule":
        """Deterministic cycle: down for ``downtime_s`` at the top of every period.

        The first outage begins at ``offset_s``; windows are generated until
        ``duration_s``.  ``downtime_s / period_s`` is the downtime fraction.
        """
        if period_s <= 0.0 or duration_s <= 0.0:
            raise ConfigurationError("period_s and duration_s must be positive")
        if not 0.0 < downtime_s < period_s:
            raise ConfigurationError("downtime_s must lie strictly inside the period")
        if offset_s < 0.0:
            raise ConfigurationError("offset_s must be >= 0")
        windows = []
        start = offset_s
        while start < duration_s:
            windows.append((start, start + downtime_s))
            start += period_s
        return cls(windows=tuple(windows))

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        duration_s: float,
        mean_up_s: float,
        mean_down_s: float,
    ) -> "OutageSchedule":
        """Seeded alternating up/down intervals with exponential lengths.

        Starts up; expected downtime fraction is
        ``mean_down_s / (mean_up_s + mean_down_s)``.  The same seed always
        yields the same schedule.
        """
        if duration_s <= 0.0 or mean_up_s <= 0.0 or mean_down_s <= 0.0:
            raise ConfigurationError("duration_s, mean_up_s and mean_down_s must be positive")
        rng = generator_for(seed, "outage-schedule", mean_up_s, mean_down_s)
        windows = []
        t = float(rng.exponential(mean_up_s))
        while t < duration_s:
            down = float(rng.exponential(mean_down_s))
            windows.append((t, t + down))
            t += down + float(rng.exponential(mean_up_s))
        return cls(windows=tuple(windows))

    def is_down(self, t: float) -> bool:
        """Whether the link is inside an outage window at instant ``t``."""
        index = bisect_right(self._starts, t) - 1
        return index >= 0 and t < self.windows[index][1]

    def failure_instant(self, start: float, duration: float) -> float | None:
        """First instant in ``[start, start + duration)`` the link is down.

        ``None`` when the whole interval is up.  A transfer in service over
        that interval fails exactly there — at ``start`` when the link is
        already down, mid-flight when an outage begins during the transfer.
        """
        if self.is_down(start):
            return start
        index = bisect_right(self._starts, start)
        if index < len(self.windows) and self.windows[index][0] < start + duration:
            return self.windows[index][0]
        return None

    def downtime_within(self, duration_s: float) -> float:
        """Total seconds of scheduled downtime inside ``[0, duration_s)``."""
        total = 0.0
        for start, end in self.windows:
            if start >= duration_s:
                break
            total += min(end, duration_s) - start
        return total


@dataclass(frozen=True)
class UnreliableLink(NetworkLink):
    """A :class:`NetworkLink` with scheduled outages and per-transfer loss.

    Timing (bandwidth, RTT, jitter) is the wrapped link's; availability is
    new.  The *static* engine (:func:`repro.runtime.serving.run_cost`) has no
    time axis, so there the wrapper times transfers exactly like its base
    link; only the event-driven engines consult :meth:`transfer_outcome`
    (via the uplink resource's fault hook) and fail transfers.

    Attributes
    ----------
    outages:
        Down windows; a transfer in service when one begins fails at the
        outage instant, and a transfer starting inside one fails immediately.
    loss_probability:
        Chance an otherwise-successful transfer is lost after paying its
        full serialisation time (congestion loss / timeout, not an outage).
    """

    outages: OutageSchedule = field(default_factory=OutageSchedule)
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )

    @classmethod
    def wrap(
        cls,
        base: NetworkLink,
        *,
        outages: OutageSchedule | None = None,
        loss_probability: float = 0.0,
    ) -> "UnreliableLink":
        """Wrap an existing link, keeping its timing parameters."""
        return cls(
            name=base.name,
            bandwidth_mbps=base.bandwidth_mbps,
            rtt_s=base.rtt_s,
            jitter_s=base.jitter_s,
            outages=OutageSchedule() if outages is None else outages,
            loss_probability=loss_probability,
        )

    def transfer_outcome(
        self, start: float, duration: float, rng: np.random.Generator | None = None
    ) -> tuple[float, bool]:
        """``(occupancy seconds, success)`` of a transfer entering service.

        An outage truncates the transfer at the outage instant (zero
        occupancy when the link is already down — a fast connection
        failure); a surviving transfer is then lost with
        ``loss_probability`` after occupying the link for its full duration.
        The loss draw is only consumed when a loss is possible, so a
        zero-loss wrapper reproduces the reliable link draw for draw.
        """
        failure = self.outages.failure_instant(start, duration)
        if failure is not None:
            return failure - start, False
        if self.loss_probability > 0.0 and rng is not None:
            if float(rng.random()) < self.loss_probability:
                return duration, False
        return duration, True

    def fault_model(self, rng: np.random.Generator | None) -> Callable[[float, float], tuple[float, bool]]:
        """Bind :meth:`transfer_outcome` to one RNG for a resource's fault hook."""

        def outcome(start: float, duration: float) -> tuple[float, bool]:
            return self.transfer_outcome(start, duration, rng)

        return outcome


#: The paper's testbed link: edge and server on the same WLAN.
WLAN = NetworkLink(name="wlan", bandwidth_mbps=5.5, rtt_s=0.012, jitter_s=0.15)

#: Wired lab link (ablations).
ETHERNET_1G = NetworkLink(name="ethernet-1g", bandwidth_mbps=940.0, rtt_s=0.001)

#: Cellular uplink (ablations — the wide-area deployment the intro motivates).
LTE = NetworkLink(name="lte", bandwidth_mbps=5.0, rtt_s=0.05, jitter_s=0.3)
