"""Network-link model for the edge-to-cloud WLAN.

Three layers live here: :class:`RateSchedule`, a piecewise-constant
bandwidth profile (constant, periodic dips, or a measured trace);
:class:`NetworkLink`, the bandwidth/RTT/jitter model the paper's Table XI
accounting uses — optionally carrying a schedule so transfer time depends on
*when* the transfer starts; and the availability wrapper
:class:`UnreliableLink` — the same link with an :class:`OutageSchedule`
(scheduled and/or seeded random down windows) and a per-transfer loss
probability.  The streaming engine consults the wrapper's
:meth:`UnreliableLink.transfer_outcome` at the instant a transfer enters
service, so an uplink transfer in flight when an outage begins fails *at the
outage instant* instead of silently succeeding; on a scheduled link the
transfer's duration is likewise resolved at that instant by integrating the
schedule.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Sequence

import numpy as np

from repro._rng import generator_for
from repro.errors import ConfigurationError

__all__ = [
    "NetworkLink",
    "OutageSchedule",
    "RateSchedule",
    "UnreliableLink",
    "WLAN",
    "ETHERNET_1G",
    "LTE",
]


@dataclass(frozen=True)
class RateSchedule:
    """A piecewise-constant bandwidth profile over simulated time.

    ``rates_mbps[i]`` holds on ``[times[i], times[i + 1])``; the last rate
    extends forever, so every schedule is total.  ``times`` starts at 0 and
    is strictly increasing; all rates are positive (a rate *dip* is a
    schedule concern, a rate of *zero* is an outage and belongs to
    :class:`OutageSchedule` so failure semantics stay in one place).

    Cumulative megabit capacity at each breakpoint is precomputed once, so
    :meth:`transfer_duration` is a closed-form bisect into the prefix sums,
    not a loop over segments — a transfer spanning fifty breakpoints costs
    the same as one spanning none.
    """

    times: tuple[float, ...]
    rates_mbps: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ConfigurationError("rate schedule needs at least one breakpoint")
        if len(self.times) != len(self.rates_mbps):
            raise ConfigurationError(
                f"times and rates_mbps lengths differ ({len(self.times)} vs {len(self.rates_mbps)})"
            )
        if self.times[0] != 0.0:
            raise ConfigurationError("rate schedule must start at t=0")
        previous = self.times[0]
        for t in self.times[1:]:
            if t <= previous:
                raise ConfigurationError("rate schedule times must be strictly increasing")
            previous = t
        for rate in self.rates_mbps:
            if rate <= 0.0:
                raise ConfigurationError(
                    "rates_mbps must be > 0 (model zero-rate windows as an OutageSchedule)"
                )
        # Prefix sums: megabits deliverable over [0, times[i]].  Frozen
        # dataclass, so the cache is installed via object.__setattr__ (same
        # trick as OutageSchedule._starts).
        capacity = [0.0]
        for i in range(1, len(self.times)):
            capacity.append(
                capacity[-1] + (self.times[i] - self.times[i - 1]) * self.rates_mbps[i - 1]
            )
        object.__setattr__(self, "_capacity_mb", tuple(capacity))

    @classmethod
    def always(cls, rate_mbps: float) -> "RateSchedule":
        """A constant schedule — bit-for-bit the scalar-bandwidth model."""
        return cls(times=(0.0,), rates_mbps=(float(rate_mbps),))

    @classmethod
    def periodic(
        cls,
        *,
        base_mbps: float,
        dip_mbps: float,
        period_s: float,
        dip_s: float,
        duration_s: float,
        offset_s: float = 0.0,
    ) -> "RateSchedule":
        """Deterministic congestion cycle: dip to ``dip_mbps`` every period.

        The first dip begins at ``offset_s`` and lasts ``dip_s``; dips repeat
        every ``period_s`` until ``duration_s``, after which the base rate
        holds forever.
        """
        if base_mbps <= 0.0 or dip_mbps <= 0.0:
            raise ConfigurationError("base_mbps and dip_mbps must be > 0")
        if period_s <= 0.0 or duration_s <= 0.0:
            raise ConfigurationError("period_s and duration_s must be positive")
        if not 0.0 < dip_s < period_s:
            raise ConfigurationError("dip_s must lie strictly inside the period")
        if offset_s < 0.0:
            raise ConfigurationError("offset_s must be >= 0")
        points: list[tuple[float, float]] = [(0.0, base_mbps)]
        start = offset_s
        while start < duration_s:
            points.append((start, dip_mbps))
            points.append((start + dip_s, base_mbps))
            start += period_s
        times: list[float] = []
        rates: list[float] = []
        for t, rate in points:
            if times and t == times[-1]:
                rates[-1] = rate
                continue
            if times and rate == rates[-1]:
                continue
            times.append(t)
            rates.append(rate)
        return cls(times=tuple(times), rates_mbps=tuple(rates))

    @classmethod
    def from_trace(
        cls, times: Sequence[float], mbps: Sequence[float]
    ) -> "RateSchedule":
        """Build a schedule from a measured trace (e.g. an LTE bandwidth log).

        ``times`` are sample instants in seconds, ``mbps`` the rate holding
        from each instant to the next.  A trace starting after t=0 is
        extended backwards at its first rate; an empty trace is a
        configuration error, not an always-up default — a missing trace file
        should fail loudly.
        """
        if len(times) == 0 or len(mbps) == 0:
            raise ConfigurationError("rate trace is empty")
        if len(times) != len(mbps):
            raise ConfigurationError(
                f"trace times and mbps lengths differ ({len(times)} vs {len(mbps)})"
            )
        time_points = [float(t) for t in times]
        rate_points = [float(r) for r in mbps]
        if time_points[0] < 0.0:
            raise ConfigurationError("trace times must be >= 0")
        if time_points[0] > 0.0:
            time_points.insert(0, 0.0)
            rate_points.insert(0, rate_points[0])
        return cls(times=tuple(time_points), rates_mbps=tuple(rate_points))

    @property
    def is_constant(self) -> bool:
        """Single-segment schedules reduce to the scalar-bandwidth model."""
        return len(self.times) == 1

    @property
    def span_s(self) -> float:
        """Last breakpoint instant; the final rate holds beyond it forever."""
        return self.times[-1]

    @property
    def mean_rate_mbps(self) -> float:
        """Capacity-weighted mean rate over ``[0, span_s]``.

        The static engine serialises at this figure so Table XI stays
        well-defined on a scheduled link; for a constant schedule it is the
        rate itself, exactly.
        """
        if len(self.times) == 1:
            return self.rates_mbps[0]
        return self._capacity_mb[-1] / self.times[-1]

    def rate_at(self, t: float) -> float:
        """Rate in effect at instant ``t``."""
        if t < 0.0:
            raise ConfigurationError("t must be >= 0")
        return self.rates_mbps[bisect_right(self.times, t) - 1]

    def transfer_duration(self, start: float, payload_bytes: int) -> float:
        """Seconds to serialise ``payload_bytes`` starting at ``start``.

        Closed form: locate the start segment, add the payload's megabits to
        the capacity already consumed by ``start``, and bisect the prefix
        sums for the instant that cumulative capacity is reached.  A start
        inside the final (infinite) segment short-circuits to the scalar
        arithmetic — bit-for-bit what ``payload * 8 / (rate * 1e6)`` gives,
        which is what pins constant schedules to the pre-schedule model.
        """
        if start < 0.0:
            raise ConfigurationError("start must be >= 0")
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")
        if payload_bytes == 0:
            return 0.0
        index = bisect_right(self.times, start) - 1
        if index == len(self.times) - 1:
            return payload_bytes * 8 / (self.rates_mbps[index] * 1e6)
        capacity: tuple[float, ...] = self._capacity_mb  # type: ignore[attr-defined]
        consumed = capacity[index] + (start - self.times[index]) * self.rates_mbps[index]
        target = consumed + payload_bytes * 8 / 1e6
        segment = bisect_right(capacity, target) - 1
        end = self.times[segment] + (target - capacity[segment]) / self.rates_mbps[segment]
        return max(0.0, end - start)

    def scaled(self, scale: "RateSchedule | float") -> "RateSchedule":
        """Pointwise product with a scalar or a (dimensionless) schedule.

        Scaling by a schedule merges the breakpoint sets and multiplies the
        rates — how a per-camera mobility profile (``CameraSpec.link_scale``)
        modulates the shared uplink's own schedule.
        """
        if isinstance(scale, RateSchedule):
            merged = sorted(set(self.times) | set(scale.times))
            return RateSchedule(
                times=tuple(merged),
                rates_mbps=tuple(self.rate_at(t) * scale.rate_at(t) for t in merged),
            )
        if scale <= 0.0:
            raise ConfigurationError("scale must be > 0")
        return RateSchedule(
            times=self.times, rates_mbps=tuple(rate * scale for rate in self.rates_mbps)
        )


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link with bandwidth, propagation delay and jitter.

    Attributes
    ----------
    bandwidth_mbps:
        Sustained goodput in megabits per second.  When a ``schedule`` is
        attached this is its capacity-weighted mean — the figure every
        time-free consumer (the static engine, wait-bound estimates) uses.
    rtt_s:
        Round-trip propagation + protocol latency in seconds.
    jitter_s:
        Standard deviation of a log-normal multiplicative jitter applied to
        each transfer when an RNG is supplied; 0 disables jitter.
    schedule:
        Optional time-varying rate profile.  ``None`` means constant at
        ``bandwidth_mbps`` — the pre-schedule scalar model, bit for bit.
        Attach one with :meth:`with_rate_schedule`, which keeps the
        mean-rate invariant; the event engines then resolve each transfer's
        duration at grant time via :meth:`transfer_duration`.
    """

    name: str
    bandwidth_mbps: float
    rtt_s: float = 0.01
    jitter_s: float = 0.0
    schedule: RateSchedule | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0.0:
            raise ConfigurationError("bandwidth_mbps must be > 0")
        if self.rtt_s < 0.0 or self.jitter_s < 0.0:
            raise ConfigurationError("rtt_s and jitter_s must be >= 0")
        if self.schedule is not None and self.bandwidth_mbps != self.schedule.mean_rate_mbps:
            raise ConfigurationError(
                f"link {self.name!r}: bandwidth_mbps ({self.bandwidth_mbps}) must equal the "
                f"schedule's mean rate ({self.schedule.mean_rate_mbps}); build scheduled links "
                "with NetworkLink.with_rate_schedule()"
            )

    def with_rate_schedule(self, schedule: RateSchedule) -> "NetworkLink":
        """This link, timed by ``schedule`` instead of a constant rate.

        ``bandwidth_mbps`` becomes the schedule's mean so every mean-rate
        consumer is automatically consistent.  Works on subclasses too —
        an :class:`UnreliableLink` keeps its outages and loss.
        """
        return replace(self, bandwidth_mbps=schedule.mean_rate_mbps, schedule=schedule)

    @property
    def time_varying(self) -> bool:
        """Whether transfer time depends on the start instant.

        Constant schedules report ``False`` so the engines keep the exact
        pre-schedule code path — that, not luck, is what makes the
        constant-schedule equivalence bit-for-bit and overhead-free.
        """
        return self.schedule is not None and not self.schedule.is_constant

    def transfer_duration(self, start: float, payload_bytes: int) -> float:
        """Jitter-free seconds for a transfer *starting at* ``start``.

        On an unscheduled (or constant-schedule) link this is exactly
        :meth:`expected_transfer_time`; on a time-varying link the
        serialisation integrates the schedule from ``start``.
        """
        if self.schedule is None or self.schedule.is_constant:
            return self.expected_transfer_time(payload_bytes)
        return self.rtt_s / 2.0 + self.schedule.transfer_duration(start, payload_bytes)

    def expected_transfer_time(self, payload_bytes: int) -> float:
        """Jitter-free seconds to move ``payload_bytes`` across the link.

        The deterministic figure — half the RTT as the one-way protocol cost
        plus serialisation at the sustained goodput, i.e. the median of the
        log-normal jitter distribution.  This is what the *streaming* engines
        use for every stage service time: queueing there is modelled by the
        event loop, and deterministic service times keep fleet runs
        reproducible event for event.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")
        serialisation = payload_bytes * 8 / (self.bandwidth_mbps * 1e6)
        return self.rtt_s / 2.0 + serialisation

    def transfer_time(self, payload_bytes: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to move ``payload_bytes`` across the link (one way).

        Includes half the RTT as the one-way protocol cost; a full
        request/response exchange therefore costs one RTT plus both
        serialisation times.

        A jittered link (``jitter_s > 0``) *requires* an RNG: silently
        returning the jitter-free figure painted deterministic numbers as
        sampled ones.  Callers that deliberately want the jitter-free figure
        (the static engine's no-upload frames, every streaming stage time)
        use :meth:`expected_transfer_time` instead.
        """
        if self.jitter_s > 0.0 and rng is None:
            raise ConfigurationError(
                f"link {self.name!r} has jitter_s={self.jitter_s} and needs an RNG; "
                "use expected_transfer_time() for the deliberate jitter-free figure"
            )
        base = self.expected_transfer_time(payload_bytes)
        if rng is not None and self.jitter_s > 0.0:
            base *= float(np.exp(rng.normal(0.0, self.jitter_s)))
        return base


@dataclass(frozen=True)
class OutageSchedule:
    """When the edge-to-cloud path is down.

    ``windows`` is a sorted tuple of non-overlapping ``(start, end)`` down
    intervals in simulated seconds; the link is up everywhere else (an empty
    tuple — the default — is an always-up schedule).  Build deterministic
    up/down cycles with :meth:`periodic` and seeded random outages with
    :meth:`random`.
    """

    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        previous_end = 0.0
        for start, end in self.windows:
            if start < 0.0 or end <= start:
                raise ConfigurationError(f"malformed outage window ({start}, {end})")
            if start < previous_end:
                raise ConfigurationError("outage windows must be sorted and non-overlapping")
            previous_end = end
        # bisect keys, precomputed once (frozen dataclass: set via object.__setattr__)
        object.__setattr__(self, "_starts", tuple(start for start, _ in self.windows))

    @classmethod
    def always_up(cls) -> "OutageSchedule":
        """A schedule with no outages (the implicit pre-failure-injection world)."""
        return cls()

    @classmethod
    def periodic(
        cls,
        *,
        period_s: float,
        downtime_s: float,
        duration_s: float,
        offset_s: float = 0.0,
    ) -> "OutageSchedule":
        """Deterministic cycle: down for ``downtime_s`` at the top of every period.

        The first outage begins at ``offset_s``; windows are generated until
        ``duration_s``.  ``downtime_s / period_s`` is the downtime fraction.
        """
        if period_s <= 0.0 or duration_s <= 0.0:
            raise ConfigurationError("period_s and duration_s must be positive")
        if not 0.0 < downtime_s < period_s:
            raise ConfigurationError("downtime_s must lie strictly inside the period")
        if offset_s < 0.0:
            raise ConfigurationError("offset_s must be >= 0")
        windows = []
        start = offset_s
        while start < duration_s:
            windows.append((start, start + downtime_s))
            start += period_s
        return cls(windows=tuple(windows))

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        duration_s: float,
        mean_up_s: float,
        mean_down_s: float,
    ) -> "OutageSchedule":
        """Seeded alternating up/down intervals with exponential lengths.

        Starts up; expected downtime fraction is
        ``mean_down_s / (mean_up_s + mean_down_s)``.  The same seed always
        yields the same schedule.
        """
        if duration_s <= 0.0 or mean_up_s <= 0.0 or mean_down_s <= 0.0:
            raise ConfigurationError("duration_s, mean_up_s and mean_down_s must be positive")
        rng = generator_for(seed, "outage-schedule", mean_up_s, mean_down_s)
        windows = []
        t = float(rng.exponential(mean_up_s))
        while t < duration_s:
            down = float(rng.exponential(mean_down_s))
            windows.append((t, t + down))
            t += down + float(rng.exponential(mean_up_s))
        return cls(windows=tuple(windows))

    def is_down(self, t: float) -> bool:
        """Whether the link is inside an outage window at instant ``t``."""
        index = bisect_right(self._starts, t) - 1
        return index >= 0 and t < self.windows[index][1]

    def failure_instant(self, start: float, duration: float) -> float | None:
        """First instant in ``[start, start + duration)`` the link is down.

        ``None`` when the whole interval is up.  A transfer in service over
        that interval fails exactly there — at ``start`` when the link is
        already down, mid-flight when an outage begins during the transfer.
        """
        if self.is_down(start):
            return start
        index = bisect_right(self._starts, start)
        if index < len(self.windows) and self.windows[index][0] < start + duration:
            return self.windows[index][0]
        return None

    def downtime_within(self, duration_s: float) -> float:
        """Total seconds of scheduled downtime inside ``[0, duration_s)``."""
        total = 0.0
        for start, end in self.windows:
            if start >= duration_s:
                break
            total += min(end, duration_s) - start
        return total


@dataclass(frozen=True)
class UnreliableLink(NetworkLink):
    """A :class:`NetworkLink` with scheduled outages and per-transfer loss.

    Timing (bandwidth, RTT, jitter) is the wrapped link's; availability is
    new.  The *static* engine (:func:`repro.runtime.serving.run_cost`) has no
    time axis, so there the wrapper times transfers exactly like its base
    link; only the event-driven engines consult :meth:`transfer_outcome`
    (via the uplink resource's fault hook) and fail transfers.

    Attributes
    ----------
    outages:
        Down windows; a transfer in service when one begins fails at the
        outage instant, and a transfer starting inside one fails immediately.
    loss_probability:
        Chance an otherwise-successful transfer is lost after paying its
        full serialisation time (congestion loss / timeout, not an outage).
    """

    outages: OutageSchedule = field(default_factory=OutageSchedule)
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )

    @classmethod
    def wrap(
        cls,
        base: NetworkLink,
        *,
        outages: OutageSchedule | None = None,
        loss_probability: float = 0.0,
    ) -> "UnreliableLink":
        """Wrap an existing link, keeping its timing parameters.

        The timing fields are enumerated from :class:`NetworkLink` itself
        rather than copied by hand, so a new timing field (``schedule`` was
        the motivating case) can never silently drop when wrapping.
        """
        timing = {f.name: getattr(base, f.name) for f in fields(NetworkLink)}
        return cls(
            **timing,
            outages=OutageSchedule() if outages is None else outages,
            loss_probability=loss_probability,
        )

    def transfer_outcome(
        self, start: float, duration: float, rng: np.random.Generator | None = None
    ) -> tuple[float, bool]:
        """``(occupancy seconds, success)`` of a transfer entering service.

        An outage truncates the transfer at the outage instant (zero
        occupancy when the link is already down — a fast connection
        failure); a surviving transfer is then lost with
        ``loss_probability`` after occupying the link for its full duration.
        The loss draw is only consumed when a loss is possible, so a
        zero-loss wrapper reproduces the reliable link draw for draw.
        """
        failure = self.outages.failure_instant(start, duration)
        if failure is not None:
            return failure - start, False
        if self.loss_probability > 0.0 and rng is not None:
            if float(rng.random()) < self.loss_probability:
                return duration, False
        return duration, True

    def fault_model(self, rng: np.random.Generator | None) -> Callable[[float, float], tuple[float, bool]]:
        """Bind :meth:`transfer_outcome` to one RNG for a resource's fault hook."""

        def outcome(start: float, duration: float) -> tuple[float, bool]:
            return self.transfer_outcome(start, duration, rng)

        return outcome


#: The paper's testbed link: edge and server on the same WLAN.
WLAN = NetworkLink(name="wlan", bandwidth_mbps=5.5, rtt_s=0.012, jitter_s=0.15)

#: Wired lab link (ablations).
ETHERNET_1G = NetworkLink(name="ethernet-1g", bandwidth_mbps=940.0, rtt_s=0.001)

#: Cellular uplink (ablations — the wide-area deployment the intro motivates).
LTE = NetworkLink(name="lte", bandwidth_mbps=5.0, rtt_s=0.05, jitter_s=0.3)
