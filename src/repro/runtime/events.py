"""Discrete-event simulation core for the streaming runtime.

A tiny, dependency-free event-driven simulator: a priority queue of timed
events plus FIFO resources that serialise work (an edge accelerator, the
WLAN uplink, a cloud GPU).  The streaming module builds the paper's
motivating scenario — continuous video frames — on top of it, so queueing
delay under load is modelled rather than assumed.

The loop is the innermost loop of every fleet simulation (cameras x frames
x pipeline stages events), so its bookkeeping is deliberately lean: events
are plain ``(time, sequence, action)`` tuples on the heap (no per-event
object), zero-delay events ride a FIFO fast path that skips the heap
entirely when no queued event could fire first, and the resource queue is a
``deque`` so a saturated uplink with tens of thousands of waiting jobs
dequeues in O(1) instead of ``list.pop(0)``'s O(n).

Resources optionally carry a *fault hook* (``faults``): a callable the
server consults when a job enters service, mapping ``(start_time,
service_time)`` to ``(actual_occupancy, success)``.  An unreliable uplink
plugs its outage schedule in here, so a transfer in flight when an outage
begins fails at the outage instant instead of silently completing.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable

from repro.errors import ConfigurationError, RuntimeModelError

__all__ = ["EventLoop", "FifoResource"]


class EventLoop:
    """A minimal deterministic discrete-event loop.

    Events scheduled for the same instant fire in scheduling order, which
    keeps runs reproducible.  Zero-delay events keep that contract on the
    fast path: they bypass the heap only when the heap holds nothing due at
    the current instant (every heap event would fire later), so pending
    events always precede any same-instant event scheduled after them.
    """

    __slots__ = ("_heap", "_pending", "_sequence", "_now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._pending: deque[Callable[[], None]] = deque()
        self._sequence = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from the current time.

        ``delay`` must be a finite number >= 0: scheduling into the past
        would corrupt the event order, and NaN would silently sort anywhere
        in the heap.  Both are caller configuration errors.
        """
        if not delay >= 0.0:  # also catches NaN
            raise ConfigurationError(f"cannot schedule into the past: {delay}")
        heap = self._heap
        if delay == 0.0 and (not heap or heap[0][0] > self._now):
            # No queued event can fire at the current instant, so FIFO order
            # among the pending actions is the full ordering contract.
            self._pending.append(action)
            return
        self._sequence += 1
        heapq.heappush(heap, (self._now + delay, self._sequence, action))

    def schedule_repeating(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        keep_going: Callable[[], bool],
    ) -> None:
        """Run ``action`` every ``interval`` seconds while ``keep_going()``.

        The predicate is consulted *after* each firing to decide whether to
        schedule the next one, so a repeating event cannot keep the loop
        alive forever — it dies as soon as its reason to exist does.  This
        is the contract fleet controllers need: tick while arrivals are
        still coming or queues still hold frames, then let the loop drain.
        The first firing happens one interval from now.
        """
        if not interval > 0.0:  # also catches NaN
            raise ConfigurationError(f"repeating interval must be positive, got {interval}")

        def tick() -> None:
            action()
            if keep_going():
                self.schedule(interval, tick)

        self.schedule(interval, tick)

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the final simulation time.
        """
        heap = self._heap
        pending = self._pending
        if until is None:
            while True:
                while pending:
                    pending.popleft()()
                if not heap:
                    return self._now
                time, _, action = heapq.heappop(heap)
                self._now = time
                action()
        while pending or heap:
            if pending:
                if self._now > until:
                    self._now = until
                    return self._now
                pending.popleft()()
                continue
            if heap[0][0] > until:
                self._now = until
                return self._now
            time, _, action = heapq.heappop(heap)
            self._now = time
            action()
        return self._now


class FifoResource:
    """A single-server FIFO resource (accelerator, link, GPU).

    ``acquire`` enqueues a job with a known service time and a completion
    callback; jobs are served one at a time in arrival order.  Utilisation
    and queueing statistics are tracked for the stream report.

    ``acquire`` returns an opaque job handle; :meth:`cancel` removes a job
    that is *still waiting* (admission policies shed queued frames this
    way).  A job already in service — or already served — can no longer be
    cancelled.

    A ``faults`` hook makes the server unreliable: when a job enters
    service the hook maps ``(start_time, service_time)`` to ``(actual
    occupancy, success)``.  Failed jobs occupy the server for the truncated
    time, then fire their ``on_fail`` callback (required at ``acquire``
    time for any job that can fail) instead of ``on_done``.
    """

    __slots__ = (
        "_loop",
        "name",
        "_faults",
        "_queue",
        "_busy",
        "busy_time",
        "jobs_served",
        "jobs_failed",
        "jobs_cancelled",
        "max_queue_depth",
    )

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        *,
        faults: Callable[[float, float], tuple[float, bool]] | None = None,
    ) -> None:
        self._loop = loop
        self.name = name
        self._faults = faults
        self._queue: deque[
            tuple[
                float,
                Callable[[float], None],
                Callable[[float], None] | None,
                Callable[[float], float] | None,
            ]
        ] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_served = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.max_queue_depth = 0

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (not including the one in service)."""
        return len(self._queue)

    @property
    def can_fail(self) -> bool:
        """Whether this resource was built with a fault hook."""
        return self._faults is not None

    def acquire(
        self,
        service_time: float,
        on_done: Callable[[float], None],
        on_fail: Callable[[float], None] | None = None,
        *,
        service_fn: Callable[[float], float] | None = None,
    ) -> object:
        """Enqueue a job; ``on_done(completion_time)`` fires when served.

        On an unreliable resource (one built with ``faults``) the job may
        instead fail, firing ``on_fail(failure_time)``; a faulty resource
        therefore requires ``on_fail`` for every job.

        A job whose true cost depends on *when* it enters service (a
        transfer on a time-varying link) passes ``service_fn(grant_time) ->
        duration``: the duration is resolved at the grant instant, and
        ``service_time`` stays as the caller's estimate for
        :meth:`queued_waits` and :meth:`cancel` accounting.  The fault hook
        then sees the resolved duration, so outages and loss compose with
        variable-rate links unchanged.

        Returns a handle accepted by :meth:`cancel`.
        """
        if service_time < 0.0:
            raise RuntimeModelError(f"negative service time: {service_time}")
        if self._faults is not None and on_fail is None:
            raise ConfigurationError(
                f"resource {self.name!r} can fail jobs; acquire() needs an on_fail callback"
            )
        job = (service_time, on_done, on_fail, service_fn)
        self._queue.append(job)
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        if not self._busy:
            self._start_next()
        return job

    def queued_waits(self) -> list[tuple[object, float]]:
        """``(handle, wait bound)`` for each waiting job, in queue order.

        The bound sums the known service times of the waiting jobs ahead
        (for deferred-cost jobs, the caller's ``service_time`` estimate);
        the in-service job's *remaining* time is unknown and excluded, so
        each value is a lower bound on that job's actual wait on a
        fixed-cost queue and an estimate on a deferred-cost one.
        """
        waits: list[tuple[object, float]] = []
        ahead = 0.0
        for job in self._queue:
            waits.append((job, ahead))
            ahead += job[0]
        return waits

    def cancel(self, handle: object) -> float | None:
        """Remove a still-waiting job from the queue.

        Returns the cancelled job's service time (the wait it frees for
        everything queued behind it) when the job was waiting and has been
        removed; its ``on_done`` will never fire.  Returns ``None`` when
        the job already entered service (or finished) — cancellation cannot
        claw back work the server has started.
        """
        for index, job in enumerate(self._queue):
            if job is handle:
                del self._queue[index]
                self.jobs_cancelled += 1
                return job[0]
        return None

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        service_time, on_done, on_fail, service_fn = self._queue.popleft()
        if service_fn is not None:
            service_time = service_fn(self._loop.now)
            if service_time < 0.0:
                raise RuntimeModelError(f"service_fn returned negative duration: {service_time}")
        if self._faults is None:
            occupancy, ok = service_time, True
        else:
            occupancy, ok = self._faults(self._loop.now, service_time)
            if occupancy < 0.0 or occupancy > service_time:
                raise RuntimeModelError(
                    f"fault hook returned occupancy {occupancy} outside [0, {service_time}]"
                )
        self.busy_time += occupancy
        if ok:
            self.jobs_served += 1
        else:
            self.jobs_failed += 1

        def _complete() -> None:
            if ok:
                on_done(self._loop.now)
            else:
                assert on_fail is not None  # enforced in acquire()
                on_fail(self._loop.now)
            self._start_next()

        self._loop.schedule(occupancy, _complete)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serving jobs."""
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
