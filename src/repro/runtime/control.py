"""Closed-loop fleet control: estimated-time admission, uplink coordination,
adaptive offload quotas.

Every policy in :mod:`repro.runtime.serving` up to here is static and
omniscient: :class:`~repro.runtime.serving.DeadlineAware` reads the
simulator's exact queued service times, each camera sheds alone, and the
discriminator threshold is fit once offline.  This module closes the loop
with policies that *learn from what a deployed camera can actually see* —
its own frames' completion events:

* :class:`FrameEvent` + the ``observe(camera, event)`` hook — the feedback
  channel.  An engine emits one event per finished frame to every observer
  a run registers (admission policy, offload controller, fleet controller).
  Policies without the hook never pay for it: the engine builds events only
  when at least one observer is attached.
* :class:`EstimatedDeadlineAware` — deadline admission from EWMA estimates
  of observed queue-drain and remaining-pipeline times, fed solely by the
  camera's own completion events.  No simulator ground truth: it recovers
  most of the omniscient policy's advantage honestly (Table XXI).
* :class:`UplinkCoordinator` — a :class:`FleetController` on the shared
  event loop: it pools downstream-time estimates fleet-wide and sweeps the
  cameras between arrivals, shedding doomed frames at the stalest camera
  first, so a doomed frame frees the shared uplink *before* the camera's
  next arrival would have shed it.
* :class:`AdaptiveQuota` — per-camera integral control of the discriminator
  threshold (the previously-unwired
  :class:`~repro.core.adaptive.BudgetController`), with an optional
  pseudo-label quality feedback: audited cloud verdicts reveal how much
  the edge model is missing, and cameras whose miss rate runs above the
  fleet reference raise their upload quota.

The :class:`CameraView` protocol is the narrow public surface these
policies (and user-defined ones) program against — observable camera state
plus the shedding verbs — so nothing here touches the engine's private
camera class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.adaptive import BudgetController
from repro.detection.batch import DetectionBatch
from repro.errors import ConfigurationError, RuntimeModelError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.discriminator import DifficultCaseDiscriminator
    from repro.detection.types import Detections
    from repro.runtime.events import EventLoop
    from repro.runtime.serving import StreamConfig

__all__ = [
    "AdaptiveQuota",
    "CameraView",
    "EstimatedDeadlineAware",
    "FleetController",
    "FrameEvent",
    "OffloadController",
    "UplinkCoordinator",
]


@dataclass(frozen=True, slots=True)
class FrameEvent:
    """One frame's observable outcome, emitted at its completion instant.

    ``kind`` is ``"served"`` for a frame that produced a result (locally or
    from the cloud) and ``"failed"`` for a frame lost to an uplink failure.
    The timing decomposition is only meaningful for served frames — a
    failed transfer never finished its stages, so its timing fields are
    zero:

    * ``queue_wait`` — time spent waiting in the camera's *entry* stage
      (edge queue, or the shared uplink queue for no-edge schemes).
    * ``entry_time`` — the entry stage's service time.
    * everything between ``entry_done`` and ``completion`` is downstream:
      uplink/cloud/downlink service *and* downstream queueing.

    All quantities are things a deployed camera can measure with wall
    clocks on its own traffic — no simulator internals leak through.
    """

    kind: str
    arrival: float
    completion: float
    record_index: int
    offloaded: bool
    queue_wait: float = 0.0
    entry_time: float = 0.0

    @property
    def entry_done(self) -> float:
        """Instant the frame left the camera's entry stage."""
        return self.arrival + self.queue_wait + self.entry_time

    @property
    def downstream_time(self) -> float:
        """Time from entry-stage exit to completion (0 for local serves)."""
        return self.completion - self.entry_done


@runtime_checkable
class CameraView(Protocol):
    """The observable-state-plus-shedding surface a policy programs against.

    This is the *public* face of the engine's per-camera stream object:
    enough to implement admission and control policies (what is queued, how
    stale is it, shed it) without reaching into engine internals.  All
    built-in policies — and the protocols below — are typed against it.
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        """Current simulation time."""
        ...

    @property
    def config(self) -> "StreamConfig":  # pragma: no cover - protocol signature
        """The camera's workload description (fps, buffer bound...)."""
        ...

    def buffer_has_room(self) -> bool:  # pragma: no cover - protocol signature
        ...

    def buffer_depth(self) -> int:  # pragma: no cover - protocol signature
        """Frames admitted but not yet through the entry stage."""
        ...

    def queued_arrivals(self) -> tuple[float, ...]:  # pragma: no cover - protocol signature
        """Arrival times of the still-waiting (sheddable) frames, oldest first."""
        ...

    def uplink_depth(self) -> int:  # pragma: no cover - protocol signature
        """Jobs waiting in the (possibly shared) uplink queue."""
        ...

    def shed_oldest(self) -> bool:  # pragma: no cover - protocol signature
        ...

    def shed_expired(self, freshness_s: float) -> int:  # pragma: no cover - protocol signature
        ...

    def shed_frames(
        self, doomed: Callable[[int, float], bool]
    ) -> int:  # pragma: no cover - protocol signature
        """Shed waiting frames judged ``doomed(position, arrival)``."""
        ...

    def min_remaining_s(self) -> float:  # pragma: no cover - protocol signature
        """Schedule-aware floor under any admitted frame's pipeline time.

        ``0.0`` on a constant-rate link; on a time-varying one, the
        cheapest frame's unavoidable remaining pipeline integrated from
        now — the congestion signal estimated policies fold into their
        doom tests ahead of any observed slowdown.
        """
        ...


@runtime_checkable
class OffloadController(Protocol):
    """Per-frame *online* offload decision, replacing a static mask.

    Where :class:`~repro.runtime.serving.OffloadPolicy` decides a whole
    split offline, an offload controller is consulted frame by frame as
    each edge stage finishes — the point where the discriminator's features
    exist — and may carry state between decisions (quota tracking, drift
    adaptation).  Optional hooks, both discovered structurally:

    * ``observe(camera, event)`` — per-frame completion feedback.
    * ``reset()`` — called by the engines at the start of every run, so a
      stateful controller can be reused across runs without leaking state.
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol signature
        ...

    def decide(
        self, camera: CameraView, record_index: int
    ) -> bool:  # pragma: no cover - protocol signature
        ...


@runtime_checkable
class FleetController(Protocol):
    """A fleet-wide participant on the shared event loop.

    ``attach`` is called once per run, after every camera is built and
    scheduled but before the loop starts; the controller may keep the
    camera views and schedule its own (self-limiting) events on the loop.
    ``horizon_s`` is the last arrival instant — a periodic controller keeps
    ticking past it only while cameras still hold queued frames, so the
    loop can drain.  Optional structural hooks: ``observe(camera, event)``
    and ``reset()`` (same contract as :class:`OffloadController`).
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol signature
        ...

    def attach(
        self, loop: "EventLoop", cameras: Sequence[CameraView], *, horizon_s: float
    ) -> None:  # pragma: no cover - protocol signature
        ...


# --------------------------------------------------------------------- #
# observed-time estimation (shared by admission and coordination)
# --------------------------------------------------------------------- #
class _CameraEstimate:
    """EWMA timing estimates built from one camera's own completion events.

    Three quantities, all observable on the camera's wall clock:

    * ``entry`` — the entry stage's service time (``event.entry_time``):
      how long one job holds the stage a queued frame is waiting for.
    * ``downstream`` — ``completion - entry_done``: everything after the
      entry stage (uplink/cloud service *and* downstream queueing; 0 for
      local serves).
    * ``remaining`` — ``completion - (arrival + queue_wait)``: service-
      inclusive time from entering the entry stage to the result landing
      (a floor on any frame's time-to-result, queueing aside).
    """

    __slots__ = ("_alpha", "entry", "downstream", "remaining", "observations")

    def __init__(self, alpha: float) -> None:
        self._alpha = alpha
        self.entry: float | None = None
        self.downstream: float | None = None
        self.remaining: float | None = None
        self.observations = 0

    def _ewma(self, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return (1.0 - self._alpha) * current + self._alpha * sample

    def observe(self, event: FrameEvent) -> None:
        if event.kind != "served":
            return
        self.entry = self._ewma(self.entry, event.entry_time)
        self.downstream = self._ewma(self.downstream, event.downstream_time)
        self.remaining = self._ewma(self.remaining, event.completion - event.arrival - event.queue_wait)
        self.observations += 1

    def completion_estimate(
        self,
        now: float,
        position: int,
        downstream: float | None = None,
        entry: float | None = None,
    ) -> float:
        """Estimated completion time of the waiting frame at ``position``.

        ``position`` is the frame's entry-stage queue position — the jobs
        queued ahead of it, fleet-wide on a shared stage — so the wait
        estimate is ``position`` service times, mirroring the omniscient
        policy's wait bound with the estimated mean service time standing
        in for the simulator's exact per-job times.  Then the frame's own
        entry service and the downstream leg.  ``now + remaining`` floors
        the estimate (a frame cannot beat zero queueing).  ``downstream``
        and ``entry`` may be overridden — the coordinator substitutes its
        fleet-pooled estimates, which converge a fleet-factor faster on
        shared stages.
        """
        assert self.remaining is not None
        service = self.entry if entry is None else entry
        tail = self.downstream if downstream is None else downstream
        estimate = now + (position + 1) * (service or 0.0) + (tail or 0.0)
        floor = now + self.remaining
        return estimate if estimate > floor else floor


class EstimatedDeadlineAware:
    """Deadline admission from *observed* times — no simulator internals.

    The omniscient :class:`~repro.runtime.serving.DeadlineAware` reads the
    exact service times queued ahead of each frame.  This policy instead
    maintains per-camera EWMA estimates (:class:`_CameraEstimate`) fed by
    the ``observe`` hook, and shed a queued frame once its *estimated*
    completion blows the freshness deadline.  Until a camera has produced
    ``min_observations`` completion events it behaves exactly like
    :class:`~repro.runtime.serving.DropNewest` — cold start is part of the
    measured cost of honesty.

    One instance may serve a whole fleet: state is keyed per camera, and
    ``reset()`` (called by the engines at the start of every run) clears it,
    so reusing the instance across runs is safe.

    On a time-varying link the EWMA memory is systematically stale the
    moment the rate changes — completions observed at the old rate
    under-estimate a dip.  ``schedule_aware`` (the default) floors every
    doom estimate at the camera's :meth:`CameraView.min_remaining_s`, which
    integrates the link schedule from *now*, so a congestion dip raises the
    estimate immediately.  The floor is exactly ``0`` on constant-rate
    links, keeping the pre-schedule behaviour bit for bit;
    ``schedule_aware=False`` keeps the constant-estimate behaviour on
    scheduled links too (the ablation the Table XXII ordering pins
    against).
    """

    name = "estimated-deadline"

    def __init__(
        self,
        freshness_s: float = 2.0,
        *,
        halflife: int = 8,
        min_observations: int = 1,
        schedule_aware: bool = True,
    ) -> None:
        if freshness_s <= 0.0:
            raise RuntimeModelError(f"freshness_s must be positive, got {freshness_s}")
        if halflife < 1:
            raise ConfigurationError(f"halflife must be >= 1, got {halflife}")
        if min_observations < 1:
            raise ConfigurationError(f"min_observations must be >= 1, got {min_observations}")
        self.freshness_s = freshness_s
        self.min_observations = min_observations
        self.schedule_aware = schedule_aware
        self._alpha = 1.0 - 0.5 ** (1.0 / halflife)
        self._estimates: dict[int, _CameraEstimate] = {}

    def reset(self) -> None:
        """Forget every camera's estimates (called per run by the engines)."""
        self._estimates.clear()

    def observe(self, camera: CameraView, event: FrameEvent) -> None:
        estimate = self._estimates.get(id(camera))
        if estimate is None:
            estimate = self._estimates[id(camera)] = _CameraEstimate(self._alpha)
        estimate.observe(event)

    def admit(self, camera: CameraView, arrival: float) -> bool:
        estimate = self._estimates.get(id(camera))
        if (
            estimate is not None
            and estimate.remaining is not None
            and estimate.observations >= self.min_observations
        ):
            now = camera.now
            deadline = self.freshness_s
            # Zero on constant-rate links (max() is then a no-op — the
            # pre-schedule arithmetic bit for bit); on a time-varying link
            # the floor carries the schedule's view of *now*.
            floor = now + camera.min_remaining_s() if self.schedule_aware else now
            camera.shed_frames(
                lambda position, queued_arrival: max(
                    estimate.completion_estimate(now, position), floor
                )
                > queued_arrival + deadline
            )
        return camera.buffer_has_room()


class UplinkCoordinator:
    """Fleet-wide deadline rebalancing on the shared event loop.

    Per-camera estimated admission only acts when *that camera's* next
    frame arrives, and each camera learns the stage-time estimates from
    its own sparse completions.  Sitting on the loop, the coordinator
    fixes both: it pools the entry-service and downstream estimates across
    every camera's events (the stages are shared resources, so the pool
    converges a fleet-factor faster), and every ``interval_s`` it sweeps
    the fleet — stalest camera first — shedding frames whose estimated
    completion blows the deadline, so a doomed frame releases its shared
    uplink slot between arrivals instead of at the next one.

    Pure fleet logic over :class:`CameraView`; composes with any admission
    policy (Table XXI runs it on top of :class:`EstimatedDeadlineAware`).
    """

    name = "uplink-coordinator"

    def __init__(
        self,
        freshness_s: float = 2.0,
        *,
        interval_s: float = 0.25,
        halflife: int = 8,
        min_observations: int = 1,
        schedule_aware: bool = True,
    ) -> None:
        if freshness_s <= 0.0:
            raise RuntimeModelError(f"freshness_s must be positive, got {freshness_s}")
        if interval_s <= 0.0:
            raise ConfigurationError(f"interval_s must be positive, got {interval_s}")
        if halflife < 1:
            raise ConfigurationError(f"halflife must be >= 1, got {halflife}")
        if min_observations < 1:
            raise ConfigurationError(f"min_observations must be >= 1, got {min_observations}")
        self.freshness_s = freshness_s
        self.interval_s = interval_s
        self.min_observations = min_observations
        self.schedule_aware = schedule_aware
        self._alpha = 1.0 - 0.5 ** (1.0 / halflife)
        self._estimates: dict[int, _CameraEstimate] = {}
        self._fleet_entry: float | None = None
        self._fleet_downstream: float | None = None
        self._cameras: tuple[CameraView, ...] = ()
        self._loop: "EventLoop | None" = None
        #: Frames shed by coordinator sweeps in the current/last run.
        self.swept = 0

    def reset(self) -> None:
        """Forget all fleet state (called per run by the engines)."""
        self._estimates.clear()
        self._fleet_entry = None
        self._fleet_downstream = None
        self._cameras = ()
        self._loop = None
        self.swept = 0

    def _pool(self, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return (1.0 - self._alpha) * current + self._alpha * sample

    def observe(self, camera: CameraView, event: FrameEvent) -> None:
        if event.kind == "served":
            # Entry-stage service and the downstream legs traverse shared
            # resources, so both pool fleet-wide and converge a
            # fleet-factor faster than any camera's own estimate.
            self._fleet_entry = self._pool(self._fleet_entry, event.entry_time)
            self._fleet_downstream = self._pool(self._fleet_downstream, event.downstream_time)
        estimate = self._estimates.get(id(camera))
        if estimate is None:
            estimate = self._estimates[id(camera)] = _CameraEstimate(self._alpha)
        estimate.observe(event)

    def attach(self, loop: "EventLoop", cameras: Sequence[CameraView], *, horizon_s: float) -> None:
        self._loop = loop
        self._cameras = tuple(cameras)

        def still_needed() -> bool:
            if loop.now < horizon_s:
                return True
            return any(camera.buffer_depth() > 0 for camera in self._cameras)

        loop.schedule_repeating(self.interval_s, self._sweep, keep_going=still_needed)

    def _staleness(self, camera: CameraView, now: float) -> float:
        queued = camera.queued_arrivals()
        return now - queued[0] if queued else 0.0

    def _sweep(self) -> None:
        assert self._loop is not None
        now = self._loop.now
        # Stalest camera first: its doomed frames sit deepest in the shared
        # uplink queue, so shedding them frees the most wait for everyone.
        order = sorted(
            range(len(self._cameras)),
            key=lambda index: self._staleness(self._cameras[index], now),
            reverse=True,
        )
        for index in order:
            camera = self._cameras[index]
            estimate = self._estimates.get(id(camera))
            if (
                estimate is None
                or estimate.remaining is None
                or estimate.observations < self.min_observations
            ):
                continue
            deadline = self.freshness_s
            downstream = self._fleet_downstream
            entry = self._fleet_entry
            # Same schedule-aware floor as EstimatedDeadlineAware.admit:
            # exactly `now` (a no-op under max) on constant-rate links.
            floor = now + camera.min_remaining_s() if self.schedule_aware else now
            self.swept += camera.shed_frames(
                lambda position, queued_arrival: max(
                    estimate.completion_estimate(now, position, downstream, entry), floor
                )
                > queued_arrival + deadline
            )


# --------------------------------------------------------------------- #
# adaptive offload quotas (the BudgetController, finally wired)
# --------------------------------------------------------------------- #
class AdaptiveQuota:
    """Per-camera adaptive offload quota around :class:`BudgetController`.

    Each camera gets its own integral controller tracking ``target_ratio``
    by nudging the discriminator's area threshold after every decision —
    the drift robustness :mod:`repro.core.adaptive` promises, now actually
    reachable from the serving engines (it was dead public API before).

    ``feedback`` optionally closes an outer quality loop with pseudo
    labels: per-record miss rates (how much of the cloud verdict the edge
    verdict missed — :func:`repro.metrics.rolling.verdict_miss_rates`),
    sampled on every *served* frame, the audit stream a deployment gets
    from periodically double-checking edge results against the cloud
    model.  Sampling must cover local serves too: offloaded frames are
    exactly the ones the discriminator already flagged difficult, so
    their miss rates are selection-biased high for every camera alike and
    carry no drift signal.  A camera whose EWMA miss rate runs above the
    fleet ``reference`` raises its upload target by ``quality_gain`` per
    unit of excess miss rate (and lowers it when its scene is easier),
    clipped to ``target_bounds``.

    ``small_detections`` must describe the records the camera serves (a
    degraded camera brings its own); ``reset()`` clears all per-camera
    state, so one instance is reusable across runs and across same-dataset
    cameras.
    """

    name = "adaptive-quota"

    def __init__(
        self,
        discriminator: "DifficultCaseDiscriminator",
        small_detections: "DetectionBatch | list[Detections]",
        target_ratio: float,
        *,
        gain: float = 0.05,
        ema_halflife: int = 20,
        area_bounds: tuple[float, float] = (0.0, 0.8),
        feedback: np.ndarray | None = None,
        reference: float | None = None,
        quality_gain: float = 0.5,
        target_bounds: tuple[float, float] = (0.02, 0.98),
    ) -> None:
        if not 0.0 < target_ratio < 1.0:
            raise ConfigurationError(f"target_ratio must be in (0, 1), got {target_ratio}")
        lo, hi = target_bounds
        if not 0.0 < lo < hi < 1.0:
            raise ConfigurationError(f"target_bounds must satisfy 0 < lo < hi < 1, got {target_bounds}")
        if quality_gain < 0.0:
            raise ConfigurationError(f"quality_gain must be >= 0, got {quality_gain}")
        self._discriminator = discriminator
        self._small = DetectionBatch.coerce(small_detections)
        self.target_ratio = target_ratio
        self.quality_gain = quality_gain
        self.target_bounds = target_bounds
        self._gain = gain
        self._ema_halflife = ema_halflife
        self._area_bounds = area_bounds
        self._alpha = 1.0 - 0.5 ** (1.0 / ema_halflife)
        self._feedback: np.ndarray | None = None
        self._reference = 0.0
        if feedback is not None:
            self._feedback = np.asarray(feedback, dtype=np.float64).reshape(-1)
            if self._feedback.shape[0] != len(self._small):
                raise ConfigurationError(
                    f"feedback has {self._feedback.shape[0]} entries for "
                    f"{len(self._small)} records"
                )
            self._reference = float(self._feedback.mean()) if reference is None else float(reference)
        elif reference is not None:
            raise ConfigurationError("reference without feedback has nothing to compare against")
        self._controllers: dict[int, BudgetController] = {}
        self._miss_ema: dict[int, float] = {}

    def reset(self) -> None:
        """Forget every camera's controller state (called per run)."""
        self._controllers.clear()
        self._miss_ema.clear()

    @property
    def decisions(self) -> int:
        """Total offload decisions across every camera this run."""
        return sum(controller.decisions for controller in self._controllers.values())

    @property
    def uploads(self) -> int:
        """Total frames offloaded across every camera this run."""
        return sum(controller.uploads for controller in self._controllers.values())

    def controller_for(self, camera: CameraView) -> BudgetController:
        """This camera's live integral controller (created on first use)."""
        controller = self._controllers.get(id(camera))
        if controller is None:
            controller = BudgetController(
                self._discriminator,
                self.target_ratio,
                gain=self._gain,
                ema_halflife=self._ema_halflife,
                area_bounds=self._area_bounds,
            )
            self._controllers[id(camera)] = controller
        return controller

    def decide(self, camera: CameraView, record_index: int) -> bool:
        return self.controller_for(camera).decide(self._small[record_index])

    def observe(self, camera: CameraView, event: FrameEvent) -> None:
        if self._feedback is None or self.quality_gain == 0.0:
            return
        if event.kind != "served":
            return
        miss = float(self._feedback[event.record_index])
        key = id(camera)
        previous = self._miss_ema.get(key)
        ema = miss if previous is None else (1.0 - self._alpha) * previous + self._alpha * miss
        self._miss_ema[key] = ema
        lo, hi = self.target_bounds
        target = min(hi, max(lo, self.target_ratio + self.quality_gain * (ema - self._reference)))
        self.controller_for(camera).target_ratio = target
