"""The unified serving-scheme pipeline.

Every way this repository serves detections over an edge-cloud deployment is
one composition of the same four pipeline stages — edge compute, uplink
transfer, cloud compute, downlink transfer — differing only in *which frames
escalate to the cloud*.  This module makes that structure explicit:

* :class:`OffloadPolicy` — the per-frame escalation decision as a structural
  protocol.  The difficult-case discriminator (the paper's contribution),
  the Sec. VI.E baselines (random / blur / top-1 confidence) and the
  degenerate always/never decisions (cloud-only / edge-only) are all
  interchangeable instances.
* :class:`ServingScheme` — a named pipeline shape (does the frame pass the
  edge accelerator? does the discriminator run there?) plus a policy.  The
  paper's three schemes are :func:`edge_only_scheme`,
  :func:`cloud_only_scheme` and :func:`collaborative_scheme`.
* Two engines over the same schemes: :func:`run_cost` reproduces the static
  Table XI accounting (one latency per frame, no contention) and
  :func:`simulate_stream` the discrete-event queueing simulation
  (:mod:`repro.runtime.events`).  Both are bit-for-bit identical to the
  per-scheme code they replaced (``tests/test_serving_equivalence.py``).
* :func:`simulate_fleet` — the workload the per-scheme code could not
  express: N camera streams, each with its own edge accelerator, contending
  for one shared uplink and one shared cloud GPU on a single event loop.

One modelling note, inherited from the pre-refactor implementations: in the
*static* accounting the edge-only scheme pays the bare small-model latency
(Table XI's definition), while the *streaming* engine always fuses the
discriminator into the edge service time whenever the edge stage runs — an
online deployment ships one edge binary and the discriminator's cost does
not depend on whether its verdict is used.  :meth:`ServingScheme.edge_latency`
takes ``online`` to select between the two readings.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.datasets import Dataset, ImageRecord
from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.detection.types import Detections
from repro.errors import ConfigurationError, RuntimeModelError
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.runtime.codec import JpegCodec, detections_payload_bytes
from repro.runtime.control import CameraView, FleetController, FrameEvent, OffloadController
from repro.runtime.devices import ComputeDevice
from repro.runtime.events import EventLoop, FifoResource
from repro.runtime.network import NetworkLink, OutageSchedule, RateSchedule, UnreliableLink
from repro.runtime.trace import FrameTrace, FrameTraceBuilder

__all__ = [
    "DISCRIMINATOR_FLOPS",
    "RESULT_BOXES",
    "AdmissionPolicy",
    "AlwaysOffload",
    "CameraSpec",
    "DeadlineAware",
    "Deployment",
    "DropNewest",
    "DropOldest",
    "EscalationPolicy",
    "EscalationQueue",
    "FleetReport",
    "FleetSpec",
    "NeverOffload",
    "OffloadPolicy",
    "RunCost",
    "ServingScheme",
    "StreamConfig",
    "StreamReport",
    "StreamSpec",
    "cloud_only_scheme",
    "cloud_round_trip_time",
    "collaborative_scheme",
    "edge_compute_time",
    "edge_only_scheme",
    "paper_schemes",
    "run_cost",
    "serve_fleet",
    "serve_stream",
    "simulate_fleet",
    "simulate_stream",
]

#: FLOPs of the threshold-based difficult-case discriminator.  It compares a
#: few dozen scores against thresholds — negligible next to any CNN, but
#: accounted for honesty.
DISCRIMINATOR_FLOPS = 2.0e4

#: Detection boxes assumed per returned result payload.
RESULT_BOXES = 8


# --------------------------------------------------------------------- #
# deployment description + per-run cost container
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Deployment:
    """Hardware/network description of one deployment.

    ``cloud_outages`` schedules *cloud-side* down windows — the GPU service
    itself (maintenance, preemption), distinct from link outages, which live
    on an :class:`UnreliableLink`.  A frame whose cloud inference hits a
    down window fails through the same :class:`EscalationPolicy` machinery
    as an uplink failure; ``None`` (the default) is the always-up cloud and
    keeps the exact pre-outage code path.
    """

    edge: ComputeDevice
    cloud: ComputeDevice
    link: NetworkLink
    codec: JpegCodec = field(default_factory=JpegCodec)
    small_model_flops: float = 6.3e9
    big_model_flops: float = 62.7e9
    cloud_outages: OutageSchedule | None = None

    def __post_init__(self) -> None:
        if self.small_model_flops <= 0 or self.big_model_flops <= 0:
            raise RuntimeModelError("model FLOPs must be positive")


@dataclass(frozen=True)
class RunCost:
    """Aggregate cost of serving one split under one scheme."""

    latency: LatencySummary
    uploaded_images: int
    total_images: int
    uplink_bytes: int
    downlink_bytes: int

    @property
    def upload_ratio(self) -> float:
        """Fraction of images sent to the cloud."""
        if self.total_images == 0:
            return 0.0
        return self.uploaded_images / self.total_images

    def bandwidth_saving_over(self, other: "RunCost") -> float:
        """Fractional uplink bytes saved relative to ``other``.

        Undefined when ``other`` uploaded zero bytes — there is no saving
        "over" a free baseline (and claiming ``0.0`` would paint a run that
        uploaded plenty as break-even) — so the degenerate case returns
        ``nan``, which propagates instead of masquerading as a result.
        """
        if other.uplink_bytes == 0:
            return float("nan")
        return 1.0 - self.uplink_bytes / other.uplink_bytes


# --------------------------------------------------------------------- #
# per-frame stage arithmetic (the once-triplicated core)
# --------------------------------------------------------------------- #
def edge_compute_time(deployment: Deployment, *, discriminate: bool) -> float:
    """Edge-stage service time: the small model, plus the discriminator."""
    latency = deployment.edge.inference_latency(deployment.small_model_flops)
    if discriminate:
        latency += deployment.edge.inference_latency(DISCRIMINATOR_FLOPS)
    return latency


def cloud_round_trip_time(
    deployment: Deployment,
    record: ImageRecord,
    rng: np.random.Generator | None = None,
    *,
    result_boxes: int = RESULT_BOXES,
) -> float:
    """Upload one frame, run the big model, return the results.

    ``rng`` (when given) jitters both transfers — the upload first, then the
    download, so the draw order is stable across engines.  Without an RNG
    the round trip is the deterministic jitter-free figure
    (:meth:`NetworkLink.expected_transfer_time`) — what the streaming engine
    charges per stage.
    """
    dep = deployment
    compute = dep.cloud.inference_latency(dep.big_model_flops)
    if rng is None:
        return (
            dep.link.expected_transfer_time(dep.codec.encoded_bytes(record))
            + compute
            + dep.link.expected_transfer_time(detections_payload_bytes(result_boxes))
        )
    return (
        dep.link.transfer_time(dep.codec.encoded_bytes(record), rng)
        + compute
        + dep.link.transfer_time(detections_payload_bytes(result_boxes), rng)
    )


# --------------------------------------------------------------------- #
# the offload decision
# --------------------------------------------------------------------- #
@runtime_checkable
class OffloadPolicy(Protocol):
    """Decides which frames of a split escalate from the edge to the cloud.

    Structural: anything exposing ``name`` and ``select`` qualifies — the
    baseline :class:`~repro.baselines.policy.UploadPolicy` subclasses, the
    :class:`~repro.core.discriminator.DiscriminatorPolicy` adapter, and the
    degenerate :class:`NeverOffload`/:class:`AlwaysOffload` below.
    ``select`` returns a boolean mask aligned with ``dataset.records``;
    policies that need the small model's preliminary detections receive them
    via ``small_detections`` (``None`` when the caller has none to offer).
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol signature
        ...

    def select(
        self, dataset: Dataset, small_detections: DetectionBatch | list[Detections] | None
    ) -> np.ndarray:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class NeverOffload:
    """Edge-only decision: no frame ever crosses the network."""

    name: str = "never"

    def select(self, dataset: Dataset, small_detections: DetectionBatch | list[Detections] | None = None) -> np.ndarray:
        return np.zeros(len(dataset), dtype=bool)


@dataclass(frozen=True)
class AlwaysOffload:
    """Cloud-only decision: every frame crosses the network."""

    name: str = "always"

    def select(self, dataset: Dataset, small_detections: DetectionBatch | list[Detections] | None = None) -> np.ndarray:
        return np.ones(len(dataset), dtype=bool)


# --------------------------------------------------------------------- #
# camera-buffer admission control
# --------------------------------------------------------------------- #
@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides what a full (or stale) camera buffer sheds.

    Called once per arriving frame *before* the frame enters the pipeline.
    ``admit`` may first shed already-queued frames through the camera's
    :class:`~repro.runtime.control.CameraView` surface —
    :meth:`~repro.runtime.control.CameraView.shed_oldest`,
    :meth:`~repro.runtime.control.CameraView.shed_expired` and
    :meth:`~repro.runtime.control.CameraView.shed_frames` — then returns
    whether the arriving frame is admitted.  Shed frames are logged as
    drops at the *shed* time (they sat in the buffer until then), while a
    refused arrival is logged at its arrival time.

    Structural: anything exposing ``name`` and ``admit`` qualifies.  A
    policy may additionally define ``observe(camera, event)`` — discovered
    structurally, no protocol change needed — and the engines will feed it
    one :class:`~repro.runtime.control.FrameEvent` per finished frame
    (:class:`~repro.runtime.control.EstimatedDeadlineAware` learns its
    stage-time estimates this way).  Policies without the hook pay nothing:
    events are only built when some observer wants them.  Stateful policies
    should also define ``reset()``; the engines call it at the start of
    every run so an instance can be reused without leaking state.
    """

    @property
    def name(self) -> str:  # pragma: no cover - protocol signature
        ...

    def admit(self, camera: CameraView, arrival: float) -> bool:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class DropNewest:
    """Refuse the arriving frame when the buffer is full (the default).

    Exactly the historical camera-buffer behaviour: queued frames are never
    touched, so under saturation the buffer holds ever-staler frames and
    every served result trails the stream — the pathology the alternatives
    below exist to measure against.
    """

    name: str = "drop-newest"

    def admit(self, camera: CameraView, arrival: float) -> bool:
        return camera.buffer_has_room()


@dataclass(frozen=True)
class DropOldest:
    """Shed the oldest queued frame to make room for the arriving one.

    Trades completeness for freshness: the camera always buffers its most
    recent frames, so served results track the live stream even when the
    pipeline cannot keep up.
    """

    name: str = "drop-oldest"

    def admit(self, camera: CameraView, arrival: float) -> bool:
        if camera.buffer_has_room():
            return True
        camera.shed_oldest()
        return camera.buffer_has_room()


@dataclass(frozen=True)
class DeadlineAware:
    """Shed queued frames that can no longer meet a freshness deadline.

    A queued frame whose *earliest possible* completion — immediate service,
    no queueing ahead of it — already lands past ``arrival + freshness_s``
    will be served stale whatever happens next; spending pipeline time on it
    only delays frames that could still be fresh.  Every arrival sheds all
    such provably-doomed frames from this camera's buffer, then admits the
    newcomer if the buffer has room (a full buffer of still-viable frames
    refuses the arrival, as :class:`DropNewest` would).
    """

    freshness_s: float = 2.0
    name: str = "deadline-aware"

    def __post_init__(self) -> None:
        if self.freshness_s <= 0.0:
            raise RuntimeModelError(f"freshness_s must be positive, got {self.freshness_s}")

    def admit(self, camera: CameraView, arrival: float) -> bool:
        camera.shed_expired(self.freshness_s)
        return camera.buffer_has_room()


# --------------------------------------------------------------------- #
# escalation under failure (durable queue + retry/backoff)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EscalationPolicy:
    """What a camera does when a difficult case fails to reach the cloud.

    Three stock behaviours, ordered by resilience:

    * :meth:`no_retry` — the naive implementation: a failed escalation loses
      the frame outright, edge verdict and all.
    * :meth:`drop_on_failure` — graceful degradation (AppealNet's reading of
      an unavailable "appeal" path): the edge verdict serves immediately,
      the escalation itself is abandoned.
    * :meth:`durable_queue` — the edge verdict serves immediately *and* the
      case is spooled into a bounded :class:`EscalationQueue`, drained FIFO
      with exponential backoff + jitter when connectivity returns; the late
      cloud verdict is reconciled by the rolling-quality evaluation.

    On a scheme with no edge stage (cloud-only) there is no edge verdict to
    fall back on, so ``fallback`` is moot: a failed frame is dropped, and
    only a durable queue can still recover it.
    """

    name: str = "drop-on-failure"
    #: Serve the frame's edge verdict at the failure instant (edge-compute
    #: schemes only); otherwise the frame is dropped.
    fallback: bool = True
    #: Spool capacity; 0 disables the durable queue entirely.
    capacity: int = 0
    #: Retry attempts per spooled case before it is abandoned.
    max_retries: int = 4
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    #: Relative backoff jitter: each delay is scaled by ``1 ± jitter``.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {self.capacity}")
        if self.max_retries < 1:
            raise ConfigurationError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.base_backoff_s <= 0.0 or self.backoff_factor < 1.0:
            raise ConfigurationError("base_backoff_s must be > 0 and backoff_factor >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def durable(self) -> bool:
        """Whether failed escalations are spooled for retry."""
        return self.capacity > 0

    @classmethod
    def no_retry(cls) -> "EscalationPolicy":
        """A failed escalation loses the frame (no fallback, no spool)."""
        return cls(name="no-retry", fallback=False)

    @classmethod
    def drop_on_failure(cls) -> "EscalationPolicy":
        """Edge verdict stands in; the escalation is abandoned (the default)."""
        return cls(name="drop-on-failure")

    @classmethod
    def durable_queue(
        cls,
        capacity: int = 64,
        *,
        max_retries: int = 4,
        base_backoff_s: float = 0.5,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 30.0,
        jitter: float = 0.1,
    ) -> "EscalationPolicy":
        """Edge verdict stands in *and* the case retries from a bounded spool."""
        if capacity < 1:
            raise ConfigurationError(f"a durable queue needs capacity >= 1, got {capacity}")
        return cls(
            name="durable-queue",
            capacity=capacity,
            max_retries=max_retries,
            base_backoff_s=base_backoff_s,
            backoff_factor=backoff_factor,
            max_backoff_s=max_backoff_s,
            jitter=jitter,
        )


@dataclass
class _Escalation:
    """One spooled difficult case awaiting its deferred cloud verdict."""

    record_index: int
    arrival: float
    #: Position in the camera's frame log (``None`` when no log is kept).
    log_position: int | None
    #: The frame already served its edge verdict at the failure instant; the
    #: recovered cloud verdict is an upgrade, not a first serve.
    served_by_fallback: bool
    attempts: int = 0


class EscalationQueue:
    """Bounded FIFO spool of escalations that failed to reach the cloud.

    One per camera (created only when its uplink can actually fail and the
    policy is durable).  Entries drain head-first: one retry in flight at a
    time, re-acquiring the *shared* uplink so retries contend with live
    traffic.  Consecutive uplink failures — live or retry — grow the delay
    before the next retry exponentially (with jitter, so a fleet's cameras
    do not retry in lockstep); any retry success resets the backoff and
    drains the next entry immediately.  A case that exhausts its retry cap,
    or arrives at a full spool, is abandoned and counted in
    ``escalations_dropped``.
    """

    def __init__(self, camera: "_CameraStream", policy: EscalationPolicy, rng: np.random.Generator) -> None:
        self.camera = camera
        self.policy = policy
        self.rng = rng
        self._entries: deque[_Escalation] = deque()
        self._draining = False
        self._failures = 0  # consecutive uplink failures since the last success

    @property
    def depth(self) -> int:
        """Cases currently spooled."""
        return len(self._entries)

    def note_failure(self) -> None:
        """Record a live-traffic uplink failure (feeds the backoff)."""
        self._failures += 1

    def reset(self) -> None:
        """Abandon every spooled case and clear the backoff state.

        The engines build a fresh queue per run, so they never need this;
        it exists for the reset()/reuse contract every stateful serving
        participant (admission policies, offload/fleet controllers, this
        queue) shares: after ``reset()`` the instance behaves as freshly
        constructed.  A retry already scheduled on the loop finds an empty
        spool and stops.
        """
        self._entries.clear()
        self._draining = False
        self._failures = 0

    def offer(
        self, record_index: int, arrival: float, log_position: int | None, *, served_by_fallback: bool
    ) -> bool:
        """Spool one failed escalation; ``False`` when the spool is full."""
        if len(self._entries) >= self.policy.capacity:
            return False
        self._entries.append(_Escalation(record_index, arrival, log_position, served_by_fallback))
        if not self._draining:
            self._draining = True
            self.camera.loop.schedule(self._backoff(), self._retry)
        return True

    def _backoff(self) -> float:
        policy = self.policy
        exponent = max(0, self._failures - 1)
        delay = min(policy.max_backoff_s, policy.base_backoff_s * policy.backoff_factor**exponent)
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * float(self.rng.uniform(-1.0, 1.0))
        return delay

    def _retry(self) -> None:
        if not self._entries:
            self._draining = False
            return
        camera = self.camera
        entry = self._entries[0]
        estimate, service_fn = camera.uplink_job(entry.record_index)
        camera.uplink.acquire(estimate, self._on_success, self._on_failure, service_fn=service_fn)

    def _on_success(self, _now: float) -> None:
        entry = self._entries.popleft()
        self._failures = 0
        camera = self.camera
        camera.uploads += 1
        on_cloud_fail = None
        if camera.cloud.can_fail:

            def on_cloud_fail(_t: float, entry: _Escalation = entry) -> None:
                self._on_cloud_retry_failure(entry)

        camera.cloud.acquire(camera.cloud_service, lambda _t: camera._recover(entry), on_cloud_fail)
        self._retry()  # link evidently up: drain the next case immediately

    def _on_cloud_retry_failure(self, entry: _Escalation) -> None:
        """A retried case crossed the uplink but hit a cloud-side outage.

        The case re-spools at the tail (its upload is spent; the next
        attempt pays a fresh one), feeding the same backoff and retry-cap
        accounting as an uplink retry failure.
        """
        camera = self.camera
        camera.escalations_failed += 1
        self._failures += 1
        entry.attempts += 1
        if entry.attempts >= self.policy.max_retries or len(self._entries) >= self.policy.capacity:
            camera.escalations_dropped += 1
        else:
            self._entries.append(entry)
        if self._entries and not self._draining:
            self._draining = True
            camera.loop.schedule(self._backoff(), self._retry)

    def _on_failure(self, _now: float) -> None:
        camera = self.camera
        camera.escalations_failed += 1
        self._failures += 1
        entry = self._entries[0]
        entry.attempts += 1
        if entry.attempts >= self.policy.max_retries:
            self._entries.popleft()
            camera.escalations_dropped += 1
        if self._entries:
            camera.loop.schedule(self._backoff(), self._retry)
        else:
            self._draining = False


# --------------------------------------------------------------------- #
# serving schemes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServingScheme:
    """One pipeline shape plus its per-frame escalation decision.

    Attributes
    ----------
    name:
        Identifier used in reports (``"edge"``/``"cloud"``/``"collaborative"``
        for the paper's schemes; policy labels for fleet comparisons).
    edge_compute:
        Frames pass the edge accelerator (false only for cloud-only).
    edge_discriminates:
        The discriminator's cost is charged at the edge in the *static*
        accounting.  The streaming engine always fuses it into the edge
        stage when ``edge_compute`` (see the module docstring).
    policy:
        The escalation decision.  ``None`` means the caller must supply an
        explicit mask per run (the pre-refactor collaborative contract).
    """

    name: str
    edge_compute: bool
    edge_discriminates: bool
    policy: OffloadPolicy | None = None

    def edge_latency(self, deployment: Deployment, *, online: bool = False) -> float:
        """Per-frame edge service time under this scheme (0 without edge)."""
        if not self.edge_compute:
            return 0.0
        discriminate = self.edge_discriminates or online
        return edge_compute_time(deployment, discriminate=discriminate)

    def offload_mask(
        self,
        dataset: Dataset,
        small_detections: DetectionBatch | list[Detections] | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Resolve the per-frame escalation mask for one split.

        An explicit ``mask`` wins (and is validated); otherwise the scheme's
        policy decides.  A policy-less scheme with no mask is an error.
        """
        if mask is None:
            if self.policy is None:
                raise RuntimeModelError(f"{self.name} scheme needs an upload mask")
            mask = self.policy.select(dataset, small_detections)
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        if mask.shape[0] != len(dataset):
            raise RuntimeModelError(f"upload mask has {mask.shape[0]} entries for {len(dataset)} images")
        return mask


def edge_only_scheme() -> ServingScheme:
    """Every frame served by the small model at the edge."""
    return ServingScheme("edge", edge_compute=True, edge_discriminates=False, policy=NeverOffload())


def cloud_only_scheme() -> ServingScheme:
    """Every frame uploaded and served by the big model."""
    return ServingScheme("cloud", edge_compute=False, edge_discriminates=False, policy=AlwaysOffload())


def collaborative_scheme(policy: OffloadPolicy | None = None, *, name: str = "collaborative") -> ServingScheme:
    """Small model plus discriminator at the edge; ``policy`` escalates.

    With ``policy=None`` the caller supplies an explicit upload mask per run
    (e.g. a :class:`~repro.core.system.SystemRun`'s ``uploaded``).
    """
    return ServingScheme(name, edge_compute=True, edge_discriminates=True, policy=policy)


def paper_schemes(policy: OffloadPolicy | None = None) -> dict[str, ServingScheme]:
    """The paper's three serving schemes, keyed by report name."""
    return {
        "edge": edge_only_scheme(),
        "cloud": cloud_only_scheme(),
        "collaborative": collaborative_scheme(policy),
    }


# --------------------------------------------------------------------- #
# static engine (Table XI accounting)
# --------------------------------------------------------------------- #
def run_cost(
    scheme: ServingScheme,
    deployment: Deployment,
    dataset: Dataset,
    *,
    mask: np.ndarray | None = None,
    small_detections: DetectionBatch | list[Detections] | None = None,
    seed: int = DEFAULT_SEED,
) -> RunCost:
    """Serve one split under ``scheme`` with per-frame latency accounting.

    No contention is modelled: each frame pays its stage times in isolation
    (the Table XI protocol).  Jitter draws are scoped per image, so totals
    are reproducible and independent of the serving order.
    """
    dep = deployment
    mask = scheme.offload_mask(dataset, small_detections, mask)
    edge_s = scheme.edge_latency(dep)
    latencies: list[float] = []
    uplink = 0
    uploads = 0
    for record, send in zip(dataset.records, mask):
        latency = edge_s
        if send:
            rng = generator_for(seed, "net", record.image_id)
            trip = cloud_round_trip_time(dep, record, rng)
            latency = latency + trip if scheme.edge_compute else trip
            uplink += dep.codec.encoded_bytes(record)
            uploads += 1
        latencies.append(latency)
    return RunCost(
        latency=summarize_latencies(latencies),
        uploaded_images=uploads,
        total_images=len(dataset),
        uplink_bytes=uplink,
        downlink_bytes=uploads * detections_payload_bytes(RESULT_BOXES),
    )


# --------------------------------------------------------------------- #
# streaming engine (event-driven queueing)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamConfig:
    """Workload description for one stream (or one fleet camera).

    Attributes
    ----------
    fps:
        Mean frame arrival rate (per camera).
    poisson:
        Poisson arrivals when true; exactly periodic otherwise.
    duration_s:
        Stream length in simulated seconds.
    max_edge_queue:
        Camera buffer bound; an arriving frame is dropped when the camera's
        own edge queue is this deep.  For schemes with no edge stage the
        bound applies to the camera's frames in flight toward the uplink
        (waiting or transmitting, at most ``max_edge_queue + 1``) — per
        camera, even when the uplink is fleet-shared.
    """

    fps: float = 10.0
    poisson: bool = True
    duration_s: float = 60.0
    max_edge_queue: int = 30

    def __post_init__(self) -> None:
        if self.fps <= 0.0 or self.duration_s <= 0.0:
            raise RuntimeModelError("fps and duration_s must be positive")
        if self.max_edge_queue < 1:
            raise RuntimeModelError("max_edge_queue must be >= 1")


def _values_equal(a: object, b: object) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and bool(np.array_equal(a, b))
    return a == b


def _batches_equal(a: DetectionBatch | None, b: DetectionBatch | None) -> bool:
    if a is None or b is None:
        return a is b
    return (
        a.image_ids == b.image_ids
        and a.detector == b.detector
        and np.array_equal(a.boxes, b.boxes)
        and np.array_equal(a.scores, b.scores)
        and np.array_equal(a.labels, b.labels)
        and np.array_equal(a.offsets, b.offsets)
    )


@dataclass(frozen=True, eq=False)
class StreamReport:
    """Outcome of one streaming run.

    ``served`` (present when the run was given per-record detections) is the
    stream's served output in completion order, accumulated frame by frame
    through a :class:`DetectionBatchBuilder` — no per-frame container
    staging.  ``trace`` (same condition) is the columnar
    :class:`~repro.runtime.trace.FrameTrace` logging every *offered* frame
    in event order — arrival time, result-ready time (arrival again for
    drops), dataset record index, served flag, served-batch segment, and the
    deferred cloud verdict a durable escalation queue recovered (``-1`` /
    ``-inf`` when there is none) — which is exactly what
    :func:`repro.metrics.rolling.rolling_quality` needs to score the stream
    online, drops, staleness and late verdicts included.

    The historical per-column views (``frame_arrivals``/``frame_times``/
    ``frame_records``/``frame_served``/``frame_segments``/
    ``frame_verdict_times``/``frame_verdict_segments``) remain available as
    read-only properties over the trace.
    """

    scheme: str
    latency: LatencySummary
    frames_offered: int
    frames_served: int
    frames_dropped: int
    frames_uploaded: int
    edge_utilization: float
    uplink_utilization: float
    cloud_utilization: float
    #: Frames dropped *from the queue* by the admission policy (a subset of
    #: ``frames_dropped``, which also counts frames refused at arrival).
    frames_shed: int = 0
    #: Uplink transfers that failed (initial attempts and retries).
    escalations_failed: int = 0
    #: Escalations permanently abandoned: non-durable policy, full spool,
    #: or retry cap exhausted.
    escalations_dropped: int = 0
    #: Spooled escalations whose cloud verdict eventually landed.
    escalations_recovered: int = 0
    served: DetectionBatch | None = field(default=None, repr=False)
    trace: FrameTrace | None = field(default=None, repr=False)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames dropped at the buffer."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def upload_ratio(self) -> float:
        """Fraction of served frames that crossed the uplink."""
        if self.frames_served == 0:
            return 0.0
        return self.frames_uploaded / self.frames_served

    # ------------------------------------------------------------------ #
    # per-column views over the trace (the pre-columnar report fields)
    # ------------------------------------------------------------------ #
    @property
    def frame_arrivals(self) -> np.ndarray | None:
        """Arrival instant of every offered frame (``trace.arrivals``)."""
        return None if self.trace is None else self.trace.arrivals

    @property
    def frame_times(self) -> np.ndarray | None:
        """Result-ready instant per offered frame (``trace.times``)."""
        return None if self.trace is None else self.trace.times

    @property
    def frame_records(self) -> np.ndarray | None:
        """Dataset record index per offered frame (``trace.records``)."""
        return None if self.trace is None else self.trace.records

    @property
    def frame_served(self) -> np.ndarray | None:
        """Served flag per offered frame (``trace.served``)."""
        return None if self.trace is None else self.trace.served

    @property
    def frame_segments(self) -> np.ndarray | None:
        """Served-batch segment per offered frame (``trace.segments``)."""
        return None if self.trace is None else self.trace.segments

    @property
    def frame_verdict_times(self) -> np.ndarray | None:
        """Deferred-verdict landing time per frame (``trace.verdict_times``)."""
        return None if self.trace is None else self.trace.verdict_times

    @property
    def frame_verdict_segments(self) -> np.ndarray | None:
        """Deferred-verdict segment per frame (``trace.verdict_segments``)."""
        return None if self.trace is None else self.trace.verdict_segments

    def latency_percentiles(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)) -> dict[float, float]:
        """Per-frame latency percentiles over this stream's served frames.

        Read from the columnar trace, so the run must have been simulated
        with ``detections=`` (the condition under which a trace is kept).
        """
        if self.trace is None:
            raise ConfigurationError(
                "stream report carries no frame trace; simulate with detections= to record one"
            )
        return self.trace.latency_percentiles(percentiles)

    def __eq__(self, other: object) -> bool:
        """Field-wise value equality, array-aware.

        The dataclass-generated ``__eq__`` would compare the trace's array
        columns elementwise and raise on multi-element logs; reports compare
        as equal iff every field (trace columns included) matches.
        """
        if not isinstance(other, StreamReport):
            return NotImplemented
        for name in (
            "scheme",
            "latency",
            "frames_offered",
            "frames_served",
            "frames_dropped",
            "frames_uploaded",
            "frames_shed",
            "escalations_failed",
            "escalations_dropped",
            "escalations_recovered",
            "edge_utilization",
            "uplink_utilization",
            "cloud_utilization",
            "trace",
        ):
            if not _values_equal(getattr(self, name), getattr(other, name)):
                return False
        return _batches_equal(self.served, other.served)

    # defining __eq__ sets __hash__ to None; keep reports hashable (by
    # identity — the array fields make a value hash impractical)
    __hash__ = object.__hash__


@dataclass(frozen=True)
class FleetReport:
    """Outcome of one multi-camera fleet run.

    ``cameras`` holds one :class:`StreamReport` per camera (each with its
    own edge accelerator); the uplink/cloud utilizations are those of the
    *shared* resources, identical across cameras.  The fleet-level latency
    summary aggregates every served frame across cameras.
    """

    scheme: str
    cameras: tuple[StreamReport, ...]
    latency: LatencySummary
    frames_offered: int
    frames_served: int
    frames_dropped: int
    frames_uploaded: int
    edge_utilization: float
    uplink_utilization: float
    cloud_utilization: float
    frames_shed: int = 0
    escalations_failed: int = 0
    escalations_dropped: int = 0
    escalations_recovered: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames dropped fleet-wide."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def upload_ratio(self) -> float:
        """Fraction of served frames that crossed the shared uplink."""
        if self.frames_served == 0:
            return 0.0
        return self.frames_uploaded / self.frames_served

    def trace(self) -> FrameTrace:
        """The fleet-level columnar frame trace (all cameras, concatenated).

        Each camera's served-batch segments are shifted by its offset in the
        fleet-wide concatenation of served batches, so the fleet trace can
        index a fleet-level :meth:`DetectionBatch.concat` of the per-camera
        ``served`` batches directly.  Requires the run to have been
        simulated with ``detections=`` (every camera keeps a trace then).
        """
        parts: list[FrameTrace] = []
        offsets: list[int] = []
        total = 0
        for index, camera in enumerate(self.cameras):
            if camera.trace is None:
                raise ConfigurationError(
                    f"fleet camera {index} carries no frame trace; simulate with detections= to record one"
                )
            parts.append(camera.trace)
            offsets.append(total)
            total += 0 if camera.served is None else len(camera.served)
        return FrameTrace.concat(parts, segment_offsets=offsets)

    def latency_percentiles(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)) -> dict[float, float]:
        """Fleet-wide per-frame latency percentiles (from the columnar trace)."""
        return self.trace().latency_percentiles(percentiles)


def _arrival_times(config: StreamConfig, seed: int, *scope: object) -> np.ndarray:
    """Arrival instants of one stream (Poisson or periodic), seed-scoped.

    Poisson gap draws are extended until they cover the whole duration, so
    the process is never silently truncated at low ``fps * duration_s``
    (periodic gaps always cover it: the initial batch spans twice the
    duration).  The first batch matches the historical single draw, so runs
    the old sizing already covered are reproduced gap-for-gap.
    """
    rng = generator_for(seed, *scope, config.fps, config.poisson)
    size = int(config.fps * config.duration_s * 2)
    if not config.poisson:
        times = np.cumsum(np.full(size, 1.0 / config.fps))
        return times[times < config.duration_s]
    chunks = [rng.exponential(1.0 / config.fps, size=size)]
    total = float(chunks[0].sum())
    while total < config.duration_s:
        gaps = rng.exponential(1.0 / config.fps, size=max(size, 16))
        chunks.append(gaps)
        total += float(gaps.sum())
    times = np.cumsum(np.concatenate(chunks) if len(chunks) > 1 else chunks[0])
    return times[times < config.duration_s]


class _CameraStream:
    """One camera's frames flowing through a scheme's pipeline stages.

    Owns its edge accelerator; the uplink and cloud resources may be shared
    with other cameras (the fleet case).  All stage service times except the
    per-record uplink serialisation are precomputed once per run.

    Frames waiting in the camera's *entry* stage — the edge queue for
    edge-compute schemes, this camera's slice of the (possibly shared)
    uplink queue otherwise — are the admission policy's domain: the policy
    runs at every arrival and may shed them through :meth:`shed_oldest` /
    :meth:`shed_expired` before deciding on the newcomer.

    A fleet allocates one of these per camera, so the per-instance state is
    slotted and the frame log lands in a preallocated columnar
    :class:`FrameTraceBuilder` (reserved to the arrival count up front)
    instead of per-frame Python list appends.
    """

    __slots__ = (
        "scheme",
        "deployment",
        "records",
        "config",
        "mask",
        "detections",
        "loop",
        "edge",
        "uplink",
        "cloud",
        "record_for",
        "admission",
        "escalation",
        "offload",
        "observers",
        "fallback_detections",
        "edge_service",
        "cloud_service",
        "downlink_latency",
        "link_schedule",
        "link_half_rtt",
        "uplink_mean_rate",
        "result_payload",
        "_min_payload",
        "latencies",
        "served",
        "dropped",
        "shed",
        "uploads",
        "escalations_failed",
        "escalations_dropped",
        "escalations_recovered",
        "in_uplink",
        "_waiting",
        "_min_remaining_cache",
        "builder",
        "trace",
        "escalation_queue",
        "frames_offered",
    )

    def __init__(
        self,
        scheme: ServingScheme,
        deployment: Deployment,
        dataset: Dataset,
        config: StreamConfig,
        mask: np.ndarray,
        detections: DetectionBatch | None,
        *,
        loop: EventLoop,
        edge: FifoResource,
        uplink: FifoResource,
        cloud: FifoResource,
        record_for: Callable[[int], int],
        admission: AdmissionPolicy | None = None,
        escalation: EscalationPolicy | None = None,
        escalation_rng: np.random.Generator | None = None,
        fallback_detections: DetectionBatch | None = None,
        offload: OffloadController | None = None,
        link_scale: RateSchedule | None = None,
    ) -> None:
        self.scheme = scheme
        self.deployment = deployment
        self.records = dataset.records
        self.config = config
        self.mask = mask
        self.detections = detections
        self.loop = loop
        self.edge = edge
        self.uplink = uplink
        self.cloud = cloud
        self.record_for = record_for
        self.admission: AdmissionPolicy = DropNewest() if admission is None else admission
        self.escalation = EscalationPolicy.drop_on_failure() if escalation is None else escalation
        self.offload = offload
        # Completion-event observers ((camera, FrameEvent) callables); the
        # engine assembles the chain after construction.  Empty means no
        # event is ever built — the stock policies' zero-overhead path.
        self.observers: tuple[Callable[["_CameraStream", FrameEvent], None], ...] = ()
        self.fallback_detections = fallback_detections
        self.edge_service = scheme.edge_latency(deployment, online=True)
        self.cloud_service = deployment.cloud.inference_latency(deployment.big_model_flops)
        # Effective rate model for *this camera's* transfers: the shared
        # link's schedule, modulated by the camera's mobility profile.
        # ``link_schedule is None`` + ``uplink_mean_rate is None`` is the
        # plain scalar link and keeps the pre-schedule arithmetic bit for
        # bit; a constant effective rate (scaled but not time-varying) keeps
        # the fixed-cost path at the scaled rate; only a genuinely
        # time-varying rate resolves transfer durations at grant time.
        link = deployment.link
        if link_scale is None:
            effective = link.schedule if link.time_varying else None
        else:
            base = link.schedule if link.schedule is not None else RateSchedule.always(link.bandwidth_mbps)
            effective = base.scaled(link_scale)
            if effective.is_constant:
                effective = None if effective.rates_mbps[0] == link.bandwidth_mbps else effective
        self.link_half_rtt = link.rtt_s / 2.0
        self.result_payload = detections_payload_bytes(RESULT_BOXES)
        if effective is None:
            self.link_schedule = None
            self.uplink_mean_rate = None
            self.downlink_latency = link.expected_transfer_time(self.result_payload)
        elif effective.is_constant:
            self.link_schedule = None
            self.uplink_mean_rate = effective.rates_mbps[0]
            self.downlink_latency = (
                self.link_half_rtt + self.result_payload * 8 / (self.uplink_mean_rate * 1e6)
            )
        else:
            self.link_schedule = effective
            self.uplink_mean_rate = effective.mean_rate_mbps
            self.downlink_latency = (
                self.link_half_rtt + self.result_payload * 8 / (self.uplink_mean_rate * 1e6)
            )
        self._min_payload: int | None = None
        self.latencies: list[float] = []
        self.served = self.dropped = self.shed = self.uploads = 0
        self.escalations_failed = self.escalations_dropped = self.escalations_recovered = 0
        # This camera's frames inside the uplink stage (waiting or being
        # transmitted) — the admission bound for schemes with no edge stage,
        # so each camera gets its own buffer even on the shared fleet link.
        self.in_uplink = 0
        # (job handle, arrival, record index) of this camera's frames in its
        # entry stage, oldest first; entries leave on completion or shed.
        self._waiting: deque[tuple[object, float, int]] = deque()
        self._min_remaining_cache: dict[int, float] = {}
        self.builder: DetectionBatchBuilder | None = None
        self.trace: FrameTraceBuilder | None = None
        if detections is not None:
            self.builder = DetectionBatchBuilder(detector=detections.detector)
            self.trace = FrameTraceBuilder()
        if (
            (uplink.can_fail or cloud.can_fail)
            and self.escalation.fallback
            and scheme.edge_compute
            and self.builder is not None
            and self.fallback_detections is None
            and bool(mask.any())
        ):
            raise ConfigurationError(
                "an unreliable uplink or cloud with an edge-fallback escalation policy needs "
                "small_detections: the edge verdict serves when the cloud path fails"
            )
        if offload is not None:
            if not scheme.edge_compute:
                raise ConfigurationError(
                    "an offload controller decides as each edge stage finishes; "
                    f"the {scheme.name!r} scheme has no edge stage"
                )
            if self.builder is not None and self.fallback_detections is None:
                raise ConfigurationError(
                    "an offload controller serving detections needs small_detections: "
                    "frames it keeps local serve the edge verdict"
                )
        self.escalation_queue: EscalationQueue | None = None
        if (uplink.can_fail or cloud.can_fail) and self.escalation.durable:
            if escalation_rng is None:
                raise ConfigurationError("a durable escalation queue needs an RNG for backoff jitter")
            self.escalation_queue = EscalationQueue(self, self.escalation, escalation_rng)

    def schedule(self, arrivals: np.ndarray) -> None:
        """Queue every arrival of this camera onto the shared loop."""
        if self.trace is not None:
            # one upfront reservation covers the run's whole frame log
            self.trace.reserve(int(arrivals.shape[0]))
        for index, arrival in enumerate(arrivals):
            self.loop.schedule(arrival, lambda i=index, a=arrival: self._on_frame(i, a))
        self.frames_offered = int(arrivals.shape[0])

    # ------------------------------------------------------------------ #
    def _log(
        self, arrival: float, time: float, record_index: int, served: bool, segment: int | None = None
    ) -> int | None:
        """Append one frame-log entry; returns its position (``None`` without logs)."""
        if self.trace is None:
            return None
        return self.trace.append(arrival, time, record_index, served, -1 if segment is None else segment)

    def _append_segment(self, batch: DetectionBatch, record_index: int) -> int:
        lo = int(batch.offsets[record_index])
        hi = int(batch.offsets[record_index + 1])
        self.builder.append(
            batch.image_ids[record_index],
            batch.boxes[lo:hi],
            batch.scores[lo:hi],
            batch.labels[lo:hi],
        )
        return len(self.builder) - 1

    def _collect(self, record_index: int) -> int | None:
        if self.builder is None:
            return None
        return self._append_segment(self.detections, record_index)

    def _collect_local(self, record_index: int) -> int | None:
        if self.builder is None:
            return None
        # Under an offload controller the static `detections` batch is the
        # *cloud* verdict; frames kept local serve the edge verdict instead.
        batch = self.detections if self.offload is None else self.fallback_detections
        return self._append_segment(batch, record_index)

    def _collect_fallback(self, record_index: int) -> int | None:
        if self.builder is None:
            return None
        return self._append_segment(self.fallback_detections, record_index)

    def _emit(self, event: FrameEvent) -> None:
        for observe in self.observers:
            observe(self, event)

    def _downlink_time(self) -> float:
        """Result-download seconds for a cloud verdict landing *now*.

        The constant figure on a fixed-rate path; integrated from the
        current instant on a time-varying one, so a verdict completing
        inside a congestion dip pays the dip.
        """
        if self.link_schedule is None:
            return self.downlink_latency
        return self.link_half_rtt + self.link_schedule.transfer_duration(
            self.loop.now, self.result_payload
        )

    def _finish(self, start: float, record_index: int, timing: tuple[float, float] | None = None) -> None:
        self.served += 1
        latency = self.loop.now - start + self._downlink_time()
        self.latencies.append(latency)
        segment = self._collect(record_index)
        self._log(start, start + latency, record_index, True, segment)
        if timing is not None:  # only built when observers are attached
            queue_wait, entry_time = timing
            self._emit(
                FrameEvent("served", start, start + latency, record_index, True, queue_wait, entry_time)
            )

    def _finish_local(self, start: float, record_index: int) -> None:
        self.served += 1
        latency = self.loop.now - start
        self.latencies.append(latency)
        segment = self._collect_local(record_index)
        self._log(start, start + latency, record_index, True, segment)
        if self.observers:
            self._emit(
                FrameEvent(
                    "served",
                    start,
                    start + latency,
                    record_index,
                    False,
                    latency - self.edge_service,
                    self.edge_service,
                )
            )

    def uplink_service(self, record_index: int) -> float:
        """Deterministic uplink serialisation time of one record's frame.

        On a plain link this is the exact service time; on a scheduled (or
        mobility-scaled) link it is the *mean-rate estimate* — the figure
        queue-wait bounds and admission arithmetic use, while the true
        duration is resolved at grant time by :meth:`uplink_job`'s
        ``service_fn``.
        """
        dep = self.deployment
        payload = dep.codec.encoded_bytes(self.records[record_index])
        if self.uplink_mean_rate is None:
            return dep.link.expected_transfer_time(payload)
        return self.link_half_rtt + payload * 8 / (self.uplink_mean_rate * 1e6)

    def uplink_job(self, record_index: int) -> tuple[float, Callable[[float], float] | None]:
        """``(estimate, service_fn)`` for one record's uplink transfer.

        ``service_fn`` is ``None`` on a fixed-rate path (the estimate *is*
        the duration); on a time-varying one it integrates the camera's
        effective schedule from the grant instant.
        """
        estimate = self.uplink_service(record_index)
        schedule = self.link_schedule
        if schedule is None:
            return estimate, None
        payload = self.deployment.codec.encoded_bytes(self.records[record_index])
        half_rtt = self.link_half_rtt

        def service_fn(grant: float) -> float:
            return half_rtt + schedule.transfer_duration(grant, payload)

        return estimate, service_fn

    def _cloud_path(self, record: ImageRecord, start: float, record_index: int) -> None:
        self.uploads += 1
        self.in_uplink += 1
        entry_stage = not self.scheme.edge_compute
        uplink_time, uplink_fn = self.uplink_job(record_index)
        observing = bool(self.observers)
        # Entry-stage timing for the completion event: for edge schemes the
        # edge stage just finished, so it is known here; for no-edge schemes
        # the uplink *is* the entry stage and after_uplink measures it.
        entry_timing = (
            (self.loop.now - start - self.edge_service, self.edge_service)
            if observing and not entry_stage
            else None
        )
        # On a time-varying entry stage the observed entry time is the
        # *resolved* duration, not the estimate: capture it at grant.
        measured: list[float] | None = None
        if uplink_fn is not None and observing and entry_stage:
            inner_fn = uplink_fn
            measured = [uplink_time]

            def uplink_fn(grant: float, _inner=inner_fn, _cell=measured) -> float:
                _cell[0] = _inner(grant)
                return _cell[0]

        def after_uplink(_t: float) -> None:
            timing = entry_timing
            if entry_stage:
                self._leave_waiting()
                if observing:
                    served_uplink = uplink_time if measured is None else measured[0]
                    timing = (_t - start - served_uplink, served_uplink)
            self.in_uplink -= 1
            on_cloud_fail = None
            if self.cloud.can_fail:

                def on_cloud_fail(_t2: float) -> None:
                    self._on_cloud_failure(start, record_index)

            self.cloud.acquire(
                self.cloud_service,
                lambda _t2: self._finish(start, record_index, timing),
                on_cloud_fail,
            )

        def on_fail(_t: float) -> None:
            if entry_stage:
                self._leave_waiting()
            self.in_uplink -= 1
            self._on_uplink_failure(start, record_index)

        handle = self.uplink.acquire(uplink_time, after_uplink, on_fail, service_fn=uplink_fn)
        if entry_stage:
            self._waiting.append((handle, start, record_index))

    # ------------------------------------------------------------------ #
    # failure handling: fallback serve, spool, recovery
    # ------------------------------------------------------------------ #
    def _on_uplink_failure(self, start: float, record_index: int) -> None:
        """The frame's uplink transfer failed (outage or loss)."""
        self.uploads -= 1  # the frame never crossed the link
        self._on_remote_failure(start, record_index)

    def _on_cloud_failure(self, start: float, record_index: int) -> None:
        """The frame's cloud inference hit a cloud-side outage.

        The upload itself completed — ``uploads`` (and its bytes) stand —
        but the verdict is lost exactly like an uplink failure: fallback
        serve, spool, or drop per the :class:`EscalationPolicy`; a spooled
        retry re-enters at the uplink and contends like live traffic.
        """
        self._on_remote_failure(start, record_index)

    def _on_remote_failure(self, start: float, record_index: int) -> None:
        self.escalations_failed += 1
        if self.escalation_queue is not None:
            self.escalation_queue.note_failure()
        now = self.loop.now
        if self.escalation.fallback and self.scheme.edge_compute:
            # Graceful degradation: the edge verdict (already computed by the
            # edge stage) serves at the failure instant.
            self.served += 1
            self.latencies.append(now - start)
            segment = self._collect_fallback(record_index)
            position = self._log(start, now, record_index, True, segment)
            spooled = self.escalation_queue is not None and self.escalation_queue.offer(
                record_index, start, position, served_by_fallback=True
            )
        else:
            # No edge verdict to stand in (cloud-only, or a no-retry policy):
            # the frame is lost unless a durable queue later recovers it.
            self.dropped += 1
            position = self._log(start, now, record_index, False)
            spooled = self.escalation_queue is not None and self.escalation_queue.offer(
                record_index, start, position, served_by_fallback=False
            )
        if not spooled:
            self.escalations_dropped += 1
        if self.observers:
            self._emit(FrameEvent("failed", start, now, record_index, True))

    def _recover(self, entry: _Escalation) -> None:
        """A spooled escalation's cloud verdict finally landed."""
        verdict_time = self.loop.now + self._downlink_time()
        self.escalations_recovered += 1
        segment = self._collect(entry.record_index)
        if entry.served_by_fallback:
            # The frame already served its edge verdict; record the late
            # cloud verdict for the quality evaluation to reconcile.
            if entry.log_position is not None:
                self.trace.set_verdict(entry.log_position, verdict_time, segment)
        else:
            # The frame was logged as dropped; the late verdict un-drops it.
            self.dropped -= 1
            self.served += 1
            self.latencies.append(verdict_time - entry.arrival)
            if entry.log_position is not None:
                self.trace.mark_served(entry.log_position, verdict_time, segment)

    # ------------------------------------------------------------------ #
    # admission-policy surface (the public CameraView protocol)
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.loop.now

    def buffer_depth(self) -> int:
        """This camera's frames admitted but not yet through the entry stage."""
        return len(self._waiting)

    def uplink_depth(self) -> int:
        """Jobs waiting in the (possibly shared) uplink queue."""
        return self.uplink.queue_depth

    def queued_arrivals(self) -> tuple[float, ...]:
        """Arrival times of this camera's still-waiting frames, oldest first.

        Only frames still *waiting* in the entry stage appear — a frame
        mid-service is beyond shedding, so policies judging the queue
        should not count it.
        """
        stage = self.edge if self.scheme.edge_compute else self.uplink
        waiting = {id(handle) for handle, _ in stage.queued_waits()}
        return tuple(arrival for handle, arrival, _ in self._waiting if id(handle) in waiting)

    def shed_frames(self, doomed: Callable[[int, float], bool]) -> int:
        """Shed the waiting frames judged ``doomed(position, arrival)``.

        The predicate sees each still-waiting frame's *entry-stage queue
        position* — the number of jobs queued ahead of it in the stage it
        waits in, which on a shared uplink counts the whole fleet's queued
        transfers, credited for earlier sheds of this pass — and its arrival
        time.  Both are observable at a deployed camera (its own buffer,
        the access point's queue), so this is exactly the state an
        estimated-time policy may reason over: position x estimated service
        time bounds the frame's wait without reading any simulator
        ground-truth times.  Frames already in service are skipped.  Shed
        frames are logged as drops at the current time; returns the number
        shed.
        """
        stage = self.edge if self.scheme.edge_compute else self.uplink
        positions = {id(handle): index for index, (handle, _) in enumerate(stage.queued_waits())}
        count = 0
        index = 0
        while index < len(self._waiting):
            handle, arrival, record_index = self._waiting[index]
            position = positions.get(id(handle))
            if position is None:  # in service: beyond shedding
                index += 1
                continue
            # Earlier sheds of this pass all sat ahead (the stage is FIFO
            # and _waiting is in arrival order), so they no longer queue
            # ahead of this frame.
            if doomed(position - count, arrival):
                stage.cancel(handle)
                del self._waiting[index]
                self._drop_shed(arrival, record_index)
                count += 1
            else:
                index += 1
        return count

    def buffer_has_room(self) -> bool:
        """Whether the camera buffer can take one more frame right now.

        Edge schemes bound the camera's own edge queue.  No-edge schemes
        bound this camera's frames inside the (possibly shared) uplink
        stage; for a single camera the rule is exactly the pre-refactor
        ``uplink.queue_depth >= max_edge_queue`` (waiting = in-stage minus
        the one in transmission), and on a fleet it keeps one buffer *per
        camera* instead of one fleet-wide bound on the shared link.
        """
        if self.scheme.edge_compute:
            return self.edge.queue_depth < self.config.max_edge_queue
        return self.in_uplink < self.config.max_edge_queue + 1

    def shed_oldest(self) -> bool:
        """Shed this camera's oldest frame still *waiting* in its entry stage.

        The frame is logged as dropped at the current (shed) time — it sat
        in the buffer until now, not until its arrival.  Returns whether a
        frame was shed (the only frame in the stage may be mid-service,
        which cancellation cannot claw back).
        """
        stage = self.edge if self.scheme.edge_compute else self.uplink
        for position, (handle, arrival, record_index) in enumerate(self._waiting):
            if stage.cancel(handle) is not None:
                del self._waiting[position]
                self._drop_shed(arrival, record_index)
                return True
        return False

    def shed_expired(self, freshness_s: float) -> int:
        """Shed every waiting frame that can no longer meet the deadline.

        A frame is doomed once ``now + wait bound + minimal remaining
        pipeline time`` exceeds ``arrival + freshness_s``.  The wait bound
        sums the service times of the jobs already queued ahead in the
        entry stage (every one of which will be served first — future
        arrivals only queue behind, cancellations only shorten the wait)
        and the pipeline time uses exact stage service times with zero
        downstream queueing, so only provably-stale frames go: a shed
        shortens the wait of everything queued behind it, so the bound is
        re-credited with each cancelled job's service time before the next
        entry is judged.  Returns the number shed.
        """
        stage = self.edge if self.scheme.edge_compute else self.uplink
        wait_bounds = {id(handle): wait for handle, wait in stage.queued_waits()}
        now = self.loop.now
        count = 0
        freed = 0.0  # service time this pass removed ahead of later entries
        position = 0
        while position < len(self._waiting):
            handle, arrival, record_index = self._waiting[position]
            wait = wait_bounds.get(id(handle))
            if wait is None:  # already in service: beyond shedding
                position += 1
                continue
            wait -= freed
            if now + wait + self._min_remaining(record_index) > arrival + freshness_s:
                # the snapshot listed this job as waiting and only this pass
                # cancels, so the cancellation cannot miss; its returned
                # service time is exactly the wait freed behind it
                freed += stage.cancel(handle) or 0.0
                del self._waiting[position]
                self._drop_shed(arrival, record_index)
                count += 1
            else:
                position += 1
        return count

    def _min_remaining(self, record_index: int) -> float:
        """Bound on one queued frame's remaining pipeline time.

        Exact stage service times (the stream engine's transfers are
        jitter-free), zero queueing: the earliest this frame could possibly
        finish if it entered service right now.  On a fixed-rate path the
        figure is per-record constant and memoised; on a time-varying one
        it is re-integrated from the current instant — a congestion dip
        *raises* it — so it cannot be cached.
        """
        if self.link_schedule is None:
            cached = self._min_remaining_cache.get(record_index)
            if cached is not None:
                return cached
        remaining = 0.0
        if self.scheme.edge_compute:
            remaining += self.edge_service
        # An offload controller decides per frame at edge-finish time, so a
        # queued frame *may* cross the network; the bound stays a lower
        # bound only by charging the local-serve path (no remote leg).
        if not self.scheme.edge_compute or (self.offload is None and bool(self.mask[record_index])):
            if self.link_schedule is None:
                remaining += self.uplink_service(record_index) + self.cloud_service + self.downlink_latency
            else:
                now = self.loop.now
                schedule = self.link_schedule
                payload = self.deployment.codec.encoded_bytes(self.records[record_index])
                remaining += (
                    self.link_half_rtt
                    + schedule.transfer_duration(now, payload)
                    + self.cloud_service
                    + self.link_half_rtt
                    + schedule.transfer_duration(now, self.result_payload)
                )
                return remaining
        if self.link_schedule is None:
            self._min_remaining_cache[record_index] = remaining
        return remaining

    def min_remaining_s(self) -> float:
        """Schedule-aware floor under any admitted frame's completion time.

        ``0.0`` on a fixed-rate path — there the EWMA estimators' memory is
        already unbiased, and a zero floor keeps the pre-schedule admission
        arithmetic bit for bit.  On a time-varying link the floor charges
        the *cheapest* frame's unavoidable pipeline (integrating the
        schedule from now), so a congestion dip raises doom estimates
        before any slowed completion feeds back through the estimators.
        Edge-compute schemes floor at the local path — their frames may
        never cross the network.
        """
        schedule = self.link_schedule
        if schedule is None:
            return 0.0
        if self.scheme.edge_compute:
            return self.edge_service
        payload = self._min_payload
        if payload is None:
            codec = self.deployment.codec
            payload = min(codec.encoded_bytes(record) for record in self.records)
            self._min_payload = payload
        now = self.loop.now
        return (
            self.link_half_rtt
            + schedule.transfer_duration(now, payload)
            + self.cloud_service
            + self.link_half_rtt
            + schedule.transfer_duration(now, self.result_payload)
        )

    def _drop_shed(self, arrival: float, record_index: int) -> None:
        self.dropped += 1
        self.shed += 1
        if not self.scheme.edge_compute:
            # the frame was queued for the uplink but never transmitted
            self.in_uplink -= 1
            self.uploads -= 1
        self._log(arrival, self.loop.now, record_index, False)

    def _leave_waiting(self) -> None:
        """Forget the entry-stage job that just completed (always the
        oldest surviving entry: the stage serves this camera FIFO)."""
        if self._waiting:
            self._waiting.popleft()

    # ------------------------------------------------------------------ #
    def _on_frame(self, index: int, arrival: float) -> None:
        record_index = self.record_for(index)
        if not self.admission.admit(self, arrival):
            self.dropped += 1
            self._log(arrival, arrival, record_index, False)
            return
        start = arrival
        if not self.scheme.edge_compute:
            self._cloud_path(self.records[record_index], start, record_index)
            return
        record = self.records[record_index]
        offload = self.offload
        send = offload is None and bool(self.mask[record_index])

        def after_edge(_t: float) -> None:
            self._leave_waiting()
            # A static mask is decided up front; an offload controller is
            # consulted as the edge stage finishes — when the small model's
            # output (the discriminator's features) actually exists.
            if send or (offload is not None and offload.decide(self, record_index)):
                self._cloud_path(record, start, record_index)
            else:
                self._finish_local(start, record_index)

        handle = self.edge.acquire(self.edge_service, after_edge)
        self._waiting.append((handle, arrival, record_index))

    # ------------------------------------------------------------------ #
    def report(self, elapsed: float) -> StreamReport:
        """Summarise this camera once the loop has drained."""
        has_frames = self.builder is not None
        return StreamReport(
            scheme=self.scheme.name,
            latency=summarize_latencies(self.latencies),
            frames_offered=self.frames_offered,
            frames_served=self.served,
            frames_dropped=self.dropped,
            frames_uploaded=self.uploads,
            frames_shed=self.shed,
            escalations_failed=self.escalations_failed,
            escalations_dropped=self.escalations_dropped,
            escalations_recovered=self.escalations_recovered,
            edge_utilization=self.edge.utilization(elapsed),
            uplink_utilization=self.uplink.utilization(elapsed),
            cloud_utilization=self.cloud.utilization(elapsed),
            served=self.builder.build() if has_frames else None,
            trace=self.trace.build() if has_frames else None,
        )


def _check_stream_inputs(
    dataset: Dataset,
    detections: DetectionBatch | list[Detections] | None,
) -> DetectionBatch | None:
    if len(dataset) == 0:
        raise RuntimeModelError("cannot stream an empty dataset")
    if detections is None:
        return None
    if len(detections) != len(dataset):
        raise RuntimeModelError("detections misaligned with dataset")
    return DetectionBatch.coerce(detections)


def _uplink_faults(
    link: NetworkLink, seed: int
) -> Callable[[float, float], tuple[float, bool]] | None:
    """The uplink resource's fault hook — ``None`` for a link that cannot fail.

    An :class:`UnreliableLink` with an all-up schedule and zero loss gets no
    hook either, so it runs the exact reliable-link code path.
    """
    if not isinstance(link, UnreliableLink):
        return None
    if not link.outages.windows and link.loss_probability == 0.0:
        return None
    return link.fault_model(generator_for(seed, "uplink-faults"))


def _cloud_faults(
    deployment: Deployment,
) -> Callable[[float, float], tuple[float, bool]] | None:
    """The cloud GPU resource's fault hook — ``None`` for an always-up cloud.

    Deterministic (scheduled windows only, no loss draw), mirroring the
    zero-overhead rule of :func:`_uplink_faults`: a ``None`` or empty
    schedule gets no hook and runs the exact pre-outage code path.
    """
    outages = deployment.cloud_outages
    if outages is None or not outages.windows:
        return None

    def outcome(start: float, duration: float) -> tuple[float, bool]:
        failure = outages.failure_instant(start, duration)
        if failure is not None:
            return failure - start, False
        return duration, True

    return outcome


@dataclass(frozen=True, eq=False)
class StreamSpec:
    """Everything one streaming run serves, minus deployment/dataset/seed.

    The spec object consolidates :func:`simulate_stream`'s keyword sprawl
    into one frozen value a caller can build once and reuse across
    deployments and seeds.  :func:`serve_stream` is the front door;
    :func:`simulate_stream` survives as a thin wrapper that builds a spec,
    so both paths are the same code and stay bit-for-bit identical.

    ``mask`` and ``offload`` are mutually exclusive: a static mask decides
    the cloud escalations up front, a controller decides per frame as each
    edge stage finishes.
    """

    scheme: ServingScheme
    config: StreamConfig = field(default_factory=StreamConfig)
    mask: np.ndarray | None = None
    small_detections: DetectionBatch | list[Detections] | None = None
    detections: DetectionBatch | None = None
    admission: AdmissionPolicy | None = None
    escalation: EscalationPolicy | None = None
    offload: OffloadController | None = None


def _reset_stateful(*participants: object) -> None:
    """Call ``reset()`` once per distinct stateful run participant.

    Every engine entry point runs this over the admission policies, offload
    controllers and fleet controller it was handed, so re-running a spec
    never silently reuses stale estimator state.  Stateless participants
    (no ``reset`` attribute) cost one ``getattr`` each.
    """
    seen: set[int] = set()
    for participant in participants:
        if participant is None or id(participant) in seen:
            continue
        seen.add(id(participant))
        reset = getattr(participant, "reset", None)
        if reset is not None:
            reset()


def _attach_observers(
    camera: _CameraStream,
    controller_observe: Callable[[CameraView, FrameEvent], None] | None = None,
) -> None:
    """Assemble the camera's completion-event observer chain.

    Order: admission policy, offload controller, fleet controller.  The
    hooks are structural (``observe`` is optional on every protocol), and a
    camera whose participants define none keeps ``observers == ()`` — the
    flag the hot path checks before constructing any :class:`FrameEvent`.
    """
    observers: list[Callable[[_CameraStream, FrameEvent], None]] = []
    for source in (camera.admission, camera.offload):
        observe = getattr(source, "observe", None) if source is not None else None
        if observe is not None:
            observers.append(observe)
    if controller_observe is not None:
        observers.append(controller_observe)
    camera.observers = tuple(observers)


def _resolve_mask(
    scheme: ServingScheme,
    dataset: Dataset,
    small_detections: DetectionBatch | list[Detections] | None,
    mask: np.ndarray | None,
    offload: OffloadController | None,
) -> np.ndarray:
    """The run's static offload mask — all-local placeholder under a controller."""
    if offload is None:
        return scheme.offload_mask(dataset, small_detections, mask)
    if mask is not None:
        raise ConfigurationError(
            "an explicit mask and an offload controller are mutually exclusive: "
            "the mask decides escalations up front, the controller per frame"
        )
    return np.zeros(len(dataset), dtype=bool)


def serve_stream(
    deployment: Deployment,
    dataset: Dataset,
    spec: StreamSpec,
    *,
    seed: int = DEFAULT_SEED,
) -> StreamReport:
    """Serve one frame stream described by ``spec`` on a fresh event loop.

    Frames cycle through ``dataset.records``.  The escalation mask comes
    from ``spec.mask`` when given, else from the scheme's policy (fed
    ``spec.small_detections``); a ``spec.offload`` controller replaces both
    and decides per frame at edge-finish time.  When ``spec.detections``
    holds the per-record served outputs, the report carries the served
    stream and the per-frame log the online quality evaluation consumes.
    ``spec.admission`` selects the camera buffer's shedding behaviour
    (:class:`DropNewest` when omitted — the historical drop-at-arrival
    rule, bit for bit).

    When ``deployment.link`` is an :class:`UnreliableLink` with outages or
    loss, uplink transfers can fail; ``spec.escalation`` selects what
    happens then (:meth:`EscalationPolicy.drop_on_failure` when omitted).
    An edge-fallback policy serves the frame's *small-model* verdict at the
    failure instant, so runs that keep frame logs must supply
    ``spec.small_detections``.

    Stateful participants (an :class:`~repro.runtime.control.EstimatedDeadlineAware`
    policy, an offload controller) are ``reset()`` at entry, so reusing a
    spec across runs never leaks estimator state between them.
    """
    _reset_stateful(spec.admission, spec.offload)
    detections = _check_stream_inputs(dataset, spec.detections)
    mask = _resolve_mask(spec.scheme, dataset, spec.small_detections, spec.mask, spec.offload)
    loop = EventLoop()
    num_records = len(dataset)
    camera = _CameraStream(
        spec.scheme,
        deployment,
        dataset,
        spec.config,
        mask,
        detections,
        loop=loop,
        edge=FifoResource(loop, "edge"),
        uplink=FifoResource(loop, "uplink", faults=_uplink_faults(deployment.link, seed)),
        cloud=FifoResource(loop, "cloud", faults=_cloud_faults(deployment)),
        record_for=lambda index: index % num_records,
        admission=spec.admission,
        escalation=spec.escalation,
        escalation_rng=generator_for(seed, "stream-escalation"),
        fallback_detections=_check_stream_inputs(dataset, spec.small_detections),
        offload=spec.offload,
    )
    _attach_observers(camera)
    camera.schedule(_arrival_times(spec.config, seed, "stream-arrivals"))
    elapsed = loop.run()
    return camera.report(elapsed)


def simulate_stream(
    scheme: ServingScheme,
    deployment: Deployment,
    dataset: Dataset,
    config: StreamConfig,
    *,
    mask: np.ndarray | None = None,
    small_detections: DetectionBatch | list[Detections] | None = None,
    detections: DetectionBatch | None = None,
    admission: AdmissionPolicy | None = None,
    escalation: EscalationPolicy | None = None,
    offload: OffloadController | None = None,
    seed: int = DEFAULT_SEED,
) -> StreamReport:
    """Legacy keyword front door — builds a :class:`StreamSpec` and defers.

    Identical to :func:`serve_stream` (same code path, bit for bit); see
    there for semantics.  New code should build specs directly.
    """
    return serve_stream(
        deployment,
        dataset,
        StreamSpec(
            scheme=scheme,
            config=config,
            mask=mask,
            small_detections=small_detections,
            detections=detections,
            admission=admission,
            escalation=escalation,
            offload=offload,
        ),
        seed=seed,
    )


@dataclass(frozen=True)
class CameraSpec:
    """Per-camera overrides for one :func:`simulate_fleet` camera.

    Every field defaults to "inherit the fleet-level argument", so
    ``CameraSpec()`` describes a camera identical to the homogeneous case.
    A heterogeneous fleet mixes frame rates (per-camera ``config``),
    serving schemes/offload policies (``scheme``), admission control
    (``admission``) and imagery (``dataset`` — e.g. a night camera's
    degraded records via :meth:`repro.data.datasets.Dataset.with_degradation`
    — with the served ``detections``/``small_detections`` that match it).

    A camera that overrides ``dataset`` must bring its own ``detections``
    (and ``small_detections`` / ``mask`` when its scheme needs them): the
    fleet-level ones describe the fleet-level records.

    ``link_scale`` is a *dimensionless* :class:`RateSchedule` modulating
    the shared uplink's rate for this camera only — a moving camera whose
    radio quality co-varies with its position.  The camera's transfers see
    the link schedule (constant when the link is scalar) multiplied
    pointwise by the profile; the link itself, and every other camera,
    is untouched.
    """

    scheme: ServingScheme | None = None
    config: StreamConfig | None = None
    admission: AdmissionPolicy | None = None
    escalation: EscalationPolicy | None = None
    dataset: Dataset | None = None
    mask: np.ndarray | None = None
    small_detections: DetectionBatch | list[Detections] | None = None
    detections: DetectionBatch | None = None
    offload: OffloadController | None = None
    link_scale: RateSchedule | None = None


@dataclass(frozen=True, eq=False)
class FleetSpec:
    """Everything one fleet run serves, minus deployment/dataset/seed.

    The fleet-level fields mirror :class:`StreamSpec`; ``cameras`` is a
    count (homogeneous fleet) or a tuple of :class:`CameraSpec` whose unset
    fields inherit the fleet defaults.  ``controller`` attaches an optional
    :class:`~repro.runtime.control.FleetController` that sees every camera
    on the shared event loop (coordinated shedding across the shared
    uplink).  :func:`serve_fleet` is the front door; :func:`simulate_fleet`
    survives as a thin wrapper that builds a spec, so both paths are the
    same code and stay bit-for-bit identical.
    """

    scheme: ServingScheme
    config: StreamConfig = field(default_factory=StreamConfig)
    cameras: int | Sequence[CameraSpec] = 1
    mask: np.ndarray | None = None
    small_detections: DetectionBatch | list[Detections] | None = None
    detections: DetectionBatch | None = None
    admission: AdmissionPolicy | None = None
    escalation: EscalationPolicy | None = None
    offload: OffloadController | None = None
    controller: FleetController | None = None


def _serve_fleet_impl(
    deployment: Deployment,
    dataset: Dataset,
    spec: FleetSpec,
    seed: int,
) -> FleetReport:
    scheme = spec.scheme
    config = spec.config
    mask = spec.mask
    small_detections = spec.small_detections
    admission = spec.admission
    escalation = spec.escalation
    controller = spec.controller
    if isinstance(spec.cameras, int):
        if spec.cameras < 1:
            raise RuntimeModelError(f"a fleet needs at least one camera, got {spec.cameras}")
        specs: Sequence[CameraSpec] = (CameraSpec(),) * spec.cameras
    else:
        specs = tuple(spec.cameras)
        if not specs:
            raise RuntimeModelError("a fleet needs at least one camera, got an empty spec list")
    _reset_stateful(
        admission,
        spec.offload,
        controller,
        *(cam.admission for cam in specs),
        *(cam.offload for cam in specs),
    )
    detections = _check_stream_inputs(dataset, spec.detections)
    # The fleet-level mask is resolved once and shared by every camera that
    # inherits it, so expensive policies run select() exactly once.
    shared_mask: np.ndarray | None = None

    def fleet_mask() -> np.ndarray:
        nonlocal shared_mask
        if shared_mask is None:
            shared_mask = scheme.offload_mask(dataset, small_detections, mask)
        return shared_mask

    # Likewise the fleet-level small detections (the edge-fallback verdicts
    # under failure injection) are coerced once and shared.
    shared_fallback: DetectionBatch | None = None
    shared_fallback_resolved = False

    def fleet_fallback() -> DetectionBatch | None:
        nonlocal shared_fallback, shared_fallback_resolved
        if not shared_fallback_resolved:
            shared_fallback = _check_stream_inputs(dataset, small_detections)
            shared_fallback_resolved = True
        return shared_fallback

    loop = EventLoop()
    uplink = FifoResource(loop, "uplink", faults=_uplink_faults(deployment.link, seed))
    cloud = FifoResource(loop, "cloud", faults=_cloud_faults(deployment))
    controller_observe = getattr(controller, "observe", None) if controller is not None else None
    horizon_s = 0.0
    runs: list[_CameraStream] = []
    for camera, cam in enumerate(specs):
        cam_scheme = scheme if cam.scheme is None else cam.scheme
        cam_config = config if cam.config is None else cam.config
        cam_admission = admission if cam.admission is None else cam.admission
        cam_escalation = escalation if cam.escalation is None else cam.escalation
        cam_offload = spec.offload if cam.offload is None else cam.offload
        if cam.dataset is None:
            cam_dataset = dataset
            cam_detections = detections if cam.detections is None else _check_stream_inputs(dataset, cam.detections)
        else:
            cam_dataset = cam.dataset
            if cam.detections is None and detections is not None:
                raise RuntimeModelError(
                    f"camera {camera} overrides the dataset; supply its own detections "
                    "(the fleet-level ones describe the fleet-level records)"
                )
            cam_detections = _check_stream_inputs(cam_dataset, cam.detections)
        if cam_offload is not None:
            # A controller replaces the static mask: the camera's mask is an
            # all-local placeholder and the controller decides per frame.
            if cam.mask is not None or (cam.offload is None and mask is not None):
                raise ConfigurationError(
                    f"camera {camera} has both a mask and an offload controller; "
                    "the mask decides escalations up front, the controller per frame"
                )
            cam_mask = np.zeros(len(cam_dataset), dtype=bool)
        elif cam.scheme is None and cam.dataset is None and cam.mask is None and cam.small_detections is None:
            cam_mask = fleet_mask()
        else:
            # The fleet-level mask/small-detections describe the fleet-level
            # scheme over the fleet-level records; a camera that overrides
            # either resolves its own (its scheme's policy decides unless
            # the spec pins a mask).
            cam_small = cam.small_detections
            if cam_small is None and cam.dataset is None:
                cam_small = small_detections
            cam_mask_input = cam.mask
            if cam_mask_input is None and cam.scheme is None and cam.dataset is None:
                cam_mask_input = mask
            cam_mask = cam_scheme.offload_mask(cam_dataset, cam_small, cam_mask_input)
        if cam.small_detections is None and cam.dataset is None:
            cam_fallback = fleet_fallback()
        else:
            cam_fallback = _check_stream_inputs(cam_dataset, cam.small_detections)
        num_records = len(cam_dataset)
        start = (camera * num_records) // len(specs)
        stream = _CameraStream(
            cam_scheme,
            deployment,
            cam_dataset,
            cam_config,
            cam_mask,
            cam_detections,
            loop=loop,
            edge=FifoResource(loop, f"edge-{camera}"),
            uplink=uplink,
            cloud=cloud,
            record_for=lambda index, start=start, count=num_records: (start + index) % count,
            admission=cam_admission,
            escalation=cam_escalation,
            escalation_rng=generator_for(seed, "fleet-escalation", camera),
            fallback_detections=cam_fallback,
            offload=cam_offload,
            link_scale=cam.link_scale,
        )
        _attach_observers(stream, controller_observe)
        stream.schedule(_arrival_times(cam_config, seed, "fleet-arrivals", camera))
        horizon_s = max(horizon_s, cam_config.duration_s)
        runs.append(stream)
    if controller is not None:
        controller.attach(loop, runs, horizon_s=horizon_s)
    elapsed = loop.run()
    reports = tuple(stream.report(elapsed) for stream in runs)
    all_latencies = [latency for stream in runs for latency in stream.latencies]
    names = {report.scheme for report in reports}
    return FleetReport(
        scheme=names.pop() if len(names) == 1 else "mixed",
        cameras=reports,
        latency=summarize_latencies(all_latencies),
        frames_offered=sum(report.frames_offered for report in reports),
        frames_served=sum(report.frames_served for report in reports),
        frames_dropped=sum(report.frames_dropped for report in reports),
        frames_uploaded=sum(report.frames_uploaded for report in reports),
        frames_shed=sum(report.frames_shed for report in reports),
        escalations_failed=sum(report.escalations_failed for report in reports),
        escalations_dropped=sum(report.escalations_dropped for report in reports),
        escalations_recovered=sum(report.escalations_recovered for report in reports),
        edge_utilization=float(np.mean([report.edge_utilization for report in reports])),
        uplink_utilization=uplink.utilization(elapsed),
        cloud_utilization=cloud.utilization(elapsed),
    )


def serve_fleet(
    deployment: Deployment,
    dataset: Dataset,
    spec: FleetSpec,
    *,
    seed: int = DEFAULT_SEED,
) -> FleetReport:
    """Serve a camera fleet described by ``spec`` contending for one deployment.

    Each camera owns an edge accelerator (cameras are independent devices)
    but every upload serialises through the *single* shared uplink and the
    *single* shared cloud GPU — the contention that decides whether a scheme
    scales to a fleet.  Camera ``c`` starts its cycle through the records at
    offset ``c * len(records) // cameras`` so the fleet covers the split
    rather than synchronising on the same frames; arrivals are seeded per
    camera, so runs are deterministic for any camera count.

    ``spec.cameras`` is either a count (a homogeneous fleet of identical
    cameras) or a sequence of :class:`CameraSpec`, one per camera, whose
    unset fields inherit the fleet-level spec fields — mixed frame rates,
    per-camera schemes/offload policies, admission policies and per-camera
    (e.g. quality-drifted) records all run over the same shared uplink and
    cloud GPU.  ``spec.controller`` attaches a fleet controller that
    observes every camera's completions and can shed across cameras;
    stateful participants are ``reset()`` at entry so specs are reusable.

    Setting ``REPRO_PROFILE=1`` in the environment wraps the run in
    :mod:`cProfile` and dumps ``simulate_fleet.prof`` into
    ``$REPRO_PROFILE_DIR`` (default ``benchmarks/_output``) for hot-path
    hunts — no ad-hoc instrumentation needed.
    """
    if not os.environ.get("REPRO_PROFILE"):
        return _serve_fleet_impl(deployment, dataset, spec, seed)
    import cProfile

    profile = cProfile.Profile()
    profile.enable()
    try:
        return _serve_fleet_impl(deployment, dataset, spec, seed)
    finally:
        profile.disable()
        out_dir = os.environ.get("REPRO_PROFILE_DIR", os.path.join("benchmarks", "_output"))
        os.makedirs(out_dir, exist_ok=True)
        profile.dump_stats(os.path.join(out_dir, "simulate_fleet.prof"))


def simulate_fleet(
    scheme: ServingScheme,
    deployment: Deployment,
    dataset: Dataset,
    config: StreamConfig,
    *,
    cameras: int | Sequence[CameraSpec],
    mask: np.ndarray | None = None,
    small_detections: DetectionBatch | list[Detections] | None = None,
    detections: DetectionBatch | None = None,
    admission: AdmissionPolicy | None = None,
    escalation: EscalationPolicy | None = None,
    offload: OffloadController | None = None,
    controller: FleetController | None = None,
    seed: int = DEFAULT_SEED,
) -> FleetReport:
    """Legacy keyword front door — builds a :class:`FleetSpec` and defers.

    Identical to :func:`serve_fleet` (same code path, bit for bit); see
    there for semantics.  New code should build specs directly.
    """
    return serve_fleet(
        deployment,
        dataset,
        FleetSpec(
            scheme=scheme,
            config=config,
            cameras=cameras,
            mask=mask,
            small_detections=small_detections,
            detections=detections,
            admission=admission,
            escalation=escalation,
            offload=offload,
            controller=controller,
        ),
        seed=seed,
    )
