"""The public policy surface of the streaming runtime, in one namespace.

Serving grew four policy families in four places: *offload* policies
(which records a scheme escalates, decided offline), *admission* policies
(which queued frames a saturated camera sheds, decided at arrival),
*escalation* policies (what happens when an uplink transfer fails), and —
new with the control plane — *closed-loop controllers* (estimated-time
admission, fleet-wide coordination, adaptive offload quotas).  This module
is the curated import point for all of them plus the protocols and view
types a user-defined policy needs, so downstream code never reaches into
``repro.runtime.serving`` internals or imports underscored names.

A minimal custom admission policy is just::

    from repro.runtime import policies

    class SlackAware:
        name = "slack-aware"

        def admit(self, camera: policies.CameraView, arrival: float) -> bool:
            camera.shed_expired(freshness_s=1.0)
            return camera.buffer_has_room()

``observe(camera, event)`` and ``reset()`` are optional on every protocol:
engines look them up structurally and skip the machinery (at zero per-frame
cost) when absent.
"""

from __future__ import annotations

from repro.runtime.control import (
    AdaptiveQuota,
    CameraView,
    EstimatedDeadlineAware,
    FleetController,
    FrameEvent,
    OffloadController,
    UplinkCoordinator,
)
from repro.runtime.serving import (
    AdmissionPolicy,
    AlwaysOffload,
    DeadlineAware,
    DropNewest,
    DropOldest,
    EscalationPolicy,
    NeverOffload,
    OffloadPolicy,
)

__all__ = [
    # offline offload policies (which records a scheme escalates)
    "AlwaysOffload",
    "NeverOffload",
    "OffloadPolicy",
    # admission policies (which queued frames a camera sheds)
    "AdmissionPolicy",
    "DeadlineAware",
    "DropNewest",
    "DropOldest",
    "EstimatedDeadlineAware",
    # uplink-failure handling
    "EscalationPolicy",
    # closed-loop control plane
    "AdaptiveQuota",
    "FleetController",
    "OffloadController",
    "UplinkCoordinator",
    # protocol support types for user-defined policies
    "CameraView",
    "FrameEvent",
]
