"""Parallel sharded split runner.

Detections are a pure function of ``(seed, profile name, image id)`` —
:mod:`repro._rng` derives every stream from SHA-256 digests, never from the
process-salted builtin ``hash`` — so a split can be partitioned into
contiguous image-range shards and detected on separate processes with
bit-for-bit identity to the serial loop.  Each worker fills a
:class:`~repro.detection.batch.DetectionBatchBuilder` and ships one
:class:`~repro.detection.batch.DetectionBatch` back; the parent concatenates
the shards in range order.

Pooling is external: callers pass a :class:`~repro.runtime.pool.WorkerPool`
(typically the harness-lifetime pool owned by
:class:`~repro.experiments.harness.Harness`) and this module only submits to
it — no executor is ever constructed per call, so process startup is paid at
most once per pool lifetime no matter how many splits run.  Without a pool
(or with a serial pool) everything runs in-process.  Tiny splits (fewer than
``min_shard_images`` per would-be worker) also fall back to the serial path —
shipping the work to processes would cost more than it saves.
"""

from __future__ import annotations

from concurrent.futures import as_completed
from typing import TYPE_CHECKING, Callable, Sequence

from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.errors import ConfigurationError
from repro.runtime.pool import WorkerPool, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layering cycles
    from repro.data.datasets import Dataset, ImageRecord
    from repro.simulate.detector import SimulatedDetector

__all__ = [
    "DEFAULT_MIN_SHARD_IMAGES",
    "resolve_workers",
    "shard_spans",
    "detect_records",
    "run_shards",
    "run_split",
]

#: Below this many images per worker the pool is not worth engaging.
DEFAULT_MIN_SHARD_IMAGES = 32


def shard_spans(count: int, shards: int) -> list[tuple[int, int]]:
    """Partition ``range(count)`` into ``shards`` contiguous, balanced spans.

    Spans cover the range exactly, in order, and differ in length by at most
    one.  Empty ranges yield no spans; ``shards`` is clamped to ``count``.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if count == 0:
        return []
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    spans: list[tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def detect_records(detector: "SimulatedDetector", records: Sequence["ImageRecord"]) -> DetectionBatch:
    """Run ``detector`` over ``records`` serially into one batch."""
    builder = DetectionBatchBuilder(detector=detector.name)
    for record in records:
        builder.append_detections(detector.detect(record))
    return builder.build()


def _detect_shard_task(
    args: tuple["SimulatedDetector", Sequence["ImageRecord"]],
) -> DetectionBatch:
    """Pool worker entry point (module-level so it pickles)."""
    detector, records = args
    return detect_records(detector, records)


def run_shards(
    detector: "SimulatedDetector",
    shards: Sequence[Sequence["ImageRecord"]],
    *,
    pool: WorkerPool | None = None,
    on_result: Callable[[int, DetectionBatch], None] | None = None,
) -> list[DetectionBatch]:
    """Detect each record shard, one batch per shard, preserving order.

    With a parallel ``pool`` and more than one shard the shards run on the
    pool's worker processes; otherwise serially in-process.  Either way the
    returned batches are bit-for-bit what :func:`detect_records` produces per
    shard.

    ``on_result(shard_index, batch)`` is invoked as each shard *completes*
    (completion order under the pool, not shard order) — the harness uses
    it to persist finished cache shards immediately, so an interrupted run
    loses at most the shards still in flight.
    """
    shards = [list(shard) for shard in shards]
    if pool is None or not pool.parallel or len(shards) <= 1:
        results = []
        for index, shard in enumerate(shards):
            batch = detect_records(detector, shard)
            if on_result is not None:
                on_result(index, batch)
            results.append(batch)
        return results
    results: list[DetectionBatch | None] = [None] * len(shards)
    futures = {pool.submit(_detect_shard_task, (detector, shard)): index for index, shard in enumerate(shards)}
    for future in as_completed(futures):
        index = futures[future]
        batch = future.result()
        results[index] = batch
        if on_result is not None:
            on_result(index, batch)
    return results


def run_split(
    detector: "SimulatedDetector",
    dataset: "Dataset | Sequence[ImageRecord]",
    *,
    pool: WorkerPool | None = None,
    min_shard_images: int = DEFAULT_MIN_SHARD_IMAGES,
) -> DetectionBatch:
    """Run a detector over a whole split, sharded across the pool's workers.

    Drop-in replacement for
    ``DetectionBatch.from_list(detector.detect_split(dataset))`` with
    identical output: contiguous image-range shards are detected in
    parallel on ``pool`` and concatenated in order.
    """
    records = list(getattr(dataset, "records", dataset))
    workers = pool.workers if pool is not None else 1
    effective = min(workers, max(1, len(records) // max(1, min_shard_images)))
    if effective <= 1:
        return detect_records(detector, records)
    spans = shard_spans(len(records), effective)
    parts = run_shards(
        detector,
        [records[lo:hi] for lo, hi in spans],
        pool=pool,
    )
    return DetectionBatch.concat(parts, detector=detector.name)
