"""Parallel sharded split runner with a zero-copy data plane.

Detections are a pure function of ``(seed, profile name, image id)`` —
:mod:`repro._rng` derives every stream from SHA-256 digests, never from the
process-salted builtin ``hash`` — so a split can be partitioned into
contiguous image-range shards and detected on separate processes with
bit-for-bit identity to the serial loop.

Data movement between the parent and the workers is minimised end to end:

* **Inputs** — :func:`run_spans` ships ``(detector, token, lo, hi)`` instead
  of pickled record lists: workers resolve the records from the
  fork-inherited dataset snapshot registered (via
  :func:`repro.runtime.pool.register_inherited`) before the executor
  started.  Snapshots registered *after* pool start — and non-fork
  platforms — fall back to pickling the record slice, bit-for-bit
  identical.
* **Results** — each worker fills a
  :class:`~repro.detection.batch.DetectionBatchBuilder` and, when the
  pool's shared-memory arena is enabled (parallel pool, Linux,
  ``REPRO_SHM`` not ``0``), parks the finished batch's flat columns in a
  named ``/dev/shm`` segment (:mod:`repro.runtime.shm`) and returns only a
  tiny handle; the parent adopts the segment as zero-copy numpy views.
  Serial pools, non-Linux platforms and oversized shards return the batch
  through the ordinary pickle pipe instead — same bytes either way.

Pooling is external: callers pass a :class:`~repro.runtime.pool.WorkerPool`
(typically the harness-lifetime pool owned by
:class:`~repro.experiments.harness.Harness`) and this module only submits to
it — no executor is ever constructed per call, so process startup is paid at
most once per pool lifetime no matter how many splits run.  Without a pool
(or with a serial pool) everything runs in-process, lazily slicing spans
without ever materialising per-shard record lists.  Tiny splits (fewer than
``min_shard_images`` per would-be worker) also fall back to the serial
path — shipping the work to processes would cost more than it saves.
"""

from __future__ import annotations

from concurrent.futures import as_completed
from typing import TYPE_CHECKING, Callable, Sequence

from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.errors import ConfigurationError
from repro.runtime.pool import (
    WorkerPool,
    inherited_token,
    inherited_value,
    register_inherited,
    resolve_workers,
)
from repro.runtime.shm import SharedBatchHandle, ShmTransport, adopt_batch, discard_batch, share_batch

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layering cycles
    from repro.data.datasets import Dataset, ImageRecord
    from repro.simulate.detector import SimulatedDetector

__all__ = [
    "DEFAULT_MIN_SHARD_IMAGES",
    "resolve_workers",
    "shard_spans",
    "detect_records",
    "run_shards",
    "run_spans",
    "run_split",
]

#: Below this many images per worker the pool is not worth engaging.
DEFAULT_MIN_SHARD_IMAGES = 32


def shard_spans(count: int, shards: int) -> list[tuple[int, int]]:
    """Partition ``range(count)`` into ``shards`` contiguous, balanced spans.

    Spans cover the range exactly, in order, and differ in length by at most
    one.  Empty ranges yield no spans; ``shards`` is clamped to ``count``.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if count == 0:
        return []
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    spans: list[tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def detect_records(
    detector: "SimulatedDetector",
    records: Sequence["ImageRecord"],
    span: tuple[int, int] | None = None,
) -> DetectionBatch:
    """Run ``detector`` over ``records`` (or the ``[lo, hi)`` span of them)
    serially into one batch — indexing in place, never copying the list."""
    lo, hi = span if span is not None else (0, len(records))
    builder = DetectionBatchBuilder(detector=detector.name)
    for index in range(lo, hi):
        builder.append_detections(detector.detect(records[index]))
    return builder.build()


def _detect_task(
    detector: "SimulatedDetector",
    source: "str | Sequence[ImageRecord]",
    span: tuple[int, int] | None,
    transport: ShmTransport | None,
) -> "SharedBatchHandle | DetectionBatch":
    """Pool worker entry point (module-level so it pickles).

    ``source`` is either a snapshot token (fork-inherited records; ``span``
    selects the shard) or an already-sliced record sequence.  With a
    ``transport`` the result returns through the shared-memory arena unless
    the segment would be oversized.
    """
    records = inherited_value(source) if isinstance(source, str) else source
    batch = detect_records(detector, records, span)
    if transport is not None:
        handle = share_batch(batch, prefix=transport.prefix, max_bytes=transport.max_segment_bytes)
        if handle is not None:
            return handle
    return batch


def span_payload(
    pool: WorkerPool,
    records: Sequence["ImageRecord"],
    span: tuple[int, int],
) -> tuple["str | Sequence[ImageRecord]", tuple[int, int] | None]:
    """The cheapest ``(source, span)`` pair for shipping one shard's inputs.

    Fork-inherited token + span when the workers (will) have the snapshot;
    otherwise the pickled record slice.  An unstarted pool registers the
    records on the spot — the executor forks afterwards and inherits them.
    """
    token = inherited_token(records)
    if token is None and not pool.started:
        token = register_inherited(records)
    if token is not None and pool.inherits(token):
        return token, span
    lo, hi = span
    return records[lo:hi], None


def _materialize(result: "SharedBatchHandle | DetectionBatch") -> DetectionBatch:
    """Adopt a shared-memory handle; pass a pickled batch through."""
    if isinstance(result, SharedBatchHandle):
        return adopt_batch(result)
    return result


def _discard_pending(futures) -> None:
    """Error-path cleanup: drain outstanding futures, unlinking any
    shared segments their results parked, so no ``/dev/shm`` name survives
    an exception.  Waits for in-flight tasks (their segments must exist
    before they can be removed); swallows their errors — the original
    exception is already propagating."""
    for future in futures:
        future.cancel()
    for future in futures:
        try:
            result = future.result()
        except BaseException:
            continue
        if isinstance(result, SharedBatchHandle):
            discard_batch(result)


def _drain(
    futures: "dict",
    results: list,
    on_result: Callable[[int, DetectionBatch], None] | None,
) -> None:
    """Collect shard futures in completion order into ``results`` by index."""
    pending = set(futures)
    try:
        for future in as_completed(futures):
            pending.discard(future)
            batch = _materialize(future.result())
            index = futures[future]
            results[index] = batch
            if on_result is not None:
                on_result(index, batch)
    except BaseException:
        _discard_pending(pending)
        raise


def run_shards(
    detector: "SimulatedDetector",
    shards: Sequence[Sequence["ImageRecord"]],
    *,
    pool: WorkerPool | None = None,
    on_result: Callable[[int, DetectionBatch], None] | None = None,
) -> list[DetectionBatch]:
    """Detect each record shard, one batch per shard, preserving order.

    With a parallel ``pool`` and more than one shard the shards run on the
    pool's worker processes (results returning through the shared-memory
    arena when enabled); otherwise serially in-process, iterating the given
    shards as-is — nothing is materialised or copied.  Either way the
    returned batches are bit-for-bit what :func:`detect_records` produces
    per shard.

    ``on_result(shard_index, batch)`` is invoked as each shard *completes*
    (completion order under the pool, not shard order) — the harness uses
    it to persist finished cache shards immediately, so an interrupted run
    loses at most the shards still in flight.
    """
    count = len(shards)
    if pool is None or not pool.parallel or count <= 1:
        results = []
        for index in range(count):
            batch = detect_records(detector, shards[index])
            if on_result is not None:
                on_result(index, batch)
            results.append(batch)
        return results
    transport = pool.shm_transport
    futures = {pool.submit(_detect_task, detector, shards[index], None, transport): index for index in range(count)}
    results: list[DetectionBatch | None] = [None] * count
    _drain(futures, results, on_result)
    return results


def run_spans(
    detector: "SimulatedDetector",
    records: Sequence["ImageRecord"],
    spans: Sequence[tuple[int, int]],
    *,
    pool: WorkerPool | None = None,
    on_result: Callable[[int, DetectionBatch], None] | None = None,
) -> list[DetectionBatch]:
    """Detect contiguous ``[lo, hi)`` spans of ``records``, one batch each.

    The zero-copy sibling of :func:`run_shards`: the parent never slices a
    record list per shard unless it has to.  Serial execution indexes
    ``records`` in place; parallel pools ship ``(detector, token, span)``
    against the fork-inherited snapshot (see :func:`span_payload` for the
    fallback matrix) and adopt results from the shared-memory arena.
    """
    spans = list(spans)
    if pool is None or not pool.parallel or len(spans) <= 1:
        results = []
        for index, span in enumerate(spans):
            batch = detect_records(detector, records, span)
            if on_result is not None:
                on_result(index, batch)
            results.append(batch)
        return results
    transport = pool.shm_transport
    futures = {}
    for index, span in enumerate(spans):
        source, span_arg = span_payload(pool, records, span)
        futures[pool.submit(_detect_task, detector, source, span_arg, transport)] = index
    results: list[DetectionBatch | None] = [None] * len(spans)
    _drain(futures, results, on_result)
    return results


def run_split(
    detector: "SimulatedDetector",
    dataset: "Dataset | Sequence[ImageRecord]",
    *,
    pool: WorkerPool | None = None,
    min_shard_images: int = DEFAULT_MIN_SHARD_IMAGES,
) -> DetectionBatch:
    """Run a detector over a whole split, sharded across the pool's workers.

    Drop-in replacement for
    ``DetectionBatch.from_list(detector.detect_split(dataset))`` with
    identical output: contiguous image-range shards are detected in
    parallel on ``pool`` and concatenated in order.  The dataset's record
    list is used in place (never copied), so repeated calls over the same
    split reuse its fork-inherited snapshot token.
    """
    records = getattr(dataset, "records", dataset)
    workers = pool.workers if pool is not None else 1
    effective = min(workers, max(1, len(records) // max(1, min_shard_images)))
    if effective <= 1:
        return detect_records(detector, records)
    spans = shard_spans(len(records), effective)
    parts = run_spans(detector, records, spans, pool=pool)
    return DetectionBatch.concat(parts, detector=detector.name)
