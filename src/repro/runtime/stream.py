"""Streaming (video) serving simulation.

The paper motivates edge-cloud collaboration with video workloads
("Edge-Cloud collaboration focuses more on timeliness (e.g., object
detection for video stream)").  This module serves a *continuous frame
stream* through the three schemes and measures what the static Table XI
totals cannot show: queueing delay, saturation and drop behaviour under
load.

Model
-----
* Frames arrive periodically or as a Poisson process.
* **edge-only**: every frame queues for the edge accelerator.
* **cloud-only**: every frame queues for the WLAN uplink (serialisation is
  the bottleneck), then for the cloud GPU.
* **collaborative**: every frame first queues for the edge accelerator
  (small model + discriminator); frames ruled difficult then take the
  cloud path.  The edge and cloud stages pipeline naturally.

A bounded edge queue with drop-oldest backpressure models a real camera
buffer: the stream report counts drops instead of letting latency diverge
when a scheme saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.errors import RuntimeModelError
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.runtime.codec import detections_payload_bytes
from repro.runtime.events import EventLoop, FifoResource
from repro.runtime.executor import DISCRIMINATOR_FLOPS, Deployment

__all__ = ["StreamConfig", "StreamReport", "StreamSimulator"]


@dataclass(frozen=True)
class StreamConfig:
    """Workload description for one streaming run.

    Attributes
    ----------
    fps:
        Mean frame arrival rate.
    poisson:
        Poisson arrivals when true; exactly periodic otherwise.
    duration_s:
        Stream length in simulated seconds.
    max_edge_queue:
        Camera buffer bound; an arriving frame is dropped when the edge
        (or, for cloud-only, the uplink) queue is this deep.
    """

    fps: float = 10.0
    poisson: bool = True
    duration_s: float = 60.0
    max_edge_queue: int = 30

    def __post_init__(self) -> None:
        if self.fps <= 0.0 or self.duration_s <= 0.0:
            raise RuntimeModelError("fps and duration_s must be positive")
        if self.max_edge_queue < 1:
            raise RuntimeModelError("max_edge_queue must be >= 1")


@dataclass(frozen=True)
class StreamReport:
    """Outcome of one streaming run.

    ``served`` (present when the run was given per-record detections) is the
    stream's served output in completion order, accumulated frame by frame
    through a :class:`DetectionBatchBuilder` — no per-frame container
    staging.
    """

    scheme: str
    latency: LatencySummary
    frames_offered: int
    frames_served: int
    frames_dropped: int
    frames_uploaded: int
    edge_utilization: float
    uplink_utilization: float
    cloud_utilization: float
    served: DetectionBatch | None = field(default=None, repr=False)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames dropped at the buffer."""
        if self.frames_offered == 0:
            return 0.0
        return self.frames_dropped / self.frames_offered

    @property
    def upload_ratio(self) -> float:
        """Fraction of served frames that crossed the uplink."""
        if self.frames_served == 0:
            return 0.0
        return self.frames_uploaded / self.frames_served


class StreamSimulator:
    """Serve a frame stream drawn from a dataset through one deployment.

    Frames cycle through ``dataset.records``; the per-frame upload decision
    for the collaborative scheme is supplied as a boolean mask aligned with
    the records (typically a :class:`SystemRun`'s ``uploaded``), so the
    *actual* discriminator verdicts drive the queueing behaviour.
    """

    def __init__(
        self,
        deployment: Deployment,
        dataset: Dataset,
        *,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if len(dataset) == 0:
            raise RuntimeModelError("cannot stream an empty dataset")
        self.deployment = deployment
        self.dataset = dataset
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _arrivals(self, config: StreamConfig) -> np.ndarray:
        rng = generator_for(self.seed, "stream-arrivals", config.fps, config.poisson)
        if config.poisson:
            gaps = rng.exponential(1.0 / config.fps, size=int(config.fps * config.duration_s * 2))
        else:
            gaps = np.full(int(config.fps * config.duration_s * 2), 1.0 / config.fps)
        times = np.cumsum(gaps)
        return times[times < config.duration_s]

    def _edge_service(self) -> float:
        dep = self.deployment
        return dep.edge.inference_latency(dep.small_model_flops) + dep.edge.inference_latency(
            DISCRIMINATOR_FLOPS
        )

    def _uplink_service(self, record) -> float:
        dep = self.deployment
        return dep.link.transfer_time(dep.codec.encoded_bytes(record))

    def _cloud_service(self) -> float:
        dep = self.deployment
        return dep.cloud.inference_latency(dep.big_model_flops)

    def _downlink_latency(self) -> float:
        return self.deployment.link.transfer_time(detections_payload_bytes(8))

    # ------------------------------------------------------------------ #
    def run(
        self,
        scheme: str,
        config: StreamConfig,
        uploaded: np.ndarray | None = None,
        *,
        detections: DetectionBatch | None = None,
    ) -> StreamReport:
        """Simulate one scheme over the configured stream.

        Parameters
        ----------
        scheme:
            ``"edge"``, ``"cloud"`` or ``"collaborative"``.
        uploaded:
            Per-record upload mask, required for ``"collaborative"``.
        detections:
            Optional per-record served outputs aligned with the dataset
            (e.g. a :class:`SystemRun`'s final batch).  When given, every
            served frame's segment is appended to a streaming
            :class:`DetectionBatchBuilder` and the report carries the
            resulting batch as ``served``.
        """
        if scheme not in ("edge", "cloud", "collaborative"):
            raise RuntimeModelError(f"unknown scheme {scheme!r}")
        if scheme == "collaborative":
            if uploaded is None:
                raise RuntimeModelError("collaborative scheme needs an upload mask")
            uploaded = np.asarray(uploaded, dtype=bool).reshape(-1)
            if uploaded.shape[0] != len(self.dataset):
                raise RuntimeModelError("upload mask misaligned with dataset")
        builder: DetectionBatchBuilder | None = None
        if detections is not None:
            if len(detections) != len(self.dataset):
                raise RuntimeModelError("detections misaligned with dataset")
            builder = DetectionBatchBuilder(detector=detections.detector)

        loop = EventLoop()
        edge = FifoResource(loop, "edge")
        uplink = FifoResource(loop, "uplink")
        cloud = FifoResource(loop, "cloud")

        latencies: list[float] = []
        served = dropped = uploads = 0
        arrivals = self._arrivals(config)
        records = self.dataset.records
        num_records = len(records)
        # Per-frame constants: only the uplink serialisation time depends on
        # the frame, so everything else is computed once per run instead of
        # inside the event callbacks.
        edge_service = self._edge_service()
        cloud_service = self._cloud_service()
        downlink_latency = self._downlink_latency()

        def collect(record_index: int) -> None:
            if builder is None:
                return
            lo = int(detections.offsets[record_index])
            hi = int(detections.offsets[record_index + 1])
            builder.append(
                detections.image_ids[record_index],
                detections.boxes[lo:hi],
                detections.scores[lo:hi],
                detections.labels[lo:hi],
            )

        def finish(start: float, record_index: int) -> None:
            nonlocal served
            served += 1
            latencies.append(loop.now - start + downlink_latency)
            collect(record_index)

        def finish_local(start: float, record_index: int) -> None:
            nonlocal served
            served += 1
            latencies.append(loop.now - start)
            collect(record_index)

        def cloud_path(record, start: float, record_index: int) -> None:
            nonlocal uploads
            uploads += 1
            uplink.acquire(
                self._uplink_service(record),
                lambda _t: cloud.acquire(
                    cloud_service, lambda _t2: finish(start, record_index)
                ),
            )

        def on_frame(index: int, arrival: float) -> None:
            nonlocal dropped
            record_index = index % num_records
            record = records[record_index]
            entry_queue = edge if scheme != "cloud" else uplink
            if entry_queue.queue_depth >= config.max_edge_queue:
                dropped += 1
                return
            start = arrival
            if scheme == "edge":
                edge.acquire(
                    edge_service, lambda _t: finish_local(start, record_index)
                )
            elif scheme == "cloud":
                cloud_path(record, start, record_index)
            else:
                send = bool(uploaded[record_index])

                def after_edge(
                    _t: float, record=record, send=send, record_index=record_index
                ) -> None:
                    if send:
                        cloud_path(record, start, record_index)
                    else:
                        finish_local(start, record_index)

                edge.acquire(edge_service, after_edge)

        for index, arrival in enumerate(arrivals):
            loop.schedule(arrival, lambda i=index, a=arrival: on_frame(i, a))
        elapsed = loop.run()

        return StreamReport(
            scheme=scheme,
            latency=summarize_latencies(latencies),
            frames_offered=int(arrivals.shape[0]),
            frames_served=served,
            frames_dropped=dropped,
            frames_uploaded=uploads,
            edge_utilization=edge.utilization(elapsed),
            uplink_utilization=uplink.utilization(elapsed),
            cloud_utilization=cloud.utilization(elapsed),
            served=builder.build() if builder is not None else None,
        )

    def compare(
        self, config: StreamConfig, uploaded: np.ndarray
    ) -> dict[str, StreamReport]:
        """Run all three schemes over the same arrival process."""
        return {
            "edge": self.run("edge", config),
            "cloud": self.run("cloud", config),
            "collaborative": self.run("collaborative", config, uploaded),
        }
