"""Streaming (video) serving simulation.

The paper motivates edge-cloud collaboration with video workloads
("Edge-Cloud collaboration focuses more on timeliness (e.g., object
detection for video stream)").  This module serves a *continuous frame
stream* through the serving schemes and measures what the static Table XI
totals cannot show: queueing delay, saturation and drop behaviour under
load.

The pipeline itself — scheme definitions, stage service times, the
event-driven engine, and the multi-camera fleet variant — lives in
:mod:`repro.runtime.serving`; :class:`StreamSimulator` binds a deployment
and a dataset and keeps the historical ``run("edge" | "cloud" |
"collaborative", ...)`` entry point, while :meth:`StreamSimulator.run_scheme`
accepts any :class:`~repro.runtime.serving.ServingScheme` (e.g. a baseline
offload policy).

A bounded edge queue models a real camera buffer: a frame arriving while
the queue is full is dropped and counted, instead of letting latency
diverge when a scheme saturates.
"""

from __future__ import annotations

import numpy as np

from repro._rng import DEFAULT_SEED
from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import RuntimeModelError
from repro.runtime.serving import (
    AdmissionPolicy,
    Deployment,
    EscalationPolicy,
    ServingScheme,
    StreamConfig,
    StreamReport,
    paper_schemes,
    simulate_stream,
)

__all__ = ["StreamConfig", "StreamReport", "StreamSimulator"]


class StreamSimulator:
    """Serve a frame stream drawn from a dataset through one deployment.

    Frames cycle through ``dataset.records``; the per-frame upload decision
    for the collaborative scheme is supplied as a boolean mask aligned with
    the records (typically a :class:`SystemRun`'s ``uploaded``), so the
    *actual* discriminator verdicts drive the queueing behaviour.
    """

    def __init__(
        self,
        deployment: Deployment,
        dataset: Dataset,
        *,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if len(dataset) == 0:
            raise RuntimeModelError("cannot stream an empty dataset")
        self.deployment = deployment
        self.dataset = dataset
        self.seed = seed

    # ------------------------------------------------------------------ #
    def run(
        self,
        scheme: str,
        config: StreamConfig,
        uploaded: np.ndarray | None = None,
        *,
        detections: DetectionBatch | None = None,
        small_detections: DetectionBatch | list[Detections] | None = None,
        admission: AdmissionPolicy | None = None,
        escalation: EscalationPolicy | None = None,
    ) -> StreamReport:
        """Simulate one named paper scheme over the configured stream.

        Parameters
        ----------
        scheme:
            ``"edge"``, ``"cloud"`` or ``"collaborative"``.
        uploaded:
            Per-record upload mask, required for ``"collaborative"`` (and
            ignored by the other schemes, whose decisions are degenerate).
        detections:
            Optional per-record served outputs aligned with the dataset
            (e.g. a :class:`SystemRun`'s final batch).  When given, the
            report carries the served stream plus the per-frame log that
            online quality evaluation consumes.
        small_detections:
            Per-record small-model outputs — the edge verdict that stands in
            when an unreliable uplink fails an escalation.
        admission:
            Camera-buffer admission policy
            (:class:`~repro.runtime.serving.DropNewest` when omitted).
        escalation:
            Failure-handling policy for an unreliable uplink
            (:meth:`~repro.runtime.serving.EscalationPolicy.drop_on_failure`
            when omitted).
        """
        schemes = paper_schemes()
        if scheme not in schemes:
            raise RuntimeModelError(f"unknown scheme {scheme!r}")
        mask = uploaded if scheme == "collaborative" else None
        return self.run_scheme(
            schemes[scheme],
            config,
            mask=mask,
            small_detections=small_detections,
            detections=detections,
            admission=admission,
            escalation=escalation,
        )

    def run_scheme(
        self,
        scheme: ServingScheme,
        config: StreamConfig,
        *,
        mask: np.ndarray | None = None,
        small_detections: DetectionBatch | list[Detections] | None = None,
        detections: DetectionBatch | None = None,
        admission: AdmissionPolicy | None = None,
        escalation: EscalationPolicy | None = None,
    ) -> StreamReport:
        """Simulate any serving scheme (policy- or mask-driven)."""
        return simulate_stream(
            scheme,
            self.deployment,
            self.dataset,
            config,
            mask=mask,
            small_detections=small_detections,
            detections=detections,
            admission=admission,
            escalation=escalation,
            seed=self.seed,
        )

    def compare(self, config: StreamConfig, uploaded: np.ndarray) -> dict[str, StreamReport]:
        """Run all three schemes over the same arrival process."""
        return {
            "edge": self.run("edge", config),
            "cloud": self.run("cloud", config),
            "collaborative": self.run("collaborative", config, uploaded),
        }
