"""Bundled bandwidth traces shared by experiments, examples and benches.

Trace files live under ``benchmarks/traces/`` as small JSON documents::

    {"name": "...", "description": "...", "times_s": [...], "mbps": [...]}

``times_s`` are sample instants (seconds), ``mbps`` the rate holding from
each instant to the next — exactly the :meth:`RateSchedule.from_trace`
contract, so a loaded trace is a ready-to-attach schedule.  The bundled set:

* ``lte_like`` — a seeded random-walk cellular uplink with a deep mid-run
  congestion trough (the Figure 14 workload).
* ``periodic_dip`` — deterministic congestion cycle on the testbed WLAN.
* ``mobility_scale`` — a dimensionless modulation profile (values around
  1.0) for ``CameraSpec.link_scale``: a camera moving away from and back
  toward the access point.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

from repro.errors import ConfigurationError
from repro.runtime.network import RateSchedule

__all__ = ["TRACE_DIR", "bundled_trace", "load_rate_trace"]

#: Repo-local trace directory (the repo layout is the install layout here,
#: same convention as the harness's ``.repro_cache``).
TRACE_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "traces"


def load_rate_trace(path: str | Path) -> RateSchedule:
    """Read one trace JSON file into a :class:`RateSchedule`."""
    trace_path = Path(path)
    try:
        payload = json.loads(trace_path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"rate trace file not found: {trace_path}") from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"rate trace {trace_path} is not valid JSON: {error}") from None
    times = payload.get("times_s")
    mbps = payload.get("mbps")
    if not isinstance(times, list) or not isinstance(mbps, list):
        raise ConfigurationError(
            f"rate trace {trace_path} must carry 'times_s' and 'mbps' lists"
        )
    return RateSchedule.from_trace(times, mbps)


@lru_cache(maxsize=None)
def bundled_trace(name: str) -> RateSchedule:
    """Load a checked-in trace from ``benchmarks/traces/`` by stem name."""
    path = TRACE_DIR / f"{name}.json"
    if not path.exists():
        available = sorted(p.stem for p in TRACE_DIR.glob("*.json")) if TRACE_DIR.exists() else []
        raise ConfigurationError(f"unknown bundled trace {name!r}; available: {available}")
    return load_rate_trace(path)
