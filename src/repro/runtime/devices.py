"""Compute-device models.

A device is characterised by its *effective* sustained throughput on
detection workloads (not peak TFLOPS): inference latency is simply
``model FLOPs / effective throughput`` plus a fixed per-invocation overhead.
The presets are calibrated so that the paper's Table XI testbed reproduces:
small model 1 (~6 GFLOPs) on a Jetson Nano runs at ~47 ms and SSD
(~63 GFLOPs) on the RTX3060 server at ~25 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ComputeDevice", "JETSON_NANO", "RTX3060_SERVER", "RYZEN9_CPU"]


@dataclass(frozen=True)
class ComputeDevice:
    """One execution platform.

    Attributes
    ----------
    name:
        Human-readable identifier.
    effective_gflops:
        Sustained detection throughput in GFLOP/s.
    overhead_s:
        Fixed per-inference overhead (pre/post-processing, memory traffic).
    """

    name: str
    effective_gflops: float
    overhead_s: float = 0.002

    def __post_init__(self) -> None:
        if self.effective_gflops <= 0.0:
            raise ConfigurationError("effective_gflops must be > 0")
        if self.overhead_s < 0.0:
            raise ConfigurationError("overhead_s must be >= 0")

    def inference_latency(self, flops: float) -> float:
        """Seconds to run one forward pass of ``flops`` floating ops."""
        if flops < 0.0:
            raise ConfigurationError("flops must be >= 0")
        return self.overhead_s + flops / (self.effective_gflops * 1e9)


#: NVIDIA Jetson Nano — the paper's edge device (Sec. VI.A).
JETSON_NANO = ComputeDevice(name="jetson-nano", effective_gflops=125.0)

#: RTX3060 + Ryzen9 5900HX — the paper's server / cloud machine.
RTX3060_SERVER = ComputeDevice(name="rtx3060-server", effective_gflops=2600.0)

#: The server's CPU alone (used for ablations).
RYZEN9_CPU = ComputeDevice(name="ryzen9-5900hx", effective_gflops=250.0)
