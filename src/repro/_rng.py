"""Deterministic random-number plumbing.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`.  This module centralises how generators are
derived so that:

* the same global seed always reproduces the same datasets, detections and
  tables, and
* a detector's output for a given image is a pure function of
  ``(global seed, detector name, image id)`` — re-running the small model on
  an image during discrimination and again during evaluation yields the
  *identical* boxes, exactly as a deterministic neural network would.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default global seed used by the experiment harness when none is supplied.
DEFAULT_SEED = 20230701


def _stable_digest(*parts: object) -> int:
    """Return a stable 64-bit integer digest of ``parts``.

    Python's built-in ``hash`` is salted per process, so it cannot be used for
    reproducible seeding.  We hash the ``repr`` of each part with SHA-256 and
    fold the digest down to 64 bits.
    """
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


def generator_for(seed: int, *scope: object) -> np.random.Generator:
    """Create a generator deterministically scoped to ``(seed, *scope)``.

    Parameters
    ----------
    seed:
        The experiment-wide seed.
    scope:
        Any hashable-by-repr identifiers, e.g. ``("detector", "ssd300",
        image_id)``.  Different scopes yield independent streams.
    """
    return np.random.default_rng(_stable_digest(seed, *scope))


def spawn(rng: np.random.Generator, *scope: object) -> np.random.Generator:
    """Derive a child generator from ``rng`` scoped by ``scope``.

    The child is seeded from a draw of ``rng`` combined with the scope digest,
    so sibling children with distinct scopes are independent.
    """
    base = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(_stable_digest(base, *scope))
