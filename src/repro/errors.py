"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so that callers can catch
any library failure with a single ``except`` clause while still being able to
distinguish configuration mistakes from runtime data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class GeometryError(ReproError):
    """A bounding-box array is malformed (wrong shape, inverted corners...)."""


class DatasetError(ReproError):
    """A dataset could not be generated or a split name is unknown."""


class CalibrationError(ReproError):
    """Profile or threshold calibration failed to converge."""


class RegistryError(ReproError):
    """An unknown name was looked up in a registry (models, datasets...)."""


class RuntimeModelError(ReproError):
    """The edge-cloud runtime was asked to do something inconsistent."""
