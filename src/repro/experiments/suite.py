"""Suite-level fan-out: overlap whole detection artifacts on the shared pool.

:mod:`repro.runtime.parallel` parallelises *within* one split (contiguous
image-range shards of a single ``detections()`` call).  The table/figure
suite, however, consumes dozens of distinct ``(model, setting, split)``
artifacts — and until this module they were produced strictly one after
another, leaving the pool idle between artifacts.  The scheduler here lifts
the fan-out one level: it plans every artifact's cache shards up front,
submits *all* missing shards of *all* artifacts to the harness's single
persistent :class:`~repro.runtime.pool.WorkerPool`, and overlaps models and
settings rather than only image ranges.

Guarantees (enforced bit-for-bit by ``tests/test_suite_scheduler.py`` and
the ``suite-parallel`` CI job):

* **Exactness** — every shard is the same pure function of
  ``(seed, profile, image id)`` the serial path computes, and shards are
  assembled in the same range order, so the artifacts are byte-identical to
  ``Harness.detections`` run serially.
* **Cache reuse** — warm disk shards are loaded in the parent and never
  resubmitted; cold shards are persisted as they complete, so an
  interrupted run keeps every finished shard.
* **Deterministic ordering** — results are returned keyed in first-request
  order regardless of worker completion order.
"""

from __future__ import annotations

from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.detection.batch import DetectionBatch
from repro.experiments import figures as _figures
from repro.experiments import tables as _tables
from repro.experiments.figures import all_figures
from repro.experiments.harness import Harness
from repro.experiments.results import FigureResult, TableResult
from repro.experiments.tables import all_tables
from repro.runtime.parallel import (
    DEFAULT_MIN_SHARD_IMAGES,
    _detect_task,
    _discard_pending,
    _materialize,
    shard_spans,
    span_payload,
)

__all__ = [
    "Artifact",
    "SuiteResult",
    "suite_artifacts",
    "prefetch_detections",
    "run_suite",
]

#: A detection artifact key: ``(model, setting, split)``.
Artifact = tuple[str, str, str]


@dataclass
class SuiteResult:
    """Everything the experiment suite produced, in paper order."""

    tables: list[TableResult] = field(default_factory=list)
    figures: list[FigureResult] = field(default_factory=list)


def suite_artifacts(*, tables: bool = True, figures: bool = True) -> tuple[Artifact, ...]:
    """The distinct detection artifacts of the requested suite parts.

    Concatenates the declarative listings of
    :func:`repro.experiments.tables.detection_artifacts` and
    :func:`repro.experiments.figures.detection_artifacts`, deduplicated in
    first-use order (the figure artifacts are a subset of the table ones, so
    the full suite is exactly the table listing).
    """
    keys: list[Artifact] = []
    if tables:
        keys.extend(_tables.detection_artifacts())
    if figures:
        keys.extend(_figures.detection_artifacts())
    return _unique(keys)


def _unique(artifacts: Iterable[Artifact]) -> tuple[Artifact, ...]:
    ordered: list[Artifact] = []
    seen: set[Artifact] = set()
    for key in artifacts:
        model, setting, split = key
        key = (model, setting, split)
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return tuple(ordered)


@dataclass
class _ArtifactPlan:
    """One artifact's production state while its shards are in flight."""

    key: Artifact
    detector: object
    dataset: object
    spans: list[tuple[int, int]]
    shards: list[DetectionBatch | None]


def prefetch_detections(
    harness: Harness,
    artifacts: Sequence[Artifact] | None = None,
) -> dict[Artifact, DetectionBatch]:
    """Produce many detection artifacts at once on the shared worker pool.

    Plans every requested artifact (memoised ones are returned as-is, warm
    disk-cache shards are loaded in the parent), submits the union of all
    missing cache shards to ``harness.pool()``, persists each shard the
    moment it completes, and assembles the artifacts in deterministic
    first-request order.  Afterwards ``harness.detections(...)`` hits the
    memo cache for every prefetched key.

    With a serial pool (``workers`` resolving to 1) the submissions run
    inline in submission order — the result is identical either way, only
    wall time changes.
    """
    keys = _unique(artifacts if artifacts is not None else suite_artifacts())
    pool = harness.pool()
    plans: dict[Artifact, _ArtifactPlan] = {}
    work = []
    for key in keys:
        if key in harness._detections:
            continue
        model, setting, split = key
        dataset = harness.dataset(setting, split)
        detector = harness.detector(model, setting)
        spans, shards, missing = harness._production_state(detector, dataset)
        plan = _ArtifactPlan(key, detector, dataset, spans, shards)
        plans[key] = plan
        for index in missing:
            work.append((plan, index))
    # When there are fewer missing cache spans than workers (few artifacts,
    # or a split that fits in one shard), sub-shard each span so the pool
    # still fills — the cross-artifact analogue of run_split's within-split
    # sharding.  Sub-batches are concatenated in range order, so the stored
    # shard stays bit-for-bit identical either way.
    per_span = 1
    if pool.parallel and work:
        per_span = -(-pool.workers // len(work))  # ceil
    transport = pool.shm_transport
    pending = {}
    for plan, index in work:
        lo, hi = plan.spans[index]
        pieces = min(per_span, max(1, (hi - lo) // DEFAULT_MIN_SHARD_IMAGES))
        records = plan.dataset.records
        subs = shard_spans(hi - lo, pieces)
        parts: list[DetectionBatch | None] = [None] * len(subs)
        for position, (sub_lo, sub_hi) in enumerate(subs):
            source, span_arg = span_payload(pool, records, (lo + sub_lo, lo + sub_hi))
            future = pool.submit(_detect_task, plan.detector, source, span_arg, transport)
            pending[future] = (plan, index, position, parts)
    # Drain in completion order, persisting each cache shard the moment its
    # last sub-batch lands so an interrupted run keeps every finished shard.
    # On any error the outstanding futures are drained and their shared
    # segments unlinked before the exception propagates.
    outstanding = set(pending)
    try:
        for future in as_completed(pending):
            outstanding.discard(future)
            plan, index, position, parts = pending[future]
            parts[position] = _materialize(future.result())
            if all(part is not None for part in parts):
                if len(parts) == 1:
                    batch = parts[0]
                else:
                    batch = DetectionBatch.concat(parts, detector=plan.detector.name)
                plan.shards[index] = batch
                harness._store_shard(plan.detector, plan.dataset, plan.spans[index], batch)
    except BaseException:
        _discard_pending(outstanding)
        raise
    results: dict[Artifact, DetectionBatch] = {}
    for key in keys:
        plan = plans.get(key)
        if plan is not None:
            harness._detections[key] = harness._assemble(plan.detector, plan.shards)
        results[key] = harness.detections(*key)
    return results


def run_suite(
    harness: Harness,
    *,
    tables: bool = True,
    figures: bool = True,
) -> SuiteResult:
    """Run the table/figure suite with detection production fanned out.

    Prefetches every detection artifact the requested suite parts consume
    (overlapping models, settings and splits on the harness pool), then runs
    the table and figure builders — which now hit the memo cache for all
    expensive artifacts — in paper order.
    """
    prefetch_detections(harness, suite_artifacts(tables=tables, figures=figures))
    return SuiteResult(
        tables=all_tables(harness) if tables else [],
        figures=all_figures(harness) if figures else [],
    )
