"""Experiment harness: shared datasets, detectors, detections and fits.

Every table and figure draws on the same handful of expensive artifacts —
materialised splits, calibrated detectors, per-split detections and fitted
discriminators.  The harness memoises all of them (detections additionally
on disk), so the full benchmark suite runs each model/setting combination
exactly once regardless of how many tables consume it.

Detection production is sharded two ways:

* **Disk cache shards** — the on-disk cache stores one ``.npz`` per
  contiguous image range of ``cache_shard_size`` images (fingerprinted over
  the shard's own records), so a partially warm cache recomputes only the
  missing ranges and differently-sized subset runs share their common
  full shards.
* **Worker processes** — missing shards are detected on a harness-lifetime
  :class:`~repro.runtime.pool.WorkerPool` via :mod:`repro.runtime.parallel`.
  The worker count comes from ``HarnessConfig.workers`` when set, else the
  ``REPRO_WORKERS`` environment variable, else 1 (serial).  Detections are a
  pure function of ``(seed, profile, image id)``, so the parallel output is
  bit-for-bit identical to the serial loop.

The pool starts lazily on the first parallel production and is reused by
every later ``detections()`` call (and by the suite scheduler in
:mod:`repro.experiments.suite`, which fans whole artifacts out across it).
Use the harness as a context manager — or call :meth:`Harness.close` — to
shut the workers down deterministically; a serial harness never starts any.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro._rng import DEFAULT_SEED
from repro.core.discriminator import DifficultCaseDiscriminator, DiscriminatorFitReport
from repro.core.system import SmallBigSystem, SystemRun
from repro.data.datasets import DATASET_SETTINGS, Dataset, ImageRecord, load_dataset
from repro.detection.batch import DetectionBatch
from repro.errors import GeometryError
from repro.metrics.counting import CountSummary, count_summary
from repro.metrics.voc_ap import mean_average_precision
from repro.runtime.parallel import (
    DEFAULT_MIN_SHARD_IMAGES,
    detect_records,
    run_spans,
    shard_spans,
)
from repro.runtime.pool import WorkerPool, register_inherited, resolve_workers
from repro.simulate.detector import SimulatedDetector
from repro.simulate.presets import make_detector

__all__ = ["HarnessConfig", "Harness"]


@dataclass(frozen=True)
class HarnessConfig:
    """Sizing, caching and parallelism knobs for an experiment run.

    ``quick()`` returns a configuration small enough for unit tests (a few
    hundred images per split) while exercising every code path.

    Attributes
    ----------
    workers:
        Process count for detection production.  ``None`` defers to the
        ``REPRO_WORKERS`` environment variable (unset/empty means 1, i.e.
        serial).  Any value yields identical detections — parallelism only
        changes wall time.
    cache_shard_size:
        Image-range width of one on-disk cache shard.
    mmap_cache:
        Store cache shards as uncompressed one-``.npy``-per-column
        directories and read them back with ``np.load(mmap_mode="r")``:
        warm-cache runs map the shard pages instead of decompressing and
        materialising every ``.npz`` they touch.  The two layouts are
        distinct cache entries — flipping the flag recomputes (or re-stores)
        shards rather than silently reading the other format.
    """

    seed: int = DEFAULT_SEED
    train_images: int = 5000
    test_fraction: float = 1.0
    cache_dir: str | None = None
    workers: int | None = None
    cache_shard_size: int = 1024
    mmap_cache: bool = False

    @classmethod
    def quick(cls) -> "HarnessConfig":
        """A fast configuration for tests: ~600 train / ~15 % test images."""
        return cls(train_images=600, test_fraction=0.08)

    def resolve_cache_dir(self) -> Path | None:
        """Directory for the on-disk detection cache (None disables)."""
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        env = os.environ.get("REPRO_CACHE")
        if env:
            return Path(env)
        return Path(__file__).resolve().parents[3] / ".repro_cache"

    def resolve_workers(self) -> int:
        """Effective worker count (explicit > ``REPRO_WORKERS`` > 1)."""
        return resolve_workers(self.workers)


@dataclass
class Harness:
    """Memoising façade over the whole pipeline.

    Also owns the (single) process pool used for parallel detection
    production: :meth:`pool` creates it lazily on first use and every
    ``detections()`` call — and the suite scheduler — submits to the same
    one, so process startup is paid at most once per harness lifetime.  Use
    the harness as a context manager (or call :meth:`close`) to shut the
    workers down.
    """

    config: HarnessConfig = field(default_factory=HarnessConfig)
    _datasets: dict = field(default_factory=dict, repr=False)
    _detections: dict = field(default_factory=dict, repr=False)
    _discriminators: dict = field(default_factory=dict, repr=False)
    _maps: dict = field(default_factory=dict, repr=False)
    _counts: dict = field(default_factory=dict, repr=False)
    _fleet: dict = field(default_factory=dict, repr=False)
    _pool: WorkerPool | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def pool(self) -> WorkerPool:
        """The shared worker pool (created lazily, at most one per lifetime).

        The pool itself starts its executor only on the first parallel
        submission, so asking for it is free; a serial configuration
        (``workers`` resolving to 1) yields a pool that runs everything
        inline and never forks.  After :meth:`close` the same (closed) pool
        is returned: parallel production then raises
        :class:`~repro.errors.ConfigurationError` rather than silently
        forking a second executor the context manager would never reap.
        """
        if self._pool is None:
            self._pool = WorkerPool(self.config.resolve_workers())
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a no-op when serial)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "Harness":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    def dataset(self, setting: str, split: str) -> Dataset:
        """Materialise (once) a split at the harness's configured size."""
        key = (setting, split)
        if key not in self._datasets:
            entry = DATASET_SETTINGS[setting]
            if split == "train":
                fraction = min(1.0, self.config.train_images / entry.train_size)
            else:
                fraction = self.config.test_fraction
            dataset = load_dataset(setting, split, seed=self.config.seed, fraction=fraction)
            if self.config.resolve_workers() > 1:
                # Park the record list for fork inheritance: workers forked
                # after this point resolve (token, span) tasks without the
                # parent pickling a single record out.  Splits materialised
                # only after the pool starts simply fall back to pickled
                # slices (span_payload's matrix) — still bit-for-bit.
                register_inherited(dataset.records)
            self._datasets[key] = dataset
        return self._datasets[key]

    def detector(self, model: str, setting: str) -> SimulatedDetector:
        """Calibrated detector (preset-cached)."""
        return make_detector(model, setting, seed=self.config.seed)

    def detections(self, model: str, setting: str, split: str) -> DetectionBatch:
        """Raw detections of a model over a split, memory- and disk-cached.

        Returned as a :class:`DetectionBatch` — the on-disk layout loads
        straight into the batch's flat arrays, and per-image views are
        available through the batch's sequence protocol.  The disk cache is
        sharded by image range: only shards missing (or corrupt) on disk are
        recomputed, in parallel when the harness is configured with more
        than one worker.
        """
        key = (model, setting, split)
        if key in self._detections:
            return self._detections[key]
        dataset = self.dataset(setting, split)
        detector = self.detector(model, setting)
        self._detections[key] = self._produce(detector, dataset)
        return self._detections[key]

    def discriminator(
        self,
        small: str,
        big: str,
        setting: str,
    ) -> tuple[DifficultCaseDiscriminator, DiscriminatorFitReport]:
        """Fit (once) the discriminator for a model pair on a train split."""
        key = (small, big, setting)
        if key not in self._discriminators:
            train = self.dataset(setting, "train")
            self._discriminators[key] = DifficultCaseDiscriminator.fit(
                self.detections(small, setting, "train"),
                self.detections(big, setting, "train"),
                train.truth_batch,
            )
        return self._discriminators[key]

    # ------------------------------------------------------------------ #
    # system runs
    # ------------------------------------------------------------------ #
    def system_run(
        self,
        small: str,
        big: str,
        setting: str,
        *,
        uploaded: np.ndarray | None = None,
    ) -> SystemRun:
        """Serve the test split: ours when ``uploaded`` is None, otherwise a
        baseline policy's externally supplied mask."""
        discriminator, _ = self.discriminator(small, big, setting)
        system = SmallBigSystem(
            small_model=self.detector(small, setting),
            big_model=self.detector(big, setting),
            discriminator=discriminator,
        )
        return system.run(
            self.dataset(setting, "test"),
            small_detections=self.detections(small, setting, "test"),
            big_detections=self.detections(big, setting, "test"),
            uploaded=uploaded,
        )

    # ------------------------------------------------------------------ #
    # memoised metrics
    # ------------------------------------------------------------------ #
    def model_map(self, model: str, setting: str) -> float:
        """Served mAP (percent) of one model on the test split."""
        key = (model, setting)
        if key not in self._maps:
            dataset = self.dataset(setting, "test")
            served = self.detections(model, setting, "test").above(0.5)
            self._maps[key] = mean_average_precision(served, dataset.truth_batch, dataset.num_classes)
        return self._maps[key]

    def model_counts(self, model: str, setting: str) -> CountSummary:
        """Detected-object count of one model on the test split."""
        key = (model, setting)
        if key not in self._counts:
            dataset = self.dataset(setting, "test")
            self._counts[key] = count_summary(self.detections(model, setting, "test"), dataset.truth_batch)
        return self._counts[key]

    def fleet_outcomes(self, *, cameras=None, config=None, window_s=None) -> tuple:
        """Fleet policy comparison (Table XVIII / Figure 10), memoised.

        Thin cache owner over
        :func:`repro.experiments.fleet.compute_fleet_outcomes` — the fleet
        runs are the suite's heaviest non-detection workload, and the table
        and figure consume identical inputs.  Defaults resolve to the fleet
        module's reported configuration.
        """
        from repro.experiments import fleet as _fleet

        cameras = _fleet.FLEET_CAMERAS if cameras is None else cameras
        config = _fleet.fleet_config() if config is None else config
        window_s = _fleet.FLEET_WINDOW_S if window_s is None else window_s
        key = (cameras, config, window_s)
        if key not in self._fleet:
            self._fleet[key] = _fleet.compute_fleet_outcomes(self, cameras=cameras, config=config, window_s=window_s)
        return self._fleet[key]

    def admission_outcomes(self, *, cameras=None, config=None, window_s=None) -> tuple:
        """Admission-policy comparison (Table XIX / Figure 11), memoised.

        Cache owner over
        :func:`repro.experiments.fleet.compute_admission_outcomes`, exactly
        as :meth:`fleet_outcomes` is for the policy comparison — the table
        and the figure consume identical runs.
        """
        from repro.experiments import fleet as _fleet

        cameras = _fleet.FLEET_CAMERAS if cameras is None else cameras
        config = _fleet.fleet_config() if config is None else config
        window_s = _fleet.FLEET_WINDOW_S if window_s is None else window_s
        key = ("admission", cameras, config, window_s)
        if key not in self._fleet:
            self._fleet[key] = _fleet.compute_admission_outcomes(
                self, cameras=cameras, config=config, window_s=window_s
            )
        return self._fleet[key]

    def availability_outcomes(self, *, cameras=None, config=None, window_s=None) -> tuple:
        """Availability comparison (Table XX / Figure 12), memoised.

        Cache owner over
        :func:`repro.experiments.fleet.compute_availability_outcomes` —
        outage schedule x serving scheme x escalation policy on the shared
        fleet, consumed identically by the table and the figure.
        """
        from repro.experiments import fleet as _fleet

        cameras = _fleet.FLEET_CAMERAS if cameras is None else cameras
        config = _fleet.fleet_config() if config is None else config
        window_s = _fleet.FLEET_WINDOW_S if window_s is None else window_s
        key = ("availability", cameras, config, window_s)
        if key not in self._fleet:
            self._fleet[key] = _fleet.compute_availability_outcomes(
                self, cameras=cameras, config=config, window_s=window_s
            )
        return self._fleet[key]

    def control_outcomes(self, *, cameras=None, config=None, window_s=None) -> tuple:
        """Closed-loop control-plane comparison (Table XXI / Figure 13), memoised.

        Cache owner over
        :func:`repro.experiments.fleet.compute_control_outcomes` — the
        estimated/coordinated admission ladder on the saturated fleet plus
        the static-vs-adaptive drift fleet, consumed identically by the
        table and the figure.
        """
        from repro.experiments import fleet as _fleet

        cameras = _fleet.FLEET_CAMERAS if cameras is None else cameras
        config = _fleet.fleet_config() if config is None else config
        window_s = _fleet.FLEET_WINDOW_S if window_s is None else window_s
        key = ("control", cameras, config, window_s)
        if key not in self._fleet:
            self._fleet[key] = _fleet.compute_control_outcomes(
                self, cameras=cameras, config=config, window_s=window_s
            )
        return self._fleet[key]

    def network_outcomes(self, *, cameras=None, config=None, window_s=None) -> tuple:
        """Trace-driven network comparison (Table XXII / Figure 14), memoised.

        Cache owner over
        :func:`repro.experiments.fleet.compute_network_outcomes` — every
        bandwidth profile x serving scheme x admission policy on the shared
        fleet, consumed identically by the table and the figure.
        """
        from repro.experiments import fleet as _fleet

        cameras = _fleet.FLEET_CAMERAS if cameras is None else cameras
        config = _fleet.fleet_config() if config is None else config
        window_s = _fleet.FLEET_WINDOW_S if window_s is None else window_s
        key = ("network", cameras, config, window_s)
        if key not in self._fleet:
            self._fleet[key] = _fleet.compute_network_outcomes(
                self, cameras=cameras, config=config, window_s=window_s
            )
        return self._fleet[key]

    # ------------------------------------------------------------------ #
    # detection production (sharded disk cache + parallel runner)
    # ------------------------------------------------------------------ #
    def _produce(
        self, detector: SimulatedDetector, dataset: Dataset
    ) -> DetectionBatch:
        """Assemble a split's detections from cache shards, computing (and
        persisting) only the missing image ranges."""
        spans, shards, missing = self._production_state(detector, dataset)
        if missing:
            missing_spans = [spans[index] for index in missing]

            def store(position: int, batch: DetectionBatch) -> None:
                # Runs as each shard completes, so an interrupted cold run
                # keeps every shard already finished.
                self._store_shard(detector, dataset, missing_spans[position], batch)

            computed = self._detect_spans(detector, dataset, missing_spans, store)
            for index, batch in zip(missing, computed):
                shards[index] = batch
        return self._assemble(detector, shards)

    def _production_state(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
    ) -> tuple[list[tuple[int, int]], list[DetectionBatch | None], list[int]]:
        """Cache spans, warm shard loads, and the indices still missing.

        Shared by :meth:`_produce` (one artifact at a time) and the suite
        scheduler in :mod:`repro.experiments.suite` (which fans the missing
        spans of *many* artifacts out across the shared pool at once).
        """
        spans = self._cache_spans(len(dataset))
        shards: list[DetectionBatch | None] = [self._load_shard(detector, dataset, span) for span in spans]
        missing = [index for index, shard in enumerate(shards) if shard is None]
        return spans, shards, missing

    def _assemble(self, detector: SimulatedDetector, shards: Sequence[DetectionBatch]) -> DetectionBatch:
        """Concatenate completed cache shards into one split batch."""
        if not shards:
            return DetectionBatch.from_list([], detector=detector.name)
        if len(shards) == 1:
            return shards[0]
        return DetectionBatch.concat(shards, detector=detector.name)

    def _cache_spans(self, count: int) -> list[tuple[int, int]]:
        """Contiguous image ranges backing one cache shard each."""
        size = max(1, self.config.cache_shard_size)
        return [(lo, min(lo + size, count)) for lo in range(0, count, size)]

    def _detect_spans(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
        spans: list[tuple[int, int]],
        on_result,
    ) -> list[DetectionBatch]:
        """Detect the given image ranges, one batch per range.

        A single missing range parallelises internally (sub-sharded across
        the shared pool's workers); several missing ranges parallelise at
        range granularity, and ``on_result(position, batch)`` fires as each
        range completes so it is persisted as its cache shard right away.
        Workers receive ``(detector, span)`` against the dataset's
        fork-inherited record snapshot — the parent never slices a record
        list per shard unless the pool predates the snapshot.
        """
        records = dataset.records
        pool = self.pool()
        if len(spans) == 1:
            lo, hi = spans[0]
            effective = min(pool.workers, max(1, (hi - lo) // DEFAULT_MIN_SHARD_IMAGES))
            if effective <= 1:
                batch = detect_records(detector, records, (lo, hi))
            else:
                subs = [(lo + sub_lo, lo + sub_hi) for sub_lo, sub_hi in shard_spans(hi - lo, effective)]
                parts = run_spans(detector, records, subs, pool=pool)
                batch = DetectionBatch.concat(parts, detector=detector.name)
            on_result(0, batch)
            return [batch]
        # Same tiny-split fallback as run_split: don't fork workers when the
        # total missing work is under one pool-worthy shard per worker.
        total = sum(hi - lo for lo, hi in spans)
        workers = min(self.config.resolve_workers(), max(1, total // DEFAULT_MIN_SHARD_IMAGES))
        return run_spans(
            detector,
            records,
            spans,
            pool=pool if workers > 1 else None,
            on_result=on_result,
        )

    # ------------------------------------------------------------------ #
    # disk cache
    # ------------------------------------------------------------------ #
    @staticmethod
    def _records_digest(records: Sequence[ImageRecord]) -> bytes:
        """Cheap content digest of an image range.

        Hashes every record's object *count* plus the full annotation of a
        strided sample (~8 records per shard, endpoints included).  Any edit
        that changes a per-image count invalidates the shard wherever it
        lands; pure coordinate/label jitter is only caught on the sampled
        records — hashing every box would cost as much as recomputing small
        shards, and the experiment generators key every scene off the seed
        that is already part of the fingerprint."""
        counts = np.fromiter(
            (len(record.truth) for record in records),
            dtype=np.int64,
            count=len(records),
        )
        hasher = hashlib.sha256(counts.tobytes())
        if records:
            stride = max(1, len(records) // 8)
            for index in list(range(0, len(records), stride)) + [len(records) - 1]:
                record = records[index]
                hasher.update(record.image_id.encode())
                hasher.update(record.truth.boxes.tobytes())
                hasher.update(record.truth.labels.tobytes())
        return hasher.digest()

    def _shard_path(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
        span: tuple[int, int],
    ) -> Path | None:
        root = self.config.resolve_cache_dir()
        if root is None:
            return None
        lo, hi = span
        fingerprint = hashlib.sha256(
            repr(
                (
                    self.config.seed,
                    detector.profile,
                    dataset.name,
                    dataset.split,
                    lo,
                    hi,
                )
            ).encode()
            + self._records_digest(dataset.records[lo:hi])
        ).hexdigest()[:20]
        stem = f"det-{fingerprint}-{lo:06d}-{hi:06d}"
        # The two on-disk layouts are distinct cache entries: compressed
        # single-file .npz vs a directory of raw per-column .npy files that
        # numpy can memory-map (zip containers cannot be mmapped).
        if self.config.mmap_cache:
            return root / f"{stem}.mm"
        return root / f"{stem}.npz"

    def _load_shard(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
        span: tuple[int, int],
    ) -> DetectionBatch | None:
        path = self._shard_path(detector, dataset, span)
        if path is None or not path.exists():
            return None
        lo, hi = span
        try:
            if self.config.mmap_cache:
                batch = DetectionBatch.load_npy(path, dataset.image_ids[lo:hi], detector=detector.name)
            else:
                batch = DetectionBatch.load(path, dataset.image_ids[lo:hi], detector=detector.name)
        except (
            OSError,
            KeyError,
            ValueError,
            EOFError,
            zipfile.BadZipFile,
            GeometryError,
        ):
            return None  # corrupt/stale cache entries are recomputed
        return batch

    def _store_shard(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
        span: tuple[int, int],
        detections: DetectionBatch,
    ) -> None:
        path = self._shard_path(detector, dataset, span)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            if self.config.mmap_cache:
                detections.save_npy(path)
            else:
                detections.save(path)
        except OSError:
            pass  # cache is best effort
