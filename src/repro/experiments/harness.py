"""Experiment harness: shared datasets, detectors, detections and fits.

Every table and figure draws on the same handful of expensive artifacts —
materialised splits, calibrated detectors, per-split detections and fitted
discriminators.  The harness memoises all of them (detections additionally
on disk), so the full benchmark suite runs each model/setting combination
exactly once regardless of how many tables consume it.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._rng import DEFAULT_SEED
from repro.core.discriminator import DifficultCaseDiscriminator, DiscriminatorFitReport
from repro.core.system import SmallBigSystem, SystemRun
from repro.data.datasets import DATASET_SETTINGS, Dataset, load_dataset
from repro.detection.batch import DetectionBatch
from repro.errors import GeometryError
from repro.metrics.counting import CountSummary, count_summary
from repro.metrics.voc_ap import mean_average_precision
from repro.simulate.detector import SimulatedDetector
from repro.simulate.presets import make_detector

__all__ = ["HarnessConfig", "Harness"]


@dataclass(frozen=True)
class HarnessConfig:
    """Sizing and caching knobs for an experiment run.

    ``quick()`` returns a configuration small enough for unit tests (a few
    hundred images per split) while exercising every code path.
    """

    seed: int = DEFAULT_SEED
    train_images: int = 5000
    test_fraction: float = 1.0
    cache_dir: str | None = None

    @classmethod
    def quick(cls) -> "HarnessConfig":
        """A fast configuration for tests: ~600 train / ~15 % test images."""
        return cls(train_images=600, test_fraction=0.08)

    def resolve_cache_dir(self) -> Path | None:
        """Directory for the on-disk detection cache (None disables)."""
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        env = os.environ.get("REPRO_CACHE")
        if env:
            return Path(env)
        return Path(__file__).resolve().parents[3] / ".repro_cache"


@dataclass
class Harness:
    """Memoising façade over the whole pipeline."""

    config: HarnessConfig = field(default_factory=HarnessConfig)
    _datasets: dict = field(default_factory=dict, repr=False)
    _detections: dict = field(default_factory=dict, repr=False)
    _discriminators: dict = field(default_factory=dict, repr=False)
    _maps: dict = field(default_factory=dict, repr=False)
    _counts: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    def dataset(self, setting: str, split: str) -> Dataset:
        """Materialise (once) a split at the harness's configured size."""
        key = (setting, split)
        if key not in self._datasets:
            entry = DATASET_SETTINGS[setting]
            if split == "train":
                fraction = min(1.0, self.config.train_images / entry.train_size)
            else:
                fraction = self.config.test_fraction
            self._datasets[key] = load_dataset(
                setting, split, seed=self.config.seed, fraction=fraction
            )
        return self._datasets[key]

    def detector(self, model: str, setting: str) -> SimulatedDetector:
        """Calibrated detector (preset-cached)."""
        return make_detector(model, setting, seed=self.config.seed)

    def detections(self, model: str, setting: str, split: str) -> DetectionBatch:
        """Raw detections of a model over a split, memory- and disk-cached.

        Returned as a :class:`DetectionBatch` — the on-disk layout loads
        straight into the batch's flat arrays, and per-image views are
        available through the batch's sequence protocol.
        """
        key = (model, setting, split)
        if key in self._detections:
            return self._detections[key]
        dataset = self.dataset(setting, split)
        detector = self.detector(model, setting)
        cached = self._load_disk(detector, dataset)
        if cached is None:
            cached = DetectionBatch.from_list(
                detector.detect_split(dataset), detector=detector.name
            )
            self._store_disk(detector, dataset, cached)
        self._detections[key] = cached
        return cached

    def discriminator(
        self, small: str, big: str, setting: str
    ) -> tuple[DifficultCaseDiscriminator, DiscriminatorFitReport]:
        """Fit (once) the discriminator for a model pair on a train split."""
        key = (small, big, setting)
        if key not in self._discriminators:
            train = self.dataset(setting, "train")
            self._discriminators[key] = DifficultCaseDiscriminator.fit(
                self.detections(small, setting, "train"),
                self.detections(big, setting, "train"),
                train.truths,
            )
        return self._discriminators[key]

    # ------------------------------------------------------------------ #
    # system runs
    # ------------------------------------------------------------------ #
    def system_run(
        self,
        small: str,
        big: str,
        setting: str,
        *,
        uploaded: np.ndarray | None = None,
    ) -> SystemRun:
        """Serve the test split: ours when ``uploaded`` is None, otherwise a
        baseline policy's externally supplied mask."""
        discriminator, _ = self.discriminator(small, big, setting)
        system = SmallBigSystem(
            small_model=self.detector(small, setting),
            big_model=self.detector(big, setting),
            discriminator=discriminator,
        )
        return system.run(
            self.dataset(setting, "test"),
            small_detections=self.detections(small, setting, "test"),
            big_detections=self.detections(big, setting, "test"),
            uploaded=uploaded,
        )

    # ------------------------------------------------------------------ #
    # memoised metrics
    # ------------------------------------------------------------------ #
    def model_map(self, model: str, setting: str) -> float:
        """Served mAP (percent) of one model on the test split."""
        key = (model, setting)
        if key not in self._maps:
            dataset = self.dataset(setting, "test")
            served = self.detections(model, setting, "test").above(0.5)
            self._maps[key] = mean_average_precision(
                served, dataset.truths, dataset.num_classes
            )
        return self._maps[key]

    def model_counts(self, model: str, setting: str) -> CountSummary:
        """Detected-object count of one model on the test split."""
        key = (model, setting)
        if key not in self._counts:
            dataset = self.dataset(setting, "test")
            self._counts[key] = count_summary(
                self.detections(model, setting, "test"), dataset.truths
            )
        return self._counts[key]

    # ------------------------------------------------------------------ #
    # disk cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, detector: SimulatedDetector, dataset: Dataset) -> Path | None:
        root = self.config.resolve_cache_dir()
        if root is None:
            return None
        content_probe = b""
        if dataset.records:
            content_probe = (
                dataset.records[0].truth.boxes.tobytes()
                + dataset.records[-1].truth.boxes.tobytes()
            )
        fingerprint = hashlib.sha256(
            repr(
                (
                    self.config.seed,
                    detector.profile,
                    dataset.name,
                    dataset.split,
                    len(dataset),
                    dataset.total_objects,
                )
            ).encode()
            + content_probe
        ).hexdigest()[:20]
        return root / f"det-{fingerprint}.npz"

    def _load_disk(
        self, detector: SimulatedDetector, dataset: Dataset
    ) -> DetectionBatch | None:
        path = self._cache_path(detector, dataset)
        if path is None or not path.exists():
            return None
        try:
            batch = DetectionBatch.load(
                path,
                tuple(record.image_id for record in dataset.records),
                detector=detector.name,
            )
        except (
            OSError,
            KeyError,
            ValueError,
            EOFError,
            zipfile.BadZipFile,
            GeometryError,
        ):
            return None  # corrupt/stale cache entries are recomputed
        return batch

    def _store_disk(
        self,
        detector: SimulatedDetector,
        dataset: Dataset,
        detections: DetectionBatch,
    ) -> None:
        path = self._cache_path(detector, dataset)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            detections.save(path)
        except OSError:
            pass  # cache is best effort
