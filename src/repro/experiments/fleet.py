"""Fleet-scale serving comparison: N cameras, one uplink, one cloud GPU.

The extension workload behind Table XVIII and Figure 10: every offload
policy — the difficult-case discriminator, the Sec. VI.E baselines at the
discriminator's measured upload quota, and the degenerate edge/cloud-only
schemes — drives the *same* eight-camera helmet-site fleet
(:func:`repro.runtime.serving.simulate_fleet`) over the Table XI deployment,
and the served streams are scored online with
:func:`repro.metrics.rolling.rolling_quality`.  Saturation of the shared
WLAN uplink therefore shows up where it matters: as measured rolling mAP
and object-count loss, not just as latency percentiles.

Table XIX and Figure 11 extend the same fleet along the *admission* axis:
each serving scheme runs under every camera-buffer admission policy
(:class:`~repro.runtime.serving.DropNewest` /
:class:`~repro.runtime.serving.DropOldest` /
:class:`~repro.runtime.serving.DeadlineAware`), and the rolling evaluation
at the freshness deadline shows what shedding policy the buffer should run:
under saturation, *which* frames a camera keeps decides whether served
results are fresh enough to count at all.

Table XX and Figure 12 extend it along the *availability* axis: the shared
uplink becomes an :class:`~repro.runtime.network.UnreliableLink` (scheduled
outages plus per-transfer loss), and each serving scheme runs under every
escalation policy (:class:`~repro.runtime.serving.EscalationPolicy` —
no-retry / drop-on-failure / a durable spool with exponential backoff).
Rolling quality without a freshness deadline then measures *eventual*
quality: what a durable escalation queue recovers after the outage that the
drop policies lose for good.

Table XXI and Figure 13 close the loop: estimated-time admission
(:class:`~repro.runtime.control.EstimatedDeadlineAware`) and fleet-wide
uplink coordination (:class:`~repro.runtime.control.UplinkCoordinator`)
climb toward the omniscient deadline policy on the saturated cloud-only
fleet using only each camera's own completion events, and adaptive offload
quotas (:class:`~repro.runtime.control.AdaptiveQuota`) hold a drifted
half-night fleet to the upload budget a congested uplink can actually
carry, where the statically fitted thresholds saturate it and go stale.

Table XXII and Figure 14 make the link itself time-varying: the shared
uplink carries a :class:`~repro.runtime.network.RateSchedule` (the bundled
``periodic_dip`` and ``lte_like`` traces from ``benchmarks/traces/``), and
each serving scheme runs under each admission policy — including the
schedule-aware vs constant-estimate variants of
:class:`~repro.runtime.control.EstimatedDeadlineAware` — so the grid shows
what folding the link schedule into every doom test buys once the rate
actually moves, and how much more gracefully the discriminator scheme rides
a bandwidth dip than cloud-only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.blur_upload import BlurUploadPolicy
from repro.baselines.confidence_upload import ConfidenceUploadPolicy
from repro.baselines.random_upload import RandomUploadPolicy
from repro.core.discriminator import DiscriminatorPolicy
from repro.data.degrade import DegradationModel
from repro.detection.batch import DetectionBatch
from repro.experiments.harness import Harness
from repro.metrics.rolling import RollingWindow, rolling_quality
from repro.runtime.control import AdaptiveQuota, EstimatedDeadlineAware, UplinkCoordinator
from repro.runtime.devices import JETSON_NANO, RTX3060_SERVER
from repro.runtime.network import WLAN, OutageSchedule, RateSchedule, UnreliableLink
from repro.runtime.serving import (
    AdmissionPolicy,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropNewest,
    DropOldest,
    EscalationPolicy,
    FleetReport,
    FleetSpec,
    StreamConfig,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    serve_fleet,
    simulate_fleet,
)
from repro.runtime.traces import bundled_trace
from repro.zoo.registry import build_model

__all__ = [
    "FLEET_CAMERAS",
    "FLEET_FRESHNESS_S",
    "FLEET_LOSS_PROBABILITY",
    "FLEET_SETTING",
    "FLEET_WINDOW_S",
    "DRIFT_BANDWIDTH_MBPS",
    "DRIFT_UPLOAD_BUDGET",
    "AdmissionOutcome",
    "AvailabilityOutcome",
    "ControlOutcome",
    "FleetOutcome",
    "NetworkOutcome",
    "admission_policies",
    "admission_policy_outcomes",
    "availability_outcomes",
    "compute_admission_outcomes",
    "compute_availability_outcomes",
    "compute_control_outcomes",
    "compute_fleet_outcomes",
    "compute_network_outcomes",
    "control_plane_outcomes",
    "drift_degradation",
    "escalation_policies",
    "fleet_config",
    "fleet_deployment",
    "fleet_policy_outcomes",
    "network_admissions",
    "network_outcomes",
    "network_profiles",
    "outage_schedules",
]

#: Cameras contending for the shared uplink/cloud in the reported fleet.
FLEET_CAMERAS = 8

#: The deployment's dataset (the paper's real-world Table XI setting).
FLEET_SETTING = "helmet"

#: Rolling-evaluation window width in simulated seconds.
FLEET_WINDOW_S = 8.0

#: Staleness deadline: a result older than this on delivery is a miss.  Site
#: monitoring tolerates a couple of seconds; queue-saturated schemes whose
#: results trail by tens of seconds score as misses, as an operator would.
FLEET_FRESHNESS_S = 2.0


@dataclass(frozen=True)
class FleetOutcome:
    """One policy's fleet run plus its rolling online quality."""

    policy: str
    report: FleetReport
    windows: list[RollingWindow]

    @property
    def mean_map(self) -> float:
        """Mean rolling mAP over windows that saw frames."""
        values = [w.map_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_count_error(self) -> float:
        """Mean rolling count-error percent over windows that saw frames."""
        values = [w.count_error_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0


def fleet_config() -> StreamConfig:
    """Per-camera workload: 1.5 fps Poisson arrivals for 40 s.

    Eight cameras offer ~12 fps fleet-wide — comfortably within every
    camera's edge accelerator, but far beyond what the shared WLAN uplink
    can carry if every frame crosses it.  That is the regime the paper's
    collaboration argument targets.
    """
    return StreamConfig(fps=1.5, poisson=True, duration_s=40.0, max_edge_queue=30)


def fleet_deployment(num_classes: int) -> Deployment:
    """The Table XI testbed: Jetson Nano edges, WLAN, RTX3060 server."""
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=num_classes).flops),
        big_model_flops=float(build_model("ssd", num_classes=num_classes).flops),
    )


def fleet_policy_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[FleetOutcome, ...]:
    """Fleet comparison outcomes, memoised by the harness.

    Convenience front door over :meth:`Harness.fleet_outcomes` (the cache
    owner), which delegates the actual runs to
    :func:`compute_fleet_outcomes`.
    """
    return harness.fleet_outcomes(cameras=cameras, config=config, window_s=window_s)


def compute_fleet_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[FleetOutcome, ...]:
    """Run the fleet under every offload policy, scored online.

    The four upload policies run through the shared
    :class:`~repro.runtime.serving.OffloadPolicy` protocol inside a
    collaborative-shaped scheme (the baselines at the discriminator's
    measured upload quota, the fair-bandwidth protocol of Tables XII-XVII);
    edge-only and cloud-only are their degenerate schemes.  Every run shares
    one arrival process per camera, so the comparison isolates the policy.

    Uncached — go through :meth:`Harness.fleet_outcomes` (or the
    :func:`fleet_policy_outcomes` front door) so Table XVIII and Figure 10
    consume the same runs.
    """
    if config is None:
        config = fleet_config()
    setting = FLEET_SETTING
    dataset = harness.dataset(setting, "test")
    small = harness.detections("small1", setting, "test")
    big = harness.detections("ssd", setting, "test")
    discriminator, _ = harness.discriminator("small1", "ssd", setting)
    quota = float(np.mean(discriminator.decide_split(small)))
    seed = harness.config.seed
    policies = [
        ("discriminator", DiscriminatorPolicy(discriminator)),
        ("random", RandomUploadPolicy(ratio=quota, seed=seed)),
        ("blur", BlurUploadPolicy(ratio=quota)),
        ("confidence", ConfidenceUploadPolicy(ratio=quota)),
    ]
    zeros = np.zeros(len(dataset), dtype=bool)
    entries = [
        ("edge-only", edge_only_scheme(), zeros, small),
        ("cloud-only", cloud_only_scheme(), ~zeros, big),
    ]
    for label, policy in policies:
        mask = policy.select(dataset, small)
        served = DetectionBatch.where(mask, big, small)
        entries.append((label, collaborative_scheme(policy, name=label), mask, served))

    deployment = fleet_deployment(dataset.num_classes)
    outcomes = []
    for label, scheme, mask, served in entries:
        # the mask each policy selected is passed through, so expensive
        # policies (blur renders every image) run select() exactly once
        report = simulate_fleet(
            scheme,
            deployment,
            dataset,
            config,
            cameras=cameras,
            mask=mask,
            detections=served,
            seed=seed,
        )
        windows = rolling_quality(
            report,
            dataset,
            window_s=window_s,
            duration_s=config.duration_s,
            freshness_s=FLEET_FRESHNESS_S,
        )
        outcomes.append(FleetOutcome(policy=label, report=report, windows=windows))
    return tuple(outcomes)


# --------------------------------------------------------------------- #
# Table XIX / Figure 11: admission policy x serving scheme
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdmissionOutcome:
    """One (serving scheme, admission policy) fleet run, scored online."""

    scheme: str
    admission: str
    report: FleetReport
    windows: list[RollingWindow]

    @property
    def mean_map(self) -> float:
        """Mean rolling mAP over windows that saw frames."""
        values = [w.map_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_count_error(self) -> float:
        """Mean rolling count-error percent over windows that saw frames."""
        values = [w.count_error_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def staleness(self) -> np.ndarray:
        """Result age (completion minus arrival, s) of every served frame."""
        ages = [camera.trace.latencies() for camera in self.report.cameras]
        return np.concatenate(ages) if ages else np.zeros(0)

    @property
    def mean_staleness_s(self) -> float:
        """Mean served-frame result age in seconds."""
        ages = self.staleness
        return float(ages.mean()) if ages.size else 0.0

    @property
    def fresh_percent(self) -> float:
        """Percent of *offered* frames served within the freshness deadline."""
        served = sum(w.served for w in self.windows)
        offered = sum(w.frames for w in self.windows)
        return 100.0 * served / offered if offered else 0.0


def admission_policies(freshness_s: float = FLEET_FRESHNESS_S) -> tuple[tuple[str, AdmissionPolicy], ...]:
    """The camera-buffer admission policies Table XIX compares."""
    return (
        ("drop-newest", DropNewest()),
        ("drop-oldest", DropOldest()),
        ("deadline-aware", DeadlineAware(freshness_s=freshness_s)),
    )


def admission_policy_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[AdmissionOutcome, ...]:
    """Admission-control comparison outcomes, memoised by the harness.

    Convenience front door over :meth:`Harness.admission_outcomes` (the
    cache owner), which delegates the actual runs to
    :func:`compute_admission_outcomes`.
    """
    return harness.admission_outcomes(cameras=cameras, config=config, window_s=window_s)


def compute_admission_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[AdmissionOutcome, ...]:
    """Run the fleet under every admission policy x serving scheme.

    Two schemes span the interesting regimes: ``cloud-only`` saturates the
    shared uplink (every admission decision matters) and the
    discriminator-driven ``collaborative`` scheme runs within budget (a
    control: admission must not perturb an unsaturated fleet).  Each pair
    shares the per-camera arrival processes, so rows differ only in what
    the camera buffer sheds; rolling quality is scored at the
    :data:`FLEET_FRESHNESS_S` deadline.

    Uncached — go through :meth:`Harness.admission_outcomes` (or the
    :func:`admission_policy_outcomes` front door) so Table XIX and
    Figure 11 consume the same runs.
    """
    if config is None:
        config = fleet_config()
    dataset = harness.dataset(FLEET_SETTING, "test")
    small = harness.detections("small1", FLEET_SETTING, "test")
    big = harness.detections("ssd", FLEET_SETTING, "test")
    discriminator, _ = harness.discriminator("small1", "ssd", FLEET_SETTING)
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(dataset, small)
    served = DetectionBatch.where(mask, big, small)
    zeros = np.zeros(len(dataset), dtype=bool)
    schemes = [
        ("cloud-only", cloud_only_scheme(), ~zeros, big),
        ("discriminator", collaborative_scheme(policy, name="discriminator"), mask, served),
    ]
    deployment = fleet_deployment(dataset.num_classes)
    seed = harness.config.seed
    outcomes = []
    for scheme_label, scheme, scheme_mask, scheme_served in schemes:
        for admission_label, admission in admission_policies():
            report = simulate_fleet(
                scheme,
                deployment,
                dataset,
                config,
                cameras=cameras,
                mask=scheme_mask,
                detections=scheme_served,
                admission=admission,
                seed=seed,
            )
            windows = rolling_quality(
                report,
                dataset,
                window_s=window_s,
                duration_s=config.duration_s,
                freshness_s=FLEET_FRESHNESS_S,
            )
            outcomes.append(
                AdmissionOutcome(
                    scheme=scheme_label,
                    admission=admission_label,
                    report=report,
                    windows=windows,
                )
            )
    return tuple(outcomes)


# --------------------------------------------------------------------- #
# Table XX / Figure 12: availability under failure (escalation policies)
# --------------------------------------------------------------------- #
#: Per-transfer loss probability of the lossy uplink in the availability runs
#: (congestion loss on top of the outage schedule).
FLEET_LOSS_PROBABILITY = 0.05

#: Seed of the ``random-30`` schedule (fixed: the schedule is part of the
#: workload definition, not of a run's randomness).
DEFAULT_OUTAGE_SEED = 2023


@dataclass(frozen=True)
class AvailabilityOutcome:
    """One (outage schedule, serving scheme, escalation policy) fleet run."""

    outage: str
    scheme: str
    escalation: str
    report: FleetReport
    windows: list[RollingWindow]

    @property
    def mean_map(self) -> float:
        """Mean rolling mAP over windows that saw frames (no deadline)."""
        values = [w.map_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def frames_lost_percent(self) -> float:
        """Percent of offered frames that never produced a served result."""
        return 100.0 * self.report.drop_rate


def outage_schedules(duration_s: float) -> tuple[tuple[str, OutageSchedule], ...]:
    """The ~30 %-downtime uplink outage schedules Table XX compares.

    ``periodic-30`` is a deterministic 6-s-down-every-20-s cycle;
    ``random-30`` draws seeded exponential up/down intervals with the same
    expected downtime fraction, so the two rows separate "predictable
    maintenance window" from "flaky backhaul" behaviour.
    """
    return (
        ("periodic-30", OutageSchedule.periodic(period_s=20.0, downtime_s=6.0, duration_s=duration_s)),
        (
            "random-30",
            OutageSchedule.random(seed=DEFAULT_OUTAGE_SEED, duration_s=duration_s, mean_up_s=7.0, mean_down_s=3.0),
        ),
    )



def escalation_policies() -> tuple[tuple[str, EscalationPolicy], ...]:
    """The escalation policies Table XX compares on failed uplink transfers."""
    return (
        ("no-retry", EscalationPolicy.no_retry()),
        ("drop-on-failure", EscalationPolicy.drop_on_failure()),
        ("durable-queue", EscalationPolicy.durable_queue(capacity=64, max_retries=6, max_backoff_s=8.0)),
    )


def availability_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[AvailabilityOutcome, ...]:
    """Availability comparison outcomes, memoised by the harness.

    Convenience front door over :meth:`Harness.availability_outcomes` (the
    cache owner), which delegates the actual runs to
    :func:`compute_availability_outcomes`.
    """
    return harness.availability_outcomes(cameras=cameras, config=config, window_s=window_s)


def compute_availability_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[AvailabilityOutcome, ...]:
    """Run the fleet under every outage schedule x scheme x escalation policy.

    The shared WLAN uplink is wrapped in an
    :class:`~repro.runtime.network.UnreliableLink` with the schedule's down
    windows plus :data:`FLEET_LOSS_PROBABILITY` per-transfer loss.  Two
    schemes span the regimes: ``cloud-only`` stakes every frame on the
    uplink (a failed transfer loses the frame unless the spool recovers it),
    while the discriminator-driven ``collaborative`` scheme degrades
    gracefully — a failed escalation serves the frame's *edge* verdict
    immediately and the durable queue lands the cloud verdict late.  Rolling
    quality is scored **without** a freshness deadline: the comparison
    measures eventual quality, i.e. what each escalation policy permanently
    loses versus eventually recovers.

    Uncached — go through :meth:`Harness.availability_outcomes` (or the
    :func:`availability_outcomes` front door) so Table XX and Figure 12
    consume the same runs.
    """
    if config is None:
        config = fleet_config()
    dataset = harness.dataset(FLEET_SETTING, "test")
    small = harness.detections("small1", FLEET_SETTING, "test")
    big = harness.detections("ssd", FLEET_SETTING, "test")
    discriminator, _ = harness.discriminator("small1", "ssd", FLEET_SETTING)
    policy = DiscriminatorPolicy(discriminator)
    mask = policy.select(dataset, small)
    served = DetectionBatch.where(mask, big, small)
    zeros = np.zeros(len(dataset), dtype=bool)
    schemes = [
        ("cloud-only", cloud_only_scheme(), ~zeros, big),
        ("discriminator", collaborative_scheme(policy, name="discriminator"), mask, served),
    ]
    base = fleet_deployment(dataset.num_classes)
    seed = harness.config.seed
    outcomes = []
    for outage_label, outages in outage_schedules(config.duration_s):
        link = UnreliableLink.wrap(base.link, outages=outages, loss_probability=FLEET_LOSS_PROBABILITY)
        deployment = Deployment(
            edge=base.edge,
            cloud=base.cloud,
            link=link,
            small_model_flops=base.small_model_flops,
            big_model_flops=base.big_model_flops,
        )
        for scheme_label, scheme, scheme_mask, scheme_served in schemes:
            for escalation_label, escalation in escalation_policies():
                report = simulate_fleet(
                    scheme,
                    deployment,
                    dataset,
                    config,
                    cameras=cameras,
                    mask=scheme_mask,
                    small_detections=small,
                    detections=scheme_served,
                    escalation=escalation,
                    seed=seed,
                )
                windows = rolling_quality(
                    report,
                    dataset,
                    window_s=window_s,
                    duration_s=config.duration_s,
                )
                outcomes.append(
                    AvailabilityOutcome(
                        outage=outage_label,
                        scheme=scheme_label,
                        escalation=escalation_label,
                        report=report,
                        windows=windows,
                    )
                )
    return tuple(outcomes)


# --------------------------------------------------------------------- #
# Table XXI / Figure 13: the closed-loop control plane
# --------------------------------------------------------------------- #
#: Per-camera upload budget (fraction of frames) the adaptive-quota rows
#: hold every camera to on the congested drift uplink.
DRIFT_UPLOAD_BUDGET = 0.10

#: Shared-uplink bandwidth (Mbps) of the drift fleet — tight enough that the
#: static thresholds' night-time upload surge saturates it, while the
#: budgeted fleet stays comfortably inside capacity.
DRIFT_BANDWIDTH_MBPS = 2.2


@dataclass(frozen=True)
class ControlOutcome:
    """One closed-loop control-plane fleet run, scored online.

    ``group`` names the workload: ``admission`` rows run the saturated
    cloud-only fleet (estimated-time admission vs its omniscient upper
    bound), ``drift`` rows run the half-night fleet on the congested
    uplink (adaptive quotas vs static thresholds).
    """

    group: str
    label: str
    report: FleetReport
    windows: list[RollingWindow]
    uploads: int

    @property
    def mean_map(self) -> float:
        """Mean rolling mAP over windows that saw frames."""
        values = [w.map_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_staleness_s(self) -> float:
        """Mean served-frame result age in seconds."""
        ages = [camera.trace.latencies() for camera in self.report.cameras]
        stacked = np.concatenate(ages) if ages else np.zeros(0)
        return float(stacked.mean()) if stacked.size else 0.0

    @property
    def fresh_percent(self) -> float:
        """Percent of *offered* frames served within the freshness deadline."""
        served = sum(w.served for w in self.windows)
        offered = sum(w.frames for w in self.windows)
        return 100.0 * served / offered if offered else 0.0


def drift_degradation() -> DegradationModel:
    """The night-shift image degradation of the Table XXI drift fleet.

    Strong enough that the (day-fit) discriminator's upload ratio jumps
    from ~0.20 to ~0.39 on night frames — the threshold drift the adaptive
    quota rows are asked to absorb.
    """
    return DegradationModel(degraded_fraction=1.0, min_quality=0.3, max_quality=0.55)


def control_plane_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[ControlOutcome, ...]:
    """Control-plane comparison outcomes, memoised by the harness.

    Convenience front door over :meth:`Harness.control_outcomes` (the
    cache owner), which delegates the actual runs to
    :func:`compute_control_outcomes`.
    """
    return harness.control_outcomes(cameras=cameras, config=config, window_s=window_s)


def compute_control_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[ControlOutcome, ...]:
    """Run the Table XXI / Figure 13 closed-loop control-plane fleets.

    Two workloads, all runs through the :class:`~repro.runtime.serving.FleetSpec`
    front door:

    ``admission`` — the cloud-only fleet saturates the shared WLAN uplink,
    and the rows climb the information ladder: ``drop-newest`` (no deadline
    logic, the floor), omniscient ``deadline-aware`` (reads the simulator's
    exact queued service times — an upper bound no deployment can run),
    ``estimated-deadline`` (:class:`~repro.runtime.control.EstimatedDeadlineAware`,
    the same shedding rule driven purely by EWMA estimates from the
    camera's own completion events), and ``coordinated`` (the estimated
    policy plus an :class:`~repro.runtime.control.UplinkCoordinator`
    sweeping the fleet between arrivals with fleet-pooled estimates).

    ``drift`` — half the cameras switch to night-shift footage
    (:func:`drift_degradation`), which inflates the static discriminator
    thresholds' upload ratio far past what a congested
    :data:`DRIFT_BANDWIDTH_MBPS` uplink carries; everything queues and goes
    stale.  The ``adaptive-quota`` row gives each camera an
    :class:`~repro.runtime.control.AdaptiveQuota`
    (:class:`~repro.core.adaptive.BudgetController` per camera) holding its
    realised upload ratio to the affordable :data:`DRIFT_UPLOAD_BUDGET`,
    trading cloud verdicts it cannot afford for freshness it can.

    Uncached — go through :meth:`Harness.control_outcomes` (or the
    :func:`control_plane_outcomes` front door) so Table XXI and Figure 13
    consume the same runs.
    """
    if config is None:
        config = fleet_config()
    dataset = harness.dataset(FLEET_SETTING, "test")
    small = harness.detections("small1", FLEET_SETTING, "test")
    big = harness.detections("ssd", FLEET_SETTING, "test")
    discriminator, _ = harness.discriminator("small1", "ssd", FLEET_SETTING)
    deployment = fleet_deployment(dataset.num_classes)
    seed = harness.config.seed
    outcomes = []

    def scored(group: str, label: str, report: FleetReport, uploads: int) -> ControlOutcome:
        windows = rolling_quality(
            report,
            dataset,
            window_s=window_s,
            duration_s=config.duration_s,
            freshness_s=FLEET_FRESHNESS_S,
        )
        return ControlOutcome(group=group, label=label, report=report, windows=windows, uploads=uploads)

    # -- admission rows: saturated cloud-only fleet ---------------------- #
    everything = ~np.zeros(len(dataset), dtype=bool)
    admission_rows = (
        ("drop-newest", DropNewest(), None),
        ("deadline-aware", DeadlineAware(freshness_s=FLEET_FRESHNESS_S), None),
        ("estimated-deadline", EstimatedDeadlineAware(freshness_s=FLEET_FRESHNESS_S), None),
        (
            "coordinated",
            EstimatedDeadlineAware(freshness_s=FLEET_FRESHNESS_S),
            UplinkCoordinator(freshness_s=FLEET_FRESHNESS_S),
        ),
    )
    for label, admission, controller in admission_rows:
        spec = FleetSpec(
            scheme=cloud_only_scheme(),
            config=config,
            cameras=cameras,
            mask=everything,
            detections=big,
            admission=admission,
            controller=controller,
        )
        report = serve_fleet(deployment, dataset, spec, seed=seed)
        uploads = sum(int(camera.trace.served.sum()) for camera in report.cameras)
        outcomes.append(scored("admission", label, report, uploads))

    # -- drift rows: half-night fleet on the congested uplink ------------ #
    night = dataset.with_degradation(drift_degradation(), scope="night-shift")
    night_small = DetectionBatch.coerce(harness.detector("small1", FLEET_SETTING).detect_split(night))
    night_big = DetectionBatch.coerce(harness.detector("ssd", FLEET_SETTING).detect_split(night))
    day_mask = np.asarray(discriminator.decide_split(small), dtype=bool)
    night_mask = np.asarray(discriminator.decide_split(night_small), dtype=bool)
    scheme = collaborative_scheme(DiscriminatorPolicy(discriminator), name="discriminator")
    drift_deployment = Deployment(
        edge=deployment.edge,
        cloud=deployment.cloud,
        link=replace(WLAN, name="wlan-congested", bandwidth_mbps=DRIFT_BANDWIDTH_MBPS),
        small_model_flops=deployment.small_model_flops,
        big_model_flops=deployment.big_model_flops,
    )
    night_cameras = cameras // 2
    day_cameras = cameras - night_cameras

    static = FleetSpec(
        scheme=scheme,
        config=config,
        cameras=(CameraSpec(),) * day_cameras
        + (
            CameraSpec(
                dataset=night,
                detections=night_big,
                small_detections=night_small,
                mask=night_mask,
            ),
        )
        * night_cameras,
        mask=day_mask,
        detections=big,
        small_detections=small,
    )
    report = serve_fleet(drift_deployment, dataset, static, seed=seed)
    uploads = 0
    for index, camera in enumerate(report.cameras):
        mask = day_mask if index < day_cameras else night_mask
        trace = camera.trace
        uploads += int(mask[trace.records[trace.served]].sum())
    outcomes.append(scored("drift", "static-threshold", report, uploads))

    day_quota = AdaptiveQuota(discriminator, small, DRIFT_UPLOAD_BUDGET)
    night_quota = AdaptiveQuota(discriminator, night_small, DRIFT_UPLOAD_BUDGET)
    adaptive = FleetSpec(
        scheme=scheme,
        config=config,
        cameras=(CameraSpec(offload=day_quota),) * day_cameras
        + (
            CameraSpec(
                dataset=night,
                detections=night_big,
                small_detections=night_small,
                offload=night_quota,
            ),
        )
        * night_cameras,
        detections=big,
        small_detections=small,
    )
    report = serve_fleet(drift_deployment, dataset, adaptive, seed=seed)
    outcomes.append(
        scored("drift", "adaptive-quota", report, day_quota.uploads + night_quota.uploads)
    )
    return tuple(outcomes)


# --------------------------------------------------------------------- #
# Table XXII / Figure 14: time-varying links x scheme x admission
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class NetworkOutcome:
    """One (bandwidth profile, scheme, admission policy) fleet run."""

    profile: str
    scheme: str
    admission: str
    report: FleetReport
    windows: list[RollingWindow]

    @property
    def mean_map(self) -> float:
        """Mean rolling mAP over windows that saw frames."""
        values = [w.map_percent for w in self.windows if w.frames]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_staleness_s(self) -> float:
        """Mean served-frame result age in seconds."""
        ages = [camera.trace.latencies() for camera in self.report.cameras]
        stacked = np.concatenate(ages) if ages else np.zeros(0)
        return float(stacked.mean()) if stacked.size else 0.0

    @property
    def fresh_percent(self) -> float:
        """Percent of *offered* frames served within the freshness deadline."""
        served = sum(w.served for w in self.windows)
        offered = sum(w.frames for w in self.windows)
        return 100.0 * served / offered if offered else 0.0


def network_profiles() -> tuple[tuple[str, "RateSchedule | None"], ...]:
    """The Table XXII bandwidth profiles on the shared fleet uplink.

    ``constant`` is the plain scalar WLAN (the pre-schedule baseline, bit
    for bit); the other two attach checked-in traces from
    ``benchmarks/traces/`` — the deterministic congestion cycle and the
    LTE-like random walk with a mid-run trough — via
    :meth:`~repro.runtime.network.NetworkLink.with_rate_schedule`, so the
    experiment and the examples consume the exact same profiles.
    """
    return (
        ("constant", None),
        ("periodic-dip", bundled_trace("periodic_dip")),
        ("lte-trace", bundled_trace("lte_like")),
    )


def network_admissions(freshness_s: float = FLEET_FRESHNESS_S) -> tuple[tuple[str, AdmissionPolicy], ...]:
    """The Table XXII admission ladder.

    ``estimated-constant`` is :class:`~repro.runtime.control.EstimatedDeadlineAware`
    with the schedule-aware floor disabled — the pre-refactor estimator
    that believes its EWMA memory through a congestion dip;
    ``estimated-schedule`` folds the link schedule's view of *now* into
    every doom test.  On the constant profile the two are identical by
    construction (the floor is exactly zero there).
    """
    return (
        ("drop-newest", DropNewest()),
        ("estimated-constant", EstimatedDeadlineAware(freshness_s=freshness_s, schedule_aware=False)),
        ("estimated-schedule", EstimatedDeadlineAware(freshness_s=freshness_s, schedule_aware=True)),
    )


def network_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[NetworkOutcome, ...]:
    """Trace-driven network outcomes, memoised by the harness.

    Convenience front door over :meth:`Harness.network_outcomes` (the
    cache owner), which delegates the actual runs to
    :func:`compute_network_outcomes`.
    """
    return harness.network_outcomes(cameras=cameras, config=config, window_s=window_s)


def compute_network_outcomes(
    harness: Harness,
    *,
    cameras: int = FLEET_CAMERAS,
    config: StreamConfig | None = None,
    window_s: float = FLEET_WINDOW_S,
) -> tuple[NetworkOutcome, ...]:
    """Run the Table XXII / Figure 14 time-varying-link fleets.

    The eight-camera fleet runs under every bandwidth profile
    (:func:`network_profiles`) x serving scheme (cloud-only vs the
    discriminator's collaborative scheme) x admission policy
    (:func:`network_admissions`), all sharing one arrival process, so the
    grid isolates two orderings: what schedule awareness buys the
    estimated admission policy once the rate actually varies, and how much
    more gracefully the discriminator scheme rides a bandwidth dip than
    cloud-only (its edge verdicts keep serving while the uplink crawls).

    Uncached — go through :meth:`Harness.network_outcomes` (or the
    :func:`network_outcomes` front door) so the table and the figure
    consume the same runs.
    """
    if config is None:
        config = fleet_config()
    dataset = harness.dataset(FLEET_SETTING, "test")
    small = harness.detections("small1", FLEET_SETTING, "test")
    big = harness.detections("ssd", FLEET_SETTING, "test")
    discriminator, _ = harness.discriminator("small1", "ssd", FLEET_SETTING)
    base_deployment = fleet_deployment(dataset.num_classes)
    seed = harness.config.seed

    disc_mask = np.asarray(discriminator.decide_split(small), dtype=bool)
    disc_served = DetectionBatch.where(disc_mask, big, small)
    everything = ~np.zeros(len(dataset), dtype=bool)
    schemes = (
        ("cloud-only", cloud_only_scheme(), everything, big, None),
        (
            "discriminator",
            collaborative_scheme(DiscriminatorPolicy(discriminator), name="discriminator"),
            disc_mask,
            disc_served,
            small,
        ),
    )

    outcomes = []
    for profile, schedule in network_profiles():
        link = base_deployment.link if schedule is None else base_deployment.link.with_rate_schedule(schedule)
        deployment = replace(base_deployment, link=link)
        for scheme_label, scheme, mask, served, small_detections in schemes:
            for admission_label, admission in network_admissions():
                spec = FleetSpec(
                    scheme=scheme,
                    config=config,
                    cameras=cameras,
                    mask=mask,
                    detections=served,
                    small_detections=small_detections,
                    admission=admission,
                )
                report = serve_fleet(deployment, dataset, spec, seed=seed)
                windows = rolling_quality(
                    report,
                    dataset,
                    window_s=window_s,
                    duration_s=config.duration_s,
                    freshness_s=FLEET_FRESHNESS_S,
                )
                outcomes.append(
                    NetworkOutcome(
                        profile=profile,
                        scheme=scheme_label,
                        admission=admission_label,
                        report=report,
                        windows=windows,
                    )
                )
    return tuple(outcomes)
