"""Result containers shared by the table and figure runners."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableResult", "FigureResult"]


@dataclass(frozen=True)
class TableResult:
    """One reproduced table.

    ``rows`` holds the measured values; ``paper_rows`` the corresponding
    published values (same keys) where the paper reports them, so the
    EXPERIMENTS.md report can print measured-vs-paper side by side.
    """

    table_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict] = field(repr=False)
    paper_rows: list[dict] | None = None
    notes: str = ""

    def column(self, name: str) -> list:
        """Extract one column across the measured rows."""
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key: object) -> dict:
        """Find the measured row whose ``key_column`` equals ``key``."""
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r} in table {self.table_id}")


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: named data series over a shared x-axis."""

    figure_id: str
    title: str
    x_label: str
    x_values: list[float] = field(repr=False)
    series: dict[str, list[float]] = field(repr=False)
    notes: str = ""

    def series_named(self, name: str) -> list[float]:
        """One named series."""
        return self.series[name]
