"""Runners for every table in the paper's evaluation (Tables I-XVII).

Each ``table_XX`` function takes a :class:`~repro.experiments.harness.Harness`
and returns a :class:`~repro.experiments.results.TableResult` whose rows
mirror the paper's layout, with the published values attached for
side-by-side reporting.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.blur_upload import BlurUploadPolicy
from repro.baselines.confidence_upload import ConfidenceUploadPolicy
from repro.baselines.policy import UploadPolicy
from repro.baselines.random_upload import RandomUploadPolicy
from repro.experiments.harness import Harness
from repro.experiments.results import TableResult
from repro.runtime.devices import JETSON_NANO, RTX3060_SERVER
from repro.runtime.executor import Deployment, EdgeCloudRuntime
from repro.runtime.network import WLAN
from repro.zoo.registry import build_model, model_zoo_table

__all__ = [
    "SSD_SETTINGS",
    "YOLO_SETTINGS",
    "MODEL_PAIRS",
    "detection_artifacts",
    "table_01_discriminator",
    "table_02_model_zoo",
    "table_03_map_small1",
    "table_04_counts_small1",
    "table_05_map_small2",
    "table_06_counts_small2",
    "table_07_map_small3",
    "table_08_counts_small3",
    "table_09_map_yolov4",
    "table_10_counts_yolov4",
    "table_11_helmet_realworld",
    "table_12_random_map",
    "table_13_random_counts",
    "table_14_blur_map",
    "table_15_blur_counts",
    "table_16_confidence_map",
    "table_17_confidence_counts",
    "table_18_fleet_policies",
    "table_19_admission_policies",
    "table_20_availability",
    "table_21_control_plane",
    "table_22_network",
    "all_tables",
]

#: The four settings of the SSD experiments (Tables III-VIII, XII-XVII).
SSD_SETTINGS: tuple[str, ...] = ("voc07", "voc07+12", "voc07++12", "coco18")

#: The two settings of the YOLOv4 experiment (Tables IX-X).
YOLO_SETTINGS: tuple[str, ...] = ("voc07", "voc07+12")

#: Every (small model, big model, setting) combination the 17 tables serve.
#: Tables I and III-VIII plus the XII-XVII baselines all ride on the SSD
#: pairs; IX-X on the YOLO pair; XI on the helmet deployment.
MODEL_PAIRS: tuple[tuple[str, str, str], ...] = tuple(
    [("small1", "ssd", setting) for setting in SSD_SETTINGS]
    + [("small2", "ssd", setting) for setting in SSD_SETTINGS]
    + [("small3", "ssd", setting) for setting in SSD_SETTINGS]
    + [("small-yolo", "yolov4", setting) for setting in YOLO_SETTINGS]
    + [("small1", "ssd", "helmet")]
)


def detection_artifacts() -> tuple[tuple[str, str, str], ...]:
    """Distinct ``(model, setting, split)`` detection artifacts of the tables.

    Every expensive ``Harness.detections`` call the 17-table suite makes,
    deduplicated in first-use order: each model pair needs both models'
    train-split detections (discriminator fit) and test-split detections
    (system run and per-model metrics).  The suite scheduler fans exactly
    these artifacts out across the harness's worker pool.
    """
    artifacts: list[tuple[str, str, str]] = []
    seen: set[tuple[str, str, str]] = set()
    for small, big, setting in MODEL_PAIRS:
        for split in ("train", "test"):
            for model in (small, big):
                key = (model, setting, split)
                if key not in seen:
                    seen.add(key)
                    artifacts.append(key)
    return tuple(artifacts)


#: Paper values reused across tables (same test set labels as the tables).
_PAPER_E2E_MAP_SMALL1 = {"voc07": 62.68, "voc07+12": 71.61, "voc07++12": 66.42, "coco18": 38.76}
_PAPER_UPLOAD_SMALL1 = {"voc07": 51.47, "voc07+12": 51.23, "voc07++12": 50.76, "coco18": 52.09}
_PAPER_E2E_RATIO_SMALL1 = {"voc07": 93.00, "voc07+12": 94.51, "voc07++12": 95.07, "coco18": 92.84}


# --------------------------------------------------------------------- #
# shared builders
# --------------------------------------------------------------------- #
def _map_table(
    harness: Harness,
    small: str,
    big: str,
    settings: tuple[str, ...],
    table_id: str,
    title: str,
    paper_rows: list[dict] | None,
) -> TableResult:
    rows = []
    for setting in settings:
        run = harness.system_run(small, big, setting)
        rows.append(
            {
                "setting": setting,
                "big_map": round(harness.model_map(big, setting), 2),
                "small_map": round(harness.model_map(small, setting), 2),
                "e2e_map": round(run.end_to_end_map(), 2),
                "upload_percent": round(100.0 * run.upload_ratio, 2),
            }
        )
    rows.append(
        {
            "setting": "Average",
            "big_map": float("nan"),
            "small_map": float("nan"),
            "e2e_map": float("nan"),
            "upload_percent": round(
                float(np.mean([r["upload_percent"] for r in rows])), 2
            ),
        }
    )
    return TableResult(
        table_id=table_id,
        title=title,
        columns=("setting", "big_map", "small_map", "e2e_map", "upload_percent"),
        rows=rows,
        paper_rows=paper_rows,
    )


def _counts_table(
    harness: Harness,
    small: str,
    big: str,
    settings: tuple[str, ...],
    table_id: str,
    title: str,
    paper_rows: list[dict] | None,
) -> TableResult:
    rows = []
    for setting in settings:
        run = harness.system_run(small, big, setting)
        big_counts = harness.model_counts(big, setting)
        small_counts = harness.model_counts(small, setting)
        e2e_counts = run.end_to_end_counts()
        rows.append(
            {
                "setting": setting,
                "big": big_counts.detected,
                "small": small_counts.detected,
                "e2e": e2e_counts.detected,
                "e2e_over_big_percent": round(e2e_counts.ratio_to(big_counts), 2),
            }
        )
    rows.append(
        {
            "setting": "Average",
            "big": float("nan"),
            "small": float("nan"),
            "e2e": float("nan"),
            "e2e_over_big_percent": round(
                float(np.mean([r["e2e_over_big_percent"] for r in rows])), 2
            ),
        }
    )
    return TableResult(
        table_id=table_id,
        title=title,
        columns=("setting", "big", "small", "e2e", "e2e_over_big_percent"),
        rows=rows,
        paper_rows=paper_rows,
    )


def _baseline_run(harness: Harness, setting: str, policy: UploadPolicy):
    dataset = harness.dataset(setting, "test")
    small_dets = harness.detections("small1", setting, "test")
    mask = policy.select(dataset, small_dets)
    return harness.system_run("small1", "ssd", setting, uploaded=mask)


def _baseline_map_table(
    harness: Harness,
    policy_factory,
    table_id: str,
    title: str,
    paper_baseline: dict[str, float],
) -> TableResult:
    rows = []
    for setting in SSD_SETTINGS:
        ours = harness.system_run("small1", "ssd", setting)
        baseline = _baseline_run(harness, setting, policy_factory(ours.upload_ratio))
        rows.append(
            {
                "setting": setting,
                "baseline_e2e_map": round(baseline.end_to_end_map(), 2),
                "ours_e2e_map": round(ours.end_to_end_map(), 2),
            }
        )
    paper_rows = [
        {
            "setting": setting,
            "baseline_e2e_map": paper_baseline[setting],
            "ours_e2e_map": _PAPER_E2E_MAP_SMALL1[setting],
        }
        for setting in SSD_SETTINGS
    ]
    return TableResult(
        table_id=table_id,
        title=title,
        columns=("setting", "baseline_e2e_map", "ours_e2e_map"),
        rows=rows,
        paper_rows=paper_rows,
        notes="Baseline upload quota matched to our method's measured ratio.",
    )


def _baseline_counts_table(
    harness: Harness,
    policy_factory,
    table_id: str,
    title: str,
    paper_baseline: dict[str, float],
) -> TableResult:
    rows = []
    for setting in SSD_SETTINGS:
        ours = harness.system_run("small1", "ssd", setting)
        baseline = _baseline_run(harness, setting, policy_factory(ours.upload_ratio))
        big_counts = harness.model_counts("ssd", setting)
        rows.append(
            {
                "setting": setting,
                "ours_ratio_percent": round(
                    ours.end_to_end_counts().ratio_to(big_counts), 2
                ),
                "baseline_ratio_percent": round(
                    baseline.end_to_end_counts().ratio_to(big_counts), 2
                ),
                "upload_percent": round(100.0 * baseline.upload_ratio, 2),
            }
        )
    rows.append(
        {
            "setting": "Average",
            "ours_ratio_percent": round(
                float(np.mean([r["ours_ratio_percent"] for r in rows])), 2
            ),
            "baseline_ratio_percent": round(
                float(np.mean([r["baseline_ratio_percent"] for r in rows])), 2
            ),
            "upload_percent": round(
                float(np.mean([r["upload_percent"] for r in rows])), 2
            ),
        }
    )
    paper_rows = [
        {
            "setting": setting,
            "ours_ratio_percent": _PAPER_E2E_RATIO_SMALL1[setting],
            "baseline_ratio_percent": paper_baseline[setting],
        }
        for setting in SSD_SETTINGS
    ]
    return TableResult(
        table_id=table_id,
        title=title,
        columns=(
            "setting",
            "ours_ratio_percent",
            "baseline_ratio_percent",
            "upload_percent",
        ),
        rows=rows,
        paper_rows=paper_rows,
    )


# --------------------------------------------------------------------- #
# Table I / II
# --------------------------------------------------------------------- #
def table_01_discriminator(harness: Harness) -> TableResult:
    """Table I: discriminator quality, ground-truth vs predicted features.

    Ground-truth row: the decision rule fed true object counts / min-area
    ratios, evaluated on the training split (the fitting regime of Sec. V.D).
    Predicted row: the deployed discriminator (estimated features from the
    small model's raw output) on the held-out test split.
    """
    setting = "voc07+12"
    discriminator, report = harness.discriminator("small1", "ssd", setting)
    test_small = harness.detections("small1", setting, "test")
    test_big = harness.detections("ssd", setting, "test")
    test_metrics = discriminator.evaluate(test_small, test_big)
    rows = [
        {"features": "Ground Truth", **report.ground_truth_metrics.as_row()},
        {"features": "Predicted", **test_metrics.as_row()},
    ]
    paper_rows = [
        {"features": "Ground Truth", "accuracy": 85.35, "f1": 0.8665, "precision": 77.51, "recall": 98.24},
        {"features": "Predicted", "accuracy": 78.35, "f1": 0.7732, "precision": 78.38, "recall": 76.29},
    ]
    return TableResult(
        table_id="I",
        title="Difficult-case discriminator on train (GT features) and test "
        "(predicted features), small model 1 + SSD on VOC07+12",
        columns=("features", "accuracy", "f1", "precision", "recall"),
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            f"fitted thresholds: confidence="
            f"{discriminator.confidence_threshold:.2f}, count="
            f"{discriminator.count_threshold}, area="
            f"{discriminator.area_threshold:.2f} "
            f"(paper: 0.15-0.35 / 2 / 0.31)"
        ),
    )


def table_02_model_zoo(harness: Harness) -> TableResult:
    """Table II: model size, pruned ratio and FLOPs (analytic, exact)."""
    rows = model_zoo_table()
    paper_rows = [
        {"model": "small1", "size_mib": 18.50, "pruned_percent": 81.55, "gflops": 5.60},
        {"model": "small2", "size_mib": 11.55, "pruned_percent": 88.48, "gflops": 5.31},
        {"model": "small3", "size_mib": 6.50, "pruned_percent": 93.52, "gflops": 1.31},
        {"model": "ssd", "size_mib": 100.28, "pruned_percent": 0.0, "gflops": 61.19},
    ]
    return TableResult(
        table_id="II",
        title="Model size and computing operations of the three small models",
        columns=("model", "size_mib", "pruned_percent", "gflops"),
        rows=rows,
        paper_rows=paper_rows,
        notes="Sizes are fp32 parameter bytes in MiB; FLOPs = 2 x MACs at a "
        "300x300 input (608 for YOLO models).",
    )


# --------------------------------------------------------------------- #
# Tables III-VIII: the three small models under SSD
# --------------------------------------------------------------------- #
def table_03_map_small1(harness: Harness) -> TableResult:
    """Table III: mAP with small model 1 (VGG-Lite)."""
    paper_rows = [
        {"setting": "voc07", "big_map": 70.76, "small_map": 41.28, "e2e_map": 62.68, "upload_percent": 51.47},
        {"setting": "voc07+12", "big_map": 77.41, "small_map": 51.34, "e2e_map": 71.61, "upload_percent": 51.23},
        {"setting": "voc07++12", "big_map": 72.31, "small_map": 49.02, "e2e_map": 66.42, "upload_percent": 50.76},
        {"setting": "coco18", "big_map": 42.18, "small_map": 27.78, "e2e_map": 38.76, "upload_percent": 52.09},
        {"setting": "Average", "upload_percent": 51.32},
    ]
    return _map_table(
        harness,
        "small1",
        "ssd",
        SSD_SETTINGS,
        "III",
        "mAP when using small model 1",
        paper_rows,
    )


def table_04_counts_small1(harness: Harness) -> TableResult:
    """Table IV: detected objects with small model 1."""
    paper_rows = [
        {"setting": "voc07", "big": 9055, "small": 4759, "e2e": 8325, "e2e_over_big_percent": 93.00},
        {"setting": "voc07+12", "big": 9628, "small": 5511, "e2e": 9100, "e2e_over_big_percent": 94.51},
        {"setting": "voc07++12", "big": 8434, "small": 5202, "e2e": 7852, "e2e_over_big_percent": 95.07},
        {"setting": "coco18", "big": 7996, "small": 4353, "e2e": 7424, "e2e_over_big_percent": 92.84},
        {"setting": "Average", "e2e_over_big_percent": 94.01},
    ]
    return _counts_table(
        harness,
        "small1",
        "ssd",
        SSD_SETTINGS,
        "IV",
        "Number of detected objects when using small model 1",
        paper_rows,
    )


def table_05_map_small2(harness: Harness) -> TableResult:
    """Table V (reconciled: MobileNetV1 column set): mAP with small model 2."""
    paper_rows = [
        {"setting": "voc07", "big_map": 70.76, "small_map": 49.62, "e2e_map": 64.00, "upload_percent": 52.16},
        {"setting": "voc07+12", "big_map": 77.41, "small_map": 56.24, "e2e_map": 71.38, "upload_percent": 51.97},
        {"setting": "voc07++12", "big_map": 72.31, "small_map": 56.01, "e2e_map": 67.80, "upload_percent": 51.69},
        {"setting": "coco18", "big_map": 42.18, "small_map": 32.66, "e2e_map": 41.46, "upload_percent": 50.65},
        {"setting": "Average", "upload_percent": 51.61},
    ]
    return _map_table(
        harness,
        "small2",
        "ssd",
        SSD_SETTINGS,
        "V",
        "mAP when using small model 2 (MobileNetV1)",
        paper_rows,
    )


def table_06_counts_small2(harness: Harness) -> TableResult:
    """Table VI (reconciled): detected objects with small model 2."""
    paper_rows = [
        {"setting": "voc07", "big": 9055, "small": 6264, "e2e": 8810, "e2e_over_big_percent": 97.29},
        {"setting": "voc07+12", "big": 9628, "small": 6486, "e2e": 9320, "e2e_over_big_percent": 96.80},
        {"setting": "voc07++12", "big": 8434, "small": 6393, "e2e": 8323, "e2e_over_big_percent": 98.68},
        {"setting": "coco18", "big": 7996, "small": 6257, "e2e": 7884, "e2e_over_big_percent": 98.60},
        {"setting": "Average", "e2e_over_big_percent": 97.84},
    ]
    return _counts_table(
        harness,
        "small2",
        "ssd",
        SSD_SETTINGS,
        "VI",
        "Number of detected objects when using small model 2",
        paper_rows,
    )


def table_07_map_small3(harness: Harness) -> TableResult:
    """Table VII (reconciled: MobileNetV2 column set): mAP with small model 3."""
    paper_rows = [
        {"setting": "voc07", "big_map": 70.76, "small_map": 42.00, "e2e_map": 64.29, "upload_percent": 51.99},
        {"setting": "voc07+12", "big_map": 77.41, "small_map": 48.47, "e2e_map": 72.24, "upload_percent": 51.85},
        {"setting": "voc07++12", "big_map": 72.31, "small_map": 44.84, "e2e_map": 66.42, "upload_percent": 51.99},
        {"setting": "coco18", "big_map": 42.18, "small_map": 26.85, "e2e_map": 38.50, "upload_percent": 48.96},
        {"setting": "Average", "upload_percent": 51.19},
    ]
    return _map_table(
        harness,
        "small3",
        "ssd",
        SSD_SETTINGS,
        "VII",
        "mAP when using small model 3 (MobileNetV2)",
        paper_rows,
    )


def table_08_counts_small3(harness: Harness) -> TableResult:
    """Table VIII (reconciled): detected objects with small model 3."""
    paper_rows = [
        {"setting": "voc07", "big": 9055, "small": 4889, "e2e": 8647, "e2e_over_big_percent": 95.49},
        {"setting": "voc07+12", "big": 9628, "small": 5242, "e2e": 9079, "e2e_over_big_percent": 94.29},
        {"setting": "voc07++12", "big": 8434, "small": 4645, "e2e": 8101, "e2e_over_big_percent": 96.05},
        {"setting": "coco18", "big": 7996, "small": 4700, "e2e": 7917, "e2e_over_big_percent": 99.01},
        {"setting": "Average", "e2e_over_big_percent": 96.23},
    ]
    return _counts_table(
        harness,
        "small3",
        "ssd",
        SSD_SETTINGS,
        "VIII",
        "Number of detected objects when using small model 3",
        paper_rows,
    )


# --------------------------------------------------------------------- #
# Tables IX-X: YOLOv4
# --------------------------------------------------------------------- #
def table_09_map_yolov4(harness: Harness) -> TableResult:
    """Table IX: mAP with YOLOv4 as the big model."""
    paper_rows = [
        {"setting": "voc07", "small_map": 73.64, "big_map": 83.48, "e2e_map": 79.52, "upload_percent": 20.90},
        {"setting": "voc07+12", "small_map": 79.72, "big_map": 90.02, "e2e_map": 85.78, "upload_percent": 21.32},
        {"setting": "Average", "upload_percent": 21.11},
    ]
    return _map_table(
        harness,
        "small-yolo",
        "yolov4",
        YOLO_SETTINGS,
        "IX",
        "mAP when using YOLOv4",
        paper_rows,
    )


def table_10_counts_yolov4(harness: Harness) -> TableResult:
    """Table X: detected objects with YOLOv4 as the big model."""
    paper_rows = [
        {"setting": "voc07", "big": 11098, "small": 10509, "e2e": 10985, "e2e_over_big_percent": 98.98},
        {"setting": "voc07+12", "big": 11574, "small": 10478, "e2e": 11360, "e2e_over_big_percent": 98.15},
        {"setting": "Average", "e2e_over_big_percent": 98.57},
    ]
    return _counts_table(
        harness,
        "small-yolo",
        "yolov4",
        YOLO_SETTINGS,
        "X",
        "Number of detected objects when using YOLOv4",
        paper_rows,
    )


# --------------------------------------------------------------------- #
# Table XI: real-world helmet deployment
# --------------------------------------------------------------------- #
def table_11_helmet_realworld(harness: Harness) -> TableResult:
    """Table XI: Jetson Nano + WLAN + server on the Helmet dataset."""
    setting = "helmet"
    run = harness.system_run("small1", "ssd", setting)
    dataset = harness.dataset(setting, "test")

    small_spec = build_model("small1", num_classes=dataset.num_classes)
    big_spec = build_model("ssd", num_classes=dataset.num_classes)
    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(small_spec.flops),
        big_model_flops=float(big_spec.flops),
    )
    runtime = EdgeCloudRuntime(deployment=deployment, seed=harness.config.seed)
    edge_cost = runtime.run_edge_only(dataset)
    cloud_cost = runtime.run_cloud_only(dataset)
    ours_cost = runtime.run_collaborative(dataset, run.uploaded)

    big_counts = harness.model_counts("ssd", setting)
    small_counts = harness.model_counts("small1", setting)
    rows = [
        {
            "metric": "mAP",
            "edge_only": round(harness.model_map("small1", setting), 2),
            "cloud_only": round(harness.model_map("ssd", setting), 2),
            "ours": round(run.end_to_end_map(), 2),
        },
        {
            "metric": "detected_objects",
            "edge_only": small_counts.detected,
            "cloud_only": big_counts.detected,
            "ours": run.end_to_end_counts().detected,
        },
        {
            "metric": "total_inference_time_s",
            "edge_only": round(edge_cost.latency.total, 2),
            "cloud_only": round(cloud_cost.latency.total, 2),
            "ours": round(ours_cost.latency.total, 2),
        },
        {
            "metric": "upload_ratio_percent",
            "edge_only": 0.0,
            "cloud_only": 100.0,
            "ours": round(100.0 * run.upload_ratio, 2),
        },
    ]
    paper_rows = [
        {"metric": "mAP", "edge_only": 75.04, "cloud_only": 92.40, "ours": 86.07},
        {"metric": "detected_objects", "edge_only": 940, "cloud_only": 1135, "ours": 1119},
        {"metric": "total_inference_time_s", "edge_only": 47.13, "cloud_only": 264.76, "ours": 179.79},
        {"metric": "upload_ratio_percent", "edge_only": 0.0, "cloud_only": 100.0, "ours": 51.19},
    ]
    saving = ours_cost.latency.saving_over(cloud_cost.latency)
    return TableResult(
        table_id="XI",
        title="Helmet dataset under real-world edge-cloud collaboration",
        columns=("metric", "edge_only", "cloud_only", "ours"),
        rows=rows,
        paper_rows=paper_rows,
        notes=f"ours saves {100 * saving:.1f}% inference time vs cloud-only "
        f"(paper: 32%) and {100 * ours_cost.bandwidth_saving_over(cloud_cost):.1f}% "
        f"uplink bytes (paper: ~50%).",
    )


# --------------------------------------------------------------------- #
# Tables XII-XVII: baseline comparisons
# --------------------------------------------------------------------- #
def table_12_random_map(harness: Harness) -> TableResult:
    """Table XII: e2e mAP — random uploading vs ours."""
    return _baseline_map_table(
        harness,
        lambda ratio: RandomUploadPolicy(ratio=ratio, seed=harness.config.seed),
        "XII",
        "End-to-end mAP of randomly uploading images to the cloud",
        {"voc07": 56.64, "voc07+12": 64.06, "voc07++12": 60.87, "coco18": 34.82},
    )


def table_13_random_counts(harness: Harness) -> TableResult:
    """Table XIII: detected objects — random uploading vs ours."""
    return _baseline_counts_table(
        harness,
        lambda ratio: RandomUploadPolicy(ratio=ratio, seed=harness.config.seed),
        "XIII",
        "Detected objects of randomly uploading images to the cloud",
        {"voc07": 74.83, "voc07+12": 77.07, "voc07++12": 78.69, "coco18": 75.06},
    )


def table_14_blur_map(harness: Harness) -> TableResult:
    """Table XIV: e2e mAP — blurred-image uploading (Brenner) vs ours."""
    return _baseline_map_table(
        harness,
        lambda ratio: BlurUploadPolicy(ratio=ratio),
        "XIV",
        "End-to-end mAP of uploading blurred images to the cloud",
        {"voc07": 57.30, "voc07+12": 65.22, "voc07++12": 60.05, "coco18": 35.26},
    )


def table_15_blur_counts(harness: Harness) -> TableResult:
    """Table XV: detected objects — blurred-image uploading vs ours."""
    return _baseline_counts_table(
        harness,
        lambda ratio: BlurUploadPolicy(ratio=ratio),
        "XV",
        "Detected objects of uploading blurred images to the cloud",
        {"voc07": 73.13, "voc07+12": 75.90, "voc07++12": 78.33, "coco18": 70.14},
    )


def table_16_confidence_map(harness: Harness) -> TableResult:
    """Table XVI: e2e mAP — top-1 confidence uploading vs ours."""
    return _baseline_map_table(
        harness,
        lambda ratio: ConfidenceUploadPolicy(ratio=ratio),
        "XVI",
        "End-to-end mAP of uploading by top-1 confidence score",
        {"voc07": 57.30, "voc07+12": 65.22, "voc07++12": 60.05, "coco18": 35.26},
    )


def table_17_confidence_counts(harness: Harness) -> TableResult:
    """Table XVII: detected objects — top-1 confidence uploading vs ours."""
    return _baseline_counts_table(
        harness,
        lambda ratio: ConfidenceUploadPolicy(ratio=ratio),
        "XVII",
        "Detected objects of uploading by top-1 confidence score",
        {"voc07": 73.13, "voc07+12": 75.90, "voc07++12": 78.33, "coco18": 70.14},
    )


# --------------------------------------------------------------------- #
# Table XVIII (extension): multi-camera fleet with online quality
# --------------------------------------------------------------------- #
def table_18_fleet_policies(harness: Harness) -> TableResult:
    """Table XVIII (extension): every offload policy at fleet scale.

    Eight helmet-site cameras share one WLAN uplink and one cloud GPU
    (:mod:`repro.experiments.fleet`); every policy rides the same serving
    pipeline and arrival processes, and quality is measured *online* —
    rolling mAP / count error over the frames arriving in each window, with
    dropped and stale (late beyond the freshness deadline) frames scoring
    zero detections.  No paper counterpart: the paper's Table XI serves one
    camera statically.
    """
    from repro.experiments.fleet import FLEET_CAMERAS, FLEET_FRESHNESS_S, fleet_policy_outcomes

    rows = []
    for outcome in fleet_policy_outcomes(harness):
        report = outcome.report
        rows.append(
            {
                "policy": outcome.policy,
                "upload_percent": round(100.0 * report.upload_ratio, 2),
                "drop_percent": round(100.0 * report.drop_rate, 2),
                "p50_ms": round(1000.0 * report.latency.p50, 1),
                "p99_ms": round(1000.0 * report.latency.p99, 1),
                "rolling_map": round(outcome.mean_map, 2),
                "count_error_percent": round(outcome.mean_count_error, 2),
            }
        )
    return TableResult(
        table_id="XVIII",
        title=f"Offload policies serving a {FLEET_CAMERAS}-camera fleet over one "
        "shared uplink and cloud GPU (helmet deployment, online quality)",
        columns=(
            "policy",
            "upload_percent",
            "drop_percent",
            "p50_ms",
            "p99_ms",
            "rolling_map",
            "count_error_percent",
        ),
        rows=rows,
        paper_rows=None,
        notes="Extension workload: rolling-window quality (mAP / missed objects) "
        "over arriving frames; dropped and stale results score as empty "
        "detections (freshness deadline "
        f"{FLEET_FRESHNESS_S:g} s).  Baselines run at the discriminator's "
        "measured upload quota.",
    )


# --------------------------------------------------------------------- #
# Table XIX (extension): camera-buffer admission control at fleet scale
# --------------------------------------------------------------------- #
def table_19_admission_policies(harness: Harness) -> TableResult:
    """Table XIX (extension): admission policy x scheme on the 8-camera fleet.

    The shared uplink saturates under cloud-only, and then *which* frames
    the camera buffer sheds decides everything: drop-newest (the historical
    rule) and drop-oldest both serve frames that queued for tens of
    seconds — stale beyond the freshness deadline, so their measured
    rolling mAP collapses — while the deadline-aware buffer sheds exactly
    the frames that provably cannot return in time and keeps the served
    stream fresh.  The unsaturated discriminator rows are the control: with
    no buffer pressure every admission policy serves identically.  No paper
    counterpart (the paper serves one camera statically).
    """
    from repro.experiments.fleet import (
        FLEET_CAMERAS,
        FLEET_FRESHNESS_S,
        admission_policy_outcomes,
    )

    rows = []
    for outcome in admission_policy_outcomes(harness):
        report = outcome.report
        rows.append(
            {
                "scheme": outcome.scheme,
                "admission": outcome.admission,
                "drop_percent": round(100.0 * report.drop_rate, 2),
                "shed_percent": round(100.0 * report.frames_shed / max(report.frames_offered, 1), 2),
                "p50_ms": round(1000.0 * report.latency.p50, 1),
                "fresh_percent": round(outcome.fresh_percent, 2),
                "rolling_map": round(outcome.mean_map, 2),
                "count_error_percent": round(outcome.mean_count_error, 2),
            }
        )
    return TableResult(
        table_id="XIX",
        title=f"Camera-buffer admission policies serving the {FLEET_CAMERAS}-camera "
        "fleet (helmet deployment, online quality at the freshness deadline)",
        columns=(
            "scheme",
            "admission",
            "drop_percent",
            "shed_percent",
            "p50_ms",
            "fresh_percent",
            "rolling_map",
            "count_error_percent",
        ),
        rows=rows,
        paper_rows=None,
        notes="Extension workload: shed_percent counts frames the admission "
        "policy removed from the buffer after admitting them (a subset of "
        "drop_percent); fresh_percent is the share of offered frames served "
        f"within the {FLEET_FRESHNESS_S:g} s deadline, which is what "
        "rolling_map scores.",
    )


# --------------------------------------------------------------------- #
# Table XX (extension): availability under uplink failure
# --------------------------------------------------------------------- #
def table_20_availability(harness: Harness) -> TableResult:
    """Table XX (extension): escalation policies under uplink outages.

    The shared uplink of the 8-camera fleet goes down ~30 % of the time
    (two schedules: a deterministic maintenance cycle and seeded random
    outages) with 5 % per-transfer loss on top, and every serving scheme
    runs under every escalation policy.  Cloud-only stakes each frame on
    the uplink, so what happens to a failed transfer is the whole story:
    no-retry and drop-on-failure lose the frame for good, while the durable
    spool retries with backoff and recovers most verdicts after the outage.
    The discriminator scheme degrades gracefully either way — a failed
    escalation serves the frame's edge verdict immediately — and the spool
    upgrades those frames to the cloud verdict late.  Rolling mAP is scored
    without a freshness deadline: the measurement is eventual quality.  No
    paper counterpart (the paper's link never fails).
    """
    from repro.experiments.fleet import (
        FLEET_CAMERAS,
        FLEET_LOSS_PROBABILITY,
        availability_outcomes,
    )

    rows = []
    for outcome in availability_outcomes(harness):
        report = outcome.report
        rows.append(
            {
                "outage": outcome.outage,
                "scheme": outcome.scheme,
                "escalation": outcome.escalation,
                "frames_lost_percent": round(outcome.frames_lost_percent, 2),
                "failed_transfers": report.escalations_failed,
                "dropped_escalations": report.escalations_dropped,
                "recovered_verdicts": report.escalations_recovered,
                "p99_ms": round(1000.0 * report.latency.p99, 1),
                "rolling_map": round(outcome.mean_map, 2),
            }
        )
    return TableResult(
        table_id="XX",
        title=f"Escalation policies serving the {FLEET_CAMERAS}-camera fleet "
        "over an unreliable uplink (~30% downtime, "
        f"{100.0 * FLEET_LOSS_PROBABILITY:g}% transfer loss)",
        columns=(
            "outage",
            "scheme",
            "escalation",
            "frames_lost_percent",
            "failed_transfers",
            "dropped_escalations",
            "recovered_verdicts",
            "p99_ms",
            "rolling_map",
        ),
        rows=rows,
        paper_rows=None,
        notes="Extension workload: frames_lost_percent counts frames that "
        "never produced a result; failed_transfers counts failed uplink "
        "attempts (retries included), dropped_escalations the cases "
        "permanently abandoned, recovered_verdicts the spooled cases whose "
        "cloud verdict eventually landed.  Rolling mAP has no freshness "
        "deadline — it measures eventual quality after recovery.",
    )


def table_21_control_plane(harness: Harness) -> TableResult:
    """Table XXI (extension): the closed-loop fleet control plane.

    The ``admission`` rows run the saturated cloud-only fleet and climb the
    information ladder: drop-newest (no deadline logic), the omniscient
    deadline policy (reads exact simulator queue state — an upper bound no
    deployment can run), the estimated policy (the same shedding rule from
    EWMA estimates of each camera's own completion events), and the
    estimated policy plus a fleet-wide uplink coordinator sweeping between
    arrivals.  The ``drift`` rows run the half-night fleet on a congested
    uplink: statically fitted thresholds over-upload on night footage and
    saturate the link, while per-camera adaptive quotas hold the realised
    upload ratio to the affordable budget and stay fresh.  No paper
    counterpart (the paper's policies are static and omniscient).
    """
    from repro.experiments.fleet import FLEET_CAMERAS, FLEET_FRESHNESS_S, control_plane_outcomes

    outcomes = control_plane_outcomes(harness)
    rows = []
    for outcome in outcomes:
        rows.append(
            {
                "group": outcome.group,
                "policy": outcome.label,
                "rolling_map": round(outcome.mean_map, 2),
                "fresh_percent": round(outcome.fresh_percent, 2),
                "mean_staleness_s": round(outcome.mean_staleness_s, 3),
                "uploads": outcome.uploads,
            }
        )
    by_label = {(o.group, o.label): o.mean_map for o in outcomes}
    floor = by_label[("admission", "drop-newest")]
    omniscient = by_label[("admission", "deadline-aware")]
    estimated = by_label[("admission", "estimated-deadline")]
    gap = omniscient - floor
    recovery = 100.0 * (estimated - floor) / gap if gap > 0 else 0.0
    return TableResult(
        table_id="XXI",
        title=f"Closed-loop control plane on the {FLEET_CAMERAS}-camera fleet: "
        "estimated-time admission, uplink coordination, adaptive offload quotas",
        columns=(
            "group",
            "policy",
            "rolling_map",
            "fresh_percent",
            "mean_staleness_s",
            "uploads",
        ),
        rows=rows,
        paper_rows=None,
        notes="Extension workload scored at the "
        f"{FLEET_FRESHNESS_S:g} s freshness deadline.  The estimated "
        f"admission policy recovers {recovery:.1f}% of the omniscient "
        "policy's rolling-mAP gap over drop-newest using only observed "
        "completion events; the drift rows compare statically fitted "
        "discriminator thresholds against per-camera adaptive upload "
        "quotas on a congested uplink.",
    )


def table_22_network(harness: Harness) -> TableResult:
    """Table XXII (extension): time-varying links through the runtime stack.

    The shared fleet uplink runs under three bandwidth profiles — the
    constant testbed WLAN (bit-for-bit the pre-schedule scalar path), a
    deterministic periodic congestion dip, and the bundled LTE-like random
    walk with a mid-run trough — and each serving scheme (cloud-only vs the
    difficult-case discriminator) runs under each admission policy:
    drop-newest, the constant-estimate ``EstimatedDeadlineAware`` (which
    trusts its EWMA memory through a dip), and the schedule-aware variant
    (which folds the link schedule's remaining-time bound into every doom
    test).  No paper counterpart (the paper's testbed link is a constant).
    """
    from repro.experiments.fleet import FLEET_CAMERAS, FLEET_FRESHNESS_S, network_outcomes

    outcomes = network_outcomes(harness)
    rows = []
    for outcome in outcomes:
        rows.append(
            {
                "profile": outcome.profile,
                "scheme": outcome.scheme,
                "admission": outcome.admission,
                "rolling_map": round(outcome.mean_map, 2),
                "fresh_percent": round(outcome.fresh_percent, 2),
                "mean_staleness_s": round(outcome.mean_staleness_s, 3),
                "uploads": outcome.report.frames_uploaded,
            }
        )
    by_key = {(o.profile, o.scheme, o.admission): o.mean_map for o in outcomes}
    aware = by_key[("lte-trace", "cloud-only", "estimated-schedule")]
    blind = by_key[("lte-trace", "cloud-only", "estimated-constant")]
    return TableResult(
        table_id="XXII",
        title=f"Trace-driven uplink bandwidth on the {FLEET_CAMERAS}-camera fleet: "
        "profiles x schemes x admission policies",
        columns=(
            "profile",
            "scheme",
            "admission",
            "rolling_map",
            "fresh_percent",
            "mean_staleness_s",
            "uploads",
        ),
        rows=rows,
        paper_rows=None,
        notes="Extension workload scored at the "
        f"{FLEET_FRESHNESS_S:g} s freshness deadline.  On the LTE-like "
        f"trace the schedule-aware estimator holds {aware:.2f} rolling mAP "
        f"vs {blind:.2f} for the constant-estimate variant on the "
        "cloud-only fleet; on the constant profile the two are identical "
        "by construction.",
    )


def all_tables(harness: Harness) -> list[TableResult]:
    """Run every table in paper order."""
    runners = [
        table_01_discriminator,
        table_02_model_zoo,
        table_03_map_small1,
        table_04_counts_small1,
        table_05_map_small2,
        table_06_counts_small2,
        table_07_map_small3,
        table_08_counts_small3,
        table_09_map_yolov4,
        table_10_counts_yolov4,
        table_11_helmet_realworld,
        table_12_random_map,
        table_13_random_counts,
        table_14_blur_map,
        table_15_blur_counts,
        table_16_confidence_map,
        table_17_confidence_counts,
        table_18_fleet_policies,
        table_19_admission_policies,
        table_20_availability,
        table_21_control_plane,
        table_22_network,
    ]
    return [runner(harness) for runner in runners]
