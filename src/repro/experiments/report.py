"""EXPERIMENTS.md generation: paper-vs-measured for every table and figure."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.figures import all_figures
from repro.experiments.formatting import format_table_markdown, sparkline
from repro.experiments.harness import Harness, HarnessConfig
from repro.experiments.results import FigureResult
from repro.experiments.tables import all_tables

__all__ = ["render_report", "write_report"]

_PREAMBLE = """# EXPERIMENTS — paper vs measured

Reproduction record for *Edge-Cloud Collaborated Object Detection via
Difficult-Case Discriminator* (ICDCS 2023).  Every number in the "measured"
columns is produced by this repository's pipeline (synthetic datasets +
calibrated detector simulators + the real discriminator/system code); the
"paper" columns quote the publication.

Calibration contract: the simulator is calibrated *only* to the paper's
detected-object counts (recall at serving threshold 0.5) per model/setting.
All other quantities — mAP, end-to-end ratios, upload ratios, discriminator
metrics, latency — are measured outcomes.  Absolute agreement is therefore
not expected; the reproduction criterion is the paper's *shape*: who wins,
by roughly what factor, and where the knees fall.

Regenerate with:

```bash
python -m repro.experiments.report          # full-size splits (~10 min)
pytest benchmarks/ --benchmark-only          # per-table benches
```

Known deviations (and why they are inherent to the substitution):

* **Small-model mAPs run ~4-7 points below the paper on VOC.**  We evaluate
  mAP over served detections (score >= 0.5, the paper's serving threshold),
  which reconciles the big-model rows almost exactly; the small models'
  published mAPs appear to include some below-threshold tail we deliberately
  exclude.  Every relative claim (small << e2e <= big) is unaffected.
* **Upload ratios on coco18/helmet/YOLOv4 run below the paper's ~50/51/21 %.**
  The published detected-object counts pin both models' recalls, which caps
  the difficult-case prevalence our synthetic scenes can express (e.g.
  helmet: big recall 0.92 -> at most ~25 % of images can be difficult).  The
  discriminator simply needs fewer uploads to capture them; end-to-end
  quality ratios still match the paper.
* **Table II FLOPs for the MobileNet small models are lower than printed.**
  The sizes and pruned ratios match; the paper's 5.31 GFLOPs for a
  MobileNetV1-SSD at 300 px is not reachable with any standard width
  setting, so we kept the faithful architecture and report its true cost.
"""


def _figure_markdown(figure: FigureResult) -> str:
    lines = [f"### Figure {figure.figure_id} — {figure.title}", ""]
    if figure.figure_id == "4":
        easy = len(figure.series["easy_count"])
        difficult = len(figure.series["difficult_count"])
        total = easy + difficult
        lines.append(
            f"- {difficult} difficult vs {easy} easy training images "
            f"({100 * difficult / max(total, 1):.1f}% difficult)."
        )
        import numpy as np

        for kind in ("easy", "difficult"):
            counts = np.asarray(figure.series[f"{kind}_count"])
            areas = np.asarray(figure.series[f"{kind}_min_area"])
            if counts.size:
                lines.append(
                    f"- {kind} cases: mean objects {counts.mean():.2f}, "
                    f"median min-area {np.median(areas):.3f}."
                )
        lines.append(
            "- Paper's claim (difficult cases concentrate at many objects / "
            "small minimum areas) holds: compare the two rows above."
        )
    else:
        lines.append(f"x = {figure.x_label}: " + ", ".join(f"{x:g}" for x in figure.x_values))
        lines.append("")
        lines.append("| series | values | trend |")
        lines.append("|---|---|---|")
        for name, values in figure.series.items():
            rendered = ", ".join(f"{v:.3g}" for v in values)
            lines.append(f"| {name} | {rendered} | {sparkline(values)} |")
    if figure.notes:
        lines.append("")
        lines.append(f"*{figure.notes}*")
    lines.append("")
    return "\n".join(lines)


def render_report(harness: Harness) -> str:
    """Render the full EXPERIMENTS.md content.

    Detection production for all tables and figures is fanned out across
    the harness's worker pool first (a no-op when serial), so the
    table/figure builders below hit the memo cache for every expensive
    artifact.
    """
    from repro.experiments.suite import prefetch_detections

    prefetch_detections(harness)
    parts = [_PREAMBLE]
    config = harness.config
    parts.append(
        f"\nRun configuration: seed {config.seed}, train images per setting "
        f"<= {config.train_images}, test fraction {config.test_fraction}.\n"
    )
    parts.append("\n## Tables\n")
    for table in all_tables(harness):
        parts.append(format_table_markdown(table))
    parts.append("\n## Figures\n")
    for figure in all_figures(harness):
        parts.append(_figure_markdown(figure))
    return "\n".join(parts)


def write_report(path: str | Path, harness: Harness | None = None) -> Path:
    """Generate EXPERIMENTS.md at ``path`` and return the path.

    A caller-supplied harness is left running (its pool lifecycle belongs to
    the caller); an internally created one is closed before returning.
    """
    path = Path(path)
    if harness is None:
        with Harness(HarnessConfig()) as owned:
            path.write_text(render_report(owned))
        return path
    path.write_text(render_report(harness))
    return path


def main() -> None:  # pragma: no cover - CLI entry point
    """CLI: python -m repro.experiments.report [output-path]"""
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    written = write_report(target)
    print(f"wrote {written}")


if __name__ == "__main__":  # pragma: no cover
    main()
