"""Plain-text and Markdown rendering of table/figure results."""

from __future__ import annotations

import math

from repro.experiments.results import FigureResult, TableResult

__all__ = ["format_table", "format_table_markdown", "format_figure", "sparkline"]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def format_table(result: TableResult) -> str:
    """Fixed-width text rendering (used by the benchmark harness output)."""
    headers = list(result.columns)
    body = [[_format_cell(row.get(col)) for col in headers] for row in result.rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"Table {result.table_id}: {result.title}"]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def format_table_markdown(result: TableResult) -> str:
    """Markdown rendering with measured-vs-paper columns where available."""
    headers = list(result.columns)
    lines = [f"### Table {result.table_id} — {result.title}", ""]
    if result.paper_rows is None:
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in result.rows:
            lines.append("| " + " | ".join(_format_cell(row.get(col)) for col in headers) + " |")
    else:
        key_col = headers[0]
        value_cols = headers[1:]
        expanded = [key_col]
        for col in value_cols:
            expanded.extend([f"{col} (measured)", f"{col} (paper)"])
        lines.append("| " + " | ".join(expanded) + " |")
        lines.append("|" + "|".join("---" for _ in expanded) + "|")
        paper_by_key = {row.get(key_col): row for row in result.paper_rows}
        for row in result.rows:
            paper = paper_by_key.get(row.get(key_col), {})
            cells = [_format_cell(row.get(key_col))]
            for col in value_cols:
                cells.append(_format_cell(row.get(col)))
                cells.append(_format_cell(paper.get(col)) if paper else "-")
            lines.append("| " + " | ".join(cells) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    lines.append("")
    return "\n".join(lines)


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Unicode sparkline of a series (empty-safe)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        return _SPARK_CHARS[3] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[index])
    return "".join(out)


def format_figure(result: FigureResult) -> str:
    """Compact text rendering of a figure's series."""
    lines = [f"Figure {result.figure_id}: {result.title}"]
    lines.append(f"x ({result.x_label}): " + ", ".join(f"{x:g}" for x in result.x_values[:12]))
    for name, values in result.series.items():
        preview = ", ".join(f"{v:.3g}" for v in values[:12])
        lines.append(f"  {name}: [{preview}{'...' if len(values) > 12 else ''}]  {sparkline(values[:40])}")
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
