"""Runners for the paper's evaluation figures (4, 7, 8, 9)."""

from __future__ import annotations

import numpy as np

from repro.core.cases import label_cases
from repro.core.features import extract_feature_arrays
from repro.core.thresholds import area_threshold_sweep
from repro.data.stats import per_image_features
from repro.experiments.harness import Harness
from repro.experiments.results import FigureResult

__all__ = [
    "detection_artifacts",
    "difficulty_priority",
    "figure_04_case_scatter",
    "figure_07_threshold_sweep",
    "figure_08_map_vs_upload",
    "figure_09_counts_vs_upload",
    "figure_10_fleet_quality",
    "figure_11_staleness_tradeoff",
    "figure_12_outage_recovery",
    "figure_13_control_plane",
    "figure_14_network",
    "all_figures",
]

#: Upload-ratio grid of Figures 8 and 9.
UPLOAD_GRID: tuple[float, ...] = tuple(np.round(np.arange(0.0, 1.01, 0.1), 1))


def detection_artifacts() -> tuple[tuple[str, str, str], ...]:
    """Distinct ``(model, setting, split)`` detection artifacts of the figures.

    Figures 4 and 7 read the small1/SSD train-split detections on VOC07+12;
    Figures 8-9 additionally sweep the test split through the same pair, and
    the fleet runs of Figures 10-11 consume the helmet pair (both splits:
    the test detections feed the policies, the train split fits the
    discriminator).  (All are a subset of the table suite's artifacts; the
    suite scheduler deduplicates across both lists.)
    """
    return (
        ("small1", "voc07+12", "train"),
        ("ssd", "voc07+12", "train"),
        ("small1", "voc07+12", "test"),
        ("ssd", "voc07+12", "test"),
        ("small1", "helmet", "train"),
        ("ssd", "helmet", "train"),
        ("small1", "helmet", "test"),
        ("ssd", "helmet", "test"),
    )


def difficulty_priority(
    n_predict: np.ndarray,
    n_estimated: np.ndarray,
    min_area: np.ndarray,
    *,
    count_threshold: int = 2,
    area_threshold: float = 0.31,
) -> np.ndarray:
    """Continuous difficulty score consistent with the discriminator.

    The paper sweeps the upload ratio (Figs. 8-9) without saying how
    intermediate ratios are produced; we rank images by a score that orders
    them the same way the three-step rule would — uncertain images first
    (larger count gaps, more estimated objects, smaller minimum areas), then
    certain ones — and upload the top fraction.  At the discriminator's own
    operating ratio the selection closely matches its binary verdicts.
    """
    n_predict = np.asarray(n_predict, dtype=np.float64)
    n_estimated = np.asarray(n_estimated, dtype=np.float64)
    min_area = np.asarray(min_area, dtype=np.float64)
    gap = n_estimated - n_predict
    uncertain = (gap != 0).astype(np.float64)
    crowding = n_estimated / max(count_threshold, 1)
    smallness = np.clip((area_threshold - min_area) / max(area_threshold, 1e-9), 0.0, None)
    # Certain images rank below every uncertain one; within each group the
    # same semantics (crowding, smallness) order the images.
    return uncertain * (10.0 + np.abs(gap) + crowding + smallness) + (
        1.0 - uncertain
    ) * (0.1 * crowding + 0.05 * smallness)


def figure_04_case_scatter(harness: Harness) -> FigureResult:
    """Fig. 4: easy/difficult cases over (object count, min area ratio).

    Labels follow Sec. V.A (big detects >= 1 more object than small) on the
    VOC07+12 training split; coordinates are the true per-image semantics.
    """
    setting = "voc07+12"
    train = harness.dataset(setting, "train")
    labels = label_cases(
        harness.detections("small1", setting, "train"),
        harness.detections("ssd", setting, "train"),
    )
    counts, min_areas = per_image_features(train)
    difficult = labels
    return FigureResult(
        figure_id="4",
        title="Distribution of easy and difficult cases over the number of "
        "objects and the minimum object area ratio",
        x_label="minimum object area ratio",
        x_values=[float(v) for v in min_areas],
        series={
            "easy_min_area": [float(v) for v in min_areas[~difficult]],
            "easy_count": [float(v) for v in counts[~difficult]],
            "difficult_min_area": [float(v) for v in min_areas[difficult]],
            "difficult_count": [float(v) for v in counts[difficult]],
        },
        notes="Difficult cases concentrate at many objects / small minimum "
        "area; easy cases at few objects / large minimum area.",
    )


def figure_07_threshold_sweep(harness: Harness) -> FigureResult:
    """Fig. 7: discriminator metrics vs the area threshold (count fixed at 2)."""
    setting = "voc07+12"
    train = harness.dataset(setting, "train")
    small_train = harness.detections("small1", setting, "train")
    labels = label_cases(small_train, harness.detections("ssd", setting, "train"))
    n_predict = small_train.count_above(0.5)
    true_counts = train.truth_batch.counts()
    true_min_areas = train.truth_batch.min_area_ratios()
    rows = area_threshold_sweep(n_predict, true_counts, true_min_areas, labels, count_threshold=2)
    return FigureResult(
        figure_id="7",
        title="Discriminator performance as the minimum-object-area-ratio "
        "threshold varies (count threshold fixed at 2)",
        x_label="area-ratio threshold",
        x_values=[row["area_threshold"] for row in rows],
        series={
            "accuracy": [row["accuracy"] for row in rows],
            "precision": [row["precision"] for row in rows],
            "recall": [row["recall"] for row in rows],
            "f1": [row["f1"] for row in rows],
        },
    )


def _upload_sweep(harness: Harness, setting: str) -> list:
    """System runs across the upload-ratio grid using difficulty ranking."""
    discriminator, _ = harness.discriminator("small1", "ssd", setting)
    small_test = harness.detections("small1", setting, "test")
    n_predict, n_estimated, min_area = extract_feature_arrays(small_test, discriminator.confidence_threshold)
    priority = difficulty_priority(
        n_predict,
        n_estimated,
        min_area,
        count_threshold=discriminator.count_threshold,
        area_threshold=discriminator.area_threshold,
    )
    order = np.lexsort((np.arange(priority.shape[0]), -priority))
    runs = []
    for ratio in UPLOAD_GRID:
        count = int(round(ratio * priority.shape[0]))
        mask = np.zeros(priority.shape[0], dtype=bool)
        mask[order[:count]] = True
        runs.append(harness.system_run("small1", "ssd", setting, uploaded=mask))
    return runs


def figure_08_map_vs_upload(harness: Harness, setting: str = "voc07+12") -> FigureResult:
    """Fig. 8: end-to-end mAP under different upload ratios."""
    runs = _upload_sweep(harness, setting)
    maps = [run.end_to_end_map() for run in runs]
    big_map = harness.model_map("ssd", setting)
    return FigureResult(
        figure_id="8",
        title="End-to-end mAP under different upload ratios (small model 1)",
        x_label="upload ratio",
        x_values=list(UPLOAD_GRID),
        series={
            "e2e_map": maps,
            "fraction_of_cloud_only": [m / big_map for m in maps],
        },
        notes="The curve is concave with a knee near 50% upload, where mAP "
        "already reaches ~90% of cloud-only (the paper's parabola turning "
        "point).",
    )


def figure_09_counts_vs_upload(harness: Harness, setting: str = "voc07+12") -> FigureResult:
    """Fig. 9: detected objects under different upload ratios."""
    runs = _upload_sweep(harness, setting)
    counts = [run.end_to_end_counts().detected for run in runs]
    big_count = harness.model_counts("ssd", setting).detected
    return FigureResult(
        figure_id="9",
        title="Number of detected objects under different upload ratios "
        "(small model 1)",
        x_label="upload ratio",
        x_values=list(UPLOAD_GRID),
        series={
            "e2e_detected": [float(c) for c in counts],
            "fraction_of_cloud_only": [c / big_count for c in counts],
        },
        notes="At 50% upload the count exceeds ~94% of cloud-only, "
        "mirroring the paper's knee.",
    )


def figure_10_fleet_quality(harness: Harness) -> FigureResult:
    """Figure 10 (extension): rolling online mAP of every fleet policy.

    One mAP series per offload policy over the shared window grid of the
    eight-camera fleet run (:mod:`repro.experiments.fleet`).  The shared
    uplink saturating under cloud-only shows up directly as a quality
    collapse, while the collaborative policies hold their level.
    """
    from repro.experiments.fleet import fleet_policy_outcomes

    outcomes = fleet_policy_outcomes(harness)
    x_values = [window.t_end for window in outcomes[0].windows]
    return FigureResult(
        figure_id="10",
        title="Rolling online mAP of an 8-camera fleet under each offload "
        "policy (helmet deployment, shared uplink and cloud GPU)",
        x_label="window end (s)",
        x_values=x_values,
        series={
            outcome.policy: [window.map_percent for window in outcome.windows]
            for outcome in outcomes
        },
        notes="Windows score every arriving frame; dropped and stale results "
        "count as empty detections, so saturation is measured quality loss.",
    )


def figure_11_staleness_tradeoff(harness: Harness) -> FigureResult:
    """Figure 11 (extension): the staleness / online-mAP trade-off.

    One point per (serving scheme, admission policy) fleet run of Table
    XIX: x is the mean result age of the frames the run actually served,
    the series give the rolling online mAP and the fresh-serve rate at the
    deadline.  Buffers that hold stale frames (drop-newest/drop-oldest
    under saturation) sit far right at near-zero quality; the
    deadline-aware buffer trades a higher shed count for points in the
    fresh, high-mAP corner.
    """
    from repro.experiments.fleet import FLEET_FRESHNESS_S, admission_policy_outcomes

    outcomes = admission_policy_outcomes(harness)
    labels = [f"{outcome.scheme}/{outcome.admission}" for outcome in outcomes]
    return FigureResult(
        figure_id="11",
        title="Served-frame staleness vs rolling online mAP for each "
        "(serving scheme, admission policy) fleet run",
        x_label="mean served result age (s)",
        x_values=[round(outcome.mean_staleness_s, 3) for outcome in outcomes],
        series={
            "rolling_map": [round(outcome.mean_map, 2) for outcome in outcomes],
            "fresh_percent": [round(outcome.fresh_percent, 2) for outcome in outcomes],
        },
        notes="Points in x order: " + ", ".join(labels) + ".  Scored at the "
        f"{FLEET_FRESHNESS_S:g} s freshness deadline; a buffer that serves "
        "stale frames spends pipeline time on results that no longer count.",
    )


def figure_12_outage_recovery(harness: Harness) -> FigureResult:
    """Figure 12 (extension): rolling mAP through uplink outages, by policy.

    One rolling-mAP series per (serving scheme, escalation policy) fleet
    run under the deterministic ``periodic-30`` outage schedule of Table
    XX.  Cloud-only under no-retry / drop-on-failure collapses in every
    down window and never gets those frames back; the durable escalation
    queue refills the same windows as spooled verdicts land after each
    outage.  The discriminator rows barely dip — failed escalations serve
    their edge verdict immediately and the spool upgrades them late.
    """
    from repro.experiments.fleet import availability_outcomes

    outcomes = [o for o in availability_outcomes(harness) if o.outage == "periodic-30"]
    x_values = [window.t_end for window in outcomes[0].windows]
    return FigureResult(
        figure_id="12",
        title="Rolling mAP of the 8-camera fleet through periodic uplink "
        "outages, per serving scheme and escalation policy",
        x_label="window end (s)",
        x_values=x_values,
        series={
            f"{outcome.scheme}/{outcome.escalation}": [
                window.map_percent for window in outcome.windows
            ]
            for outcome in outcomes
        },
        notes="Uplink down 6 s of every 20 s plus 5% transfer loss; no "
        "freshness deadline, so a window's score includes verdicts recovered "
        "for its frames after the outage.",
    )


def figure_13_control_plane(harness: Harness) -> FigureResult:
    """Figure 13 (extension): rolling mAP of the closed-loop control plane.

    One rolling-mAP series per Table XXI run over the shared window grid.
    The ``admission/*`` series show the estimated policy tracking the
    omniscient deadline policy on the saturated cloud-only fleet (with
    drop-newest collapsed at the floor) and the uplink coordinator pulling
    ahead of per-arrival shedding; the ``drift/*`` series show the static
    thresholds decaying as the congested uplink backs up while the
    adaptive quotas hold their level.
    """
    from repro.experiments.fleet import FLEET_FRESHNESS_S, control_plane_outcomes

    outcomes = control_plane_outcomes(harness)
    x_values = [window.t_end for window in outcomes[0].windows]
    return FigureResult(
        figure_id="13",
        title="Rolling mAP of the closed-loop control plane: estimated vs "
        "omniscient admission, uplink coordination, adaptive quotas under drift",
        x_label="window end (s)",
        x_values=x_values,
        series={
            f"{outcome.group}/{outcome.label}": [
                window.map_percent for window in outcome.windows
            ]
            for outcome in outcomes
        },
        notes=f"Scored at the {FLEET_FRESHNESS_S:g} s freshness deadline.  "
        "admission/* series run the saturated cloud-only fleet; drift/* "
        "series run the half-night fleet on the congested uplink.",
    )


def figure_14_network(harness: Harness) -> FigureResult:
    """Figure 14 (extension): rolling mAP through the LTE-like trace.

    One rolling-mAP series per (scheme, admission) pair on the bundled
    ``lte_like`` uplink trace — the profile whose mid-run congestion trough
    makes the orderings visible: the schedule-aware estimator sheds the
    frames the dip has already doomed (holding the survivors fresh) while
    the constant-estimate variant admits them on stale EWMA memory, and the
    discriminator scheme's edge verdicts keep serving through the trough
    that starves the cloud-only fleet.
    """
    from repro.experiments.fleet import FLEET_FRESHNESS_S, network_outcomes

    outcomes = [o for o in network_outcomes(harness) if o.profile == "lte-trace"]
    x_values = [window.t_end for window in outcomes[0].windows]
    return FigureResult(
        figure_id="14",
        title="Rolling mAP on the LTE-like bandwidth trace: serving schemes "
        "x admission policies through the congestion trough",
        x_label="window end (s)",
        x_values=x_values,
        series={
            f"{outcome.scheme}/{outcome.admission}": [
                window.map_percent for window in outcome.windows
            ]
            for outcome in outcomes
        },
        notes=f"Scored at the {FLEET_FRESHNESS_S:g} s freshness deadline on "
        "the bundled lte_like trace (benchmarks/traces/); the constant and "
        "periodic-dip profiles of the same runs are tabulated in Table "
        "XXII.",
    )


def all_figures(harness: Harness) -> list[FigureResult]:
    """Run every figure in paper order (extensions last)."""
    return [
        figure_04_case_scatter(harness),
        figure_07_threshold_sweep(harness),
        figure_08_map_vs_upload(harness),
        figure_09_counts_vs_upload(harness),
        figure_10_fleet_quality(harness),
        figure_11_staleness_tradeoff(harness),
        figure_12_outage_recovery(harness),
        figure_13_control_plane(harness),
        figure_14_network(harness),
    ]
