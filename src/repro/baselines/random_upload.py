"""Baseline 1: randomly upload a fixed fraction of images (Sec. VI.E.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.baselines.policy import UploadPolicy
from repro.data.datasets import Dataset
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["RandomUploadPolicy"]


@dataclass
class RandomUploadPolicy(UploadPolicy):
    """Upload ``ratio`` of the images chosen uniformly at random.

    The selection is deterministic in the seed and the dataset identity, so
    repeated experiment runs produce identical tables.
    """

    ratio: float = 0.5
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1], got {self.ratio}")

    def select(self, dataset: Dataset, small_detections: list[Detections]) -> np.ndarray:
        self._check_alignment(dataset, small_detections)
        rng = generator_for(self.seed, "random-upload", dataset.name, dataset.split)
        count = int(round(self.ratio * len(dataset)))
        mask = np.zeros(len(dataset), dtype=bool)
        if count:
            chosen = rng.choice(len(dataset), size=count, replace=False)
            mask[chosen] = True
        return mask
