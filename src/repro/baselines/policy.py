"""Upload-policy interface and the trivial policies.

An :class:`UploadPolicy` replaces the difficult-case discriminator inside
the small-big system: given a split and the small model's preliminary
detections, it decides which images go to the cloud.  The paper's Sec. VI.E
baselines (random / blurred / top-1 confidence) are ratio-quota policies —
they upload exactly a fixed fraction, which makes the mAP comparison at
equal bandwidth fair.

Every :class:`UploadPolicy` structurally satisfies the serving pipeline's
:class:`~repro.runtime.serving.OffloadPolicy` protocol, so the baselines
plug directly into :func:`~repro.runtime.serving.run_cost`,
:func:`~repro.runtime.serving.simulate_stream` and
:func:`~repro.runtime.serving.simulate_fleet` via
:func:`~repro.runtime.serving.collaborative_scheme`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["UploadPolicy", "EdgeOnlyPolicy", "CloudOnlyPolicy", "quota_mask"]


class UploadPolicy(abc.ABC):
    """Decides which images of a split are uploaded to the cloud."""

    @abc.abstractmethod
    def select(self, dataset: Dataset, small_detections: list[Detections]) -> np.ndarray:
        """Boolean upload mask aligned with ``dataset.records``."""

    @property
    def name(self) -> str:
        """Policy identifier used in reports."""
        return type(self).__name__

    def _check_alignment(self, dataset: Dataset, small_detections: list[Detections] | None) -> None:
        if small_detections is None:
            raise ConfigurationError(
                f"the {self.name} policy needs the small model's detections "
                "(pass small_detections= to the serving engine)"
            )
        if len(dataset) != len(small_detections):
            raise ConfigurationError(f"{len(small_detections)} detection sets for " f"{len(dataset)} images")


@dataclass
class EdgeOnlyPolicy(UploadPolicy):
    """Never upload: every image is served by the small model.

    ``small_detections`` is optional — the decision needs no model output
    (the serving pipeline resolves degenerate policies without detections).
    """

    def select(self, dataset: Dataset, small_detections: list[Detections] | None = None) -> np.ndarray:
        if small_detections is not None:
            self._check_alignment(dataset, small_detections)
        return np.zeros(len(dataset), dtype=bool)


@dataclass
class CloudOnlyPolicy(UploadPolicy):
    """Always upload: every image is served by the big model.

    ``small_detections`` is optional, as for :class:`EdgeOnlyPolicy`.
    """

    def select(self, dataset: Dataset, small_detections: list[Detections] | None = None) -> np.ndarray:
        if small_detections is not None:
            self._check_alignment(dataset, small_detections)
        return np.ones(len(dataset), dtype=bool)


def quota_mask(priorities: np.ndarray, ratio: float) -> np.ndarray:
    """Upload mask selecting the ``ratio`` highest-priority images.

    Ties are broken by index for determinism; exactly
    ``round(ratio * N)`` images are selected.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ConfigurationError(f"ratio must be in [0, 1], got {ratio}")
    priorities = np.asarray(priorities, dtype=np.float64).reshape(-1)
    count = int(round(ratio * priorities.shape[0]))
    mask = np.zeros(priorities.shape[0], dtype=bool)
    if count == 0:
        return mask
    order = np.lexsort((np.arange(priorities.shape[0]), -priorities))
    mask[order[:count]] = True
    return mask
