"""Baseline 2: upload the blurriest images (Sec. VI.E.2).

Ambiguity is measured with the Brenner gradient (Eq. 2) computed on the
actual rendered pixels — the blurrier the image, the smaller the gradient —
and the lowest-scoring ``ratio`` of the split is uploaded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.policy import UploadPolicy, quota_mask
from repro.data.datasets import Dataset
from repro.data.render import brenner_gradient, render_image
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["BlurUploadPolicy"]


@dataclass
class BlurUploadPolicy(UploadPolicy):
    """Upload the ``ratio`` images with the lowest Brenner gradient."""

    ratio: float = 0.5
    render_size: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1], got {self.ratio}")

    def sharpness(self, dataset: Dataset) -> np.ndarray:
        """Brenner gradient of every image in the split."""
        return np.array([brenner_gradient(render_image(record, size=self.render_size)) for record in dataset.records])

    def select(self, dataset: Dataset, small_detections: list[Detections]) -> np.ndarray:
        self._check_alignment(dataset, small_detections)
        # Lowest sharpness = highest upload priority.
        return quota_mask(-self.sharpness(dataset), self.ratio)
