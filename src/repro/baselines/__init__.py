"""Comparison upload strategies (Sec. VI.E) plus edge/cloud-only policies."""

from repro.baselines.blur_upload import BlurUploadPolicy
from repro.baselines.confidence_upload import ConfidenceUploadPolicy, mean_top1_confidence
from repro.baselines.policy import (
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    UploadPolicy,
    quota_mask,
)
from repro.baselines.random_upload import RandomUploadPolicy

__all__ = [
    "BlurUploadPolicy",
    "ConfidenceUploadPolicy",
    "mean_top1_confidence",
    "CloudOnlyPolicy",
    "EdgeOnlyPolicy",
    "UploadPolicy",
    "quota_mask",
    "RandomUploadPolicy",
]
