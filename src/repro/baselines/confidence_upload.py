"""Baseline 3: upload by top-1 confidence score (Sec. VI.E.3).

Per image, take the top-scoring box of every class, average those top-1
scores over the whole vocabulary (classes absent from the image contribute
0), sort the split by that value and upload the *least confident* half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.policy import UploadPolicy, quota_mask
from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = [
    "ConfidenceUploadPolicy",
    "mean_top1_confidence",
    "mean_top1_confidence_split",
]


def mean_top1_confidence(detections: Detections, num_classes: int) -> float:
    """The paper's image-level confidence signal.

    Per class, take the top-1 box score, then average.  We average over the
    classes *present in the detections* (images with no boxes score 0):
    dividing by the full vocabulary would reward crowded many-class images
    with high totals and keep them local — the opposite of the behaviour the
    paper reports for this baseline (clearly better than random/blurred).
    """
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    tops: list[float] = []
    for label in range(num_classes):
        mask = detections.labels == label
        if mask.any():
            tops.append(float(detections.scores[mask].max()))
    if not tops:
        return 0.0
    return sum(tops) / len(tops)


def mean_top1_confidence_split(batch: DetectionBatch, num_classes: int) -> np.ndarray:
    """Per-image mean top-1 confidence over a whole split, vectorised.

    Segments are score-descending, so the first occurrence of each
    ``(image, label)`` pair in the flat arrays carries that class's top-1
    score; one ``np.unique`` pass finds them all.
    """
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    num_images = len(batch)
    # Labels outside the vocabulary contribute nothing, matching the
    # per-image path's loop over range(num_classes).
    valid = (batch.labels >= 0) & (batch.labels < num_classes)
    if batch.num_boxes == 0 or not valid.any():
        return np.zeros(num_images)
    images = batch.image_indices()[valid]
    keys = images * np.int64(num_classes) + batch.labels[valid]
    unique_keys, first_index = np.unique(keys, return_index=True)
    tops = batch.scores[valid][first_index]
    owner = (unique_keys // num_classes).astype(np.int64)
    sums = np.bincount(owner, weights=tops, minlength=num_images)
    counts = np.bincount(owner, minlength=num_images)
    return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)


@dataclass
class ConfidenceUploadPolicy(UploadPolicy):
    """Upload the ``ratio`` images with the lowest mean top-1 confidence."""

    ratio: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1], got {self.ratio}")

    def select(self, dataset: Dataset, small_detections: DetectionBatch | list[Detections]) -> np.ndarray:
        self._check_alignment(dataset, small_detections)
        if isinstance(small_detections, DetectionBatch):
            confidences = mean_top1_confidence_split(small_detections, dataset.num_classes)
        else:
            confidences = np.array([mean_top1_confidence(dets, dataset.num_classes) for dets in small_detections])
        # Least confident = highest upload priority.
        return quota_mask(-confidences, self.ratio)
