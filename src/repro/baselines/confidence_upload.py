"""Baseline 3: upload by top-1 confidence score (Sec. VI.E.3).

Per image, take the top-scoring box of every class, average those top-1
scores over the whole vocabulary (classes absent from the image contribute
0), sort the split by that value and upload the *least confident* half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.policy import UploadPolicy, quota_mask
from repro.data.datasets import Dataset
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["ConfidenceUploadPolicy", "mean_top1_confidence"]


def mean_top1_confidence(detections: Detections, num_classes: int) -> float:
    """The paper's image-level confidence signal.

    Per class, take the top-1 box score, then average.  We average over the
    classes *present in the detections* (images with no boxes score 0):
    dividing by the full vocabulary would reward crowded many-class images
    with high totals and keep them local — the opposite of the behaviour the
    paper reports for this baseline (clearly better than random/blurred).
    """
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    tops: list[float] = []
    for label in range(num_classes):
        mask = detections.labels == label
        if mask.any():
            tops.append(float(detections.scores[mask].max()))
    if not tops:
        return 0.0
    return sum(tops) / len(tops)


@dataclass
class ConfidenceUploadPolicy(UploadPolicy):
    """Upload the ``ratio`` images with the lowest mean top-1 confidence."""

    ratio: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in [0, 1], got {self.ratio}")

    def select(
        self, dataset: Dataset, small_detections: list[Detections]
    ) -> np.ndarray:
        self._check_alignment(dataset, small_detections)
        confidences = np.array(
            [
                mean_top1_confidence(dets, dataset.num_classes)
                for dets in small_detections
            ]
        )
        # Least confident = highest upload priority.
        return quota_mask(-confidences, self.ratio)
