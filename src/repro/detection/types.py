"""Containers passed between the substrates and the core system.

Two immutable-by-convention dataclasses flow through the whole library:

* :class:`GroundTruth` — the annotation of one image (what *is* there),
* :class:`Detections` — the output of one detector on one image (what a
  model *claims* is there).

Both hold normalised ``xyxy`` boxes so areas are area *ratios* directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.detection.boxes import box_area, validate_boxes
from repro.errors import GeometryError

__all__ = ["GroundTruth", "Detections"]


def _as_int_labels(labels: np.ndarray | list, count: int, what: str) -> np.ndarray:
    array = np.asarray(labels, dtype=np.int64).reshape(-1)
    if array.shape[0] != count:
        raise GeometryError(f"{what}: got {array.shape[0]} labels for {count} boxes")
    return array


@dataclass(frozen=True)
class GroundTruth:
    """Annotation of a single image.

    Attributes
    ----------
    image_id:
        Stable identifier of the image inside its dataset split.
    boxes:
        ``(N, 4)`` normalised xyxy boxes.
    labels:
        ``(N,)`` integer class indices.
    width, height:
        Pixel dimensions of the underlying image (used only by the renderer
        and the transfer-size model; the geometry is resolution free).
    """

    image_id: str
    boxes: np.ndarray
    labels: np.ndarray
    width: int = 500
    height: int = 375

    def __post_init__(self) -> None:
        boxes = validate_boxes(self.boxes)
        labels = _as_int_labels(self.labels, boxes.shape[0], "GroundTruth")
        object.__setattr__(self, "boxes", boxes)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return int(self.boxes.shape[0])

    @property
    def num_objects(self) -> int:
        """Number of annotated objects."""
        return len(self)

    @property
    def area_ratios(self) -> np.ndarray:
        """Per-object area as a fraction of the image area."""
        return box_area(self.boxes)

    @property
    def min_area_ratio(self) -> float:
        """The paper's second semantic feature: the smallest object's area
        ratio.  Defined as 1.0 for an empty image (nothing can be missed)."""
        areas = self.area_ratios
        return float(areas.min()) if areas.size else 1.0


@dataclass(frozen=True)
class Detections:
    """Scored class predictions of one detector on one image.

    Boxes are sorted by descending score at construction time, which every
    consumer (NMS, counting, top-1-confidence baseline) relies on.
    """

    image_id: str
    boxes: np.ndarray
    scores: np.ndarray
    labels: np.ndarray
    detector: str = "unknown"
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        boxes = validate_boxes(self.boxes)
        count = boxes.shape[0]
        scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        if scores.shape[0] != count:
            raise GeometryError(f"Detections: got {scores.shape[0]} scores for {count} boxes")
        if count and (not np.isfinite(scores).all()):
            raise GeometryError("Detections: scores contain non-finite values")
        if count and ((scores < 0.0).any() or (scores > 1.0).any()):
            raise GeometryError("Detections: scores must lie in [0, 1]")
        labels = _as_int_labels(self.labels, count, "Detections")
        order = np.argsort(-scores, kind="stable")
        object.__setattr__(self, "boxes", boxes[order])
        object.__setattr__(self, "scores", scores[order])
        object.__setattr__(self, "labels", labels[order])

    def __len__(self) -> int:
        return int(self.boxes.shape[0])

    @classmethod
    def empty(cls, image_id: str, detector: str = "unknown") -> "Detections":
        """A detections object with no boxes."""
        return cls(
            image_id=image_id,
            boxes=np.zeros((0, 4)),
            scores=np.zeros(0),
            labels=np.zeros(0, dtype=np.int64),
            detector=detector,
        )

    def above(self, threshold: float) -> "Detections":
        """Detections whose score is ``>= threshold`` (the serving filter)."""
        keep = self.scores >= threshold
        return replace(
            self,
            boxes=self.boxes[keep],
            scores=self.scores[keep],
            labels=self.labels[keep],
        )

    def count_above(self, threshold: float) -> int:
        """Number of boxes scoring ``>= threshold``."""
        return int(np.count_nonzero(self.scores >= threshold))

    def min_area_above(self, threshold: float) -> float:
        """Smallest area ratio among boxes scoring ``>= threshold``.

        Returns 1.0 when no box passes — consistent with
        :attr:`GroundTruth.min_area_ratio` for empty images.
        """
        keep = self.scores >= threshold
        if not keep.any():
            return 1.0
        return float(box_area(self.boxes[keep]).min())

    def for_class(self, label: int) -> "Detections":
        """Detections restricted to one class label."""
        keep = self.labels == int(label)
        return replace(
            self,
            boxes=self.boxes[keep],
            scores=self.scores[keep],
            labels=self.labels[keep],
        )

    def top_score(self) -> float:
        """Highest score, or 0.0 when empty (used by the confidence baseline)."""
        return float(self.scores[0]) if len(self) else 0.0
