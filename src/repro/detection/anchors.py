"""Default-box (anchor) generation for SSD- and YOLO-style detectors.

The paper's small-model design argument is anchored (pun intended) in the
default-box budget: SSD300 places 8 732 default boxes over six feature maps,
and 5 776 of them — 66 % — live on the 38x38 map that the small model
removes.  This module reproduces those numbers exactly so the design claim in
Sec. IV.B is checkable in code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.detection.boxes import clip_boxes
from repro.errors import ConfigurationError

__all__ = [
    "FeatureMapSpec",
    "AnchorGrid",
    "ssd300_feature_maps",
    "ssd300_small_feature_maps",
    "yolo_feature_maps",
    "generate_anchors",
    "num_anchors",
]


@dataclass(frozen=True)
class FeatureMapSpec:
    """One detection feature map.

    Attributes
    ----------
    size:
        Spatial resolution (the map is ``size x size``).
    scale:
        Box scale relative to the image (SSD's ``s_k``).
    next_scale:
        Scale of the following map, used for the extra ``sqrt(s_k * s_k+1)``
        box.  ``None`` disables that box.
    aspect_ratios:
        Aspect ratios in addition to 1.  Each ratio ``r`` contributes boxes
        with width ``s*sqrt(r)`` and height ``s/sqrt(r)`` and its reciprocal.
    """

    size: int
    scale: float
    next_scale: float | None
    aspect_ratios: tuple[float, ...] = (2.0,)

    @property
    def boxes_per_location(self) -> int:
        """Number of default boxes per spatial location."""
        extra = 1 if self.next_scale is not None else 0
        return 1 + extra + 2 * len(self.aspect_ratios)

    @property
    def total_boxes(self) -> int:
        """Default boxes contributed by this map."""
        return self.size * self.size * self.boxes_per_location


@dataclass(frozen=True)
class AnchorGrid:
    """A fully generated anchor set for one detector head."""

    maps: tuple[FeatureMapSpec, ...]
    boxes: np.ndarray = field(repr=False)

    @property
    def total(self) -> int:
        """Total number of anchors."""
        return int(self.boxes.shape[0])

    def per_map_counts(self) -> list[int]:
        """Anchor count contributed by each feature map, in order."""
        return [spec.total_boxes for spec in self.maps]


def ssd300_feature_maps() -> tuple[FeatureMapSpec, ...]:
    """The six SSD300 feature maps (VGG16 conv4_3 ... conv11_2).

    Scales follow the original SSD paper (0.1 for conv4_3, then a linear ramp
    0.2..1.05); aspect-ratio sets are ``{2}`` for the first and last two maps
    and ``{2, 3}`` for the middle three, yielding 4/6/6/6/4/4 boxes per
    location and 8 732 boxes in total.
    """
    sizes = (38, 19, 10, 5, 3, 1)
    scales = (0.1, 0.2, 0.375, 0.55, 0.725, 0.9)
    next_scales = (0.2, 0.375, 0.55, 0.725, 0.9, 1.075)
    ratio_sets: tuple[tuple[float, ...], ...] = (
        (2.0,),
        (2.0, 3.0),
        (2.0, 3.0),
        (2.0, 3.0),
        (2.0,),
        (2.0,),
    )
    return tuple(
        FeatureMapSpec(size=s, scale=sc, next_scale=ns, aspect_ratios=ar)
        for s, sc, ns, ar in zip(sizes, scales, next_scales, ratio_sets)
    )


def ssd300_small_feature_maps() -> tuple[FeatureMapSpec, ...]:
    """The small model's five feature maps: SSD300 without the 38x38 map.

    Removing the 38x38 map discards 5 776 of SSD's 8 732 default boxes
    (66 %), which is exactly the design trade-off Sec. IV.B describes: large
    feature maps analyse small objects, so the small model is prone to miss
    small and crowded objects.
    """
    return ssd300_feature_maps()[1:]


def yolo_feature_maps(input_size: int = 608) -> tuple[FeatureMapSpec, ...]:
    """YOLOv4-style three-scale anchor grids (strides 8/16/32).

    YOLO uses 3 anchors per location learned by k-means; we model them as one
    scale with ratio set ``{2}`` (3 boxes/location) per map, which reproduces
    the anchor *budget* ``3 * (S/8)^2 + 3 * (S/16)^2 + 3 * (S/32)^2``.
    """
    if input_size % 32 != 0:
        raise ConfigurationError("YOLO input size must be a multiple of 32")
    sizes = tuple(input_size // stride for stride in (8, 16, 32))
    scales = (0.05, 0.15, 0.4)
    return tuple(
        FeatureMapSpec(size=s, scale=sc, next_scale=None, aspect_ratios=(2.0,))
        for s, sc in zip(sizes, scales)
    )


def _location_centers(size: int) -> np.ndarray:
    """Centers of a ``size x size`` grid in normalised coordinates."""
    step = 1.0 / size
    coords = (np.arange(size) + 0.5) * step
    cx, cy = np.meshgrid(coords, coords)
    return np.stack([cx.ravel(), cy.ravel()], axis=1)


def _map_anchor_shapes(spec: FeatureMapSpec) -> np.ndarray:
    """The ``(boxes_per_location, 2)`` width/height set of one feature map."""
    shapes: list[tuple[float, float]] = [(spec.scale, spec.scale)]
    if spec.next_scale is not None:
        geo = math.sqrt(spec.scale * spec.next_scale)
        shapes.append((geo, geo))
    for ratio in spec.aspect_ratios:
        root = math.sqrt(ratio)
        shapes.append((spec.scale * root, spec.scale / root))
        shapes.append((spec.scale / root, spec.scale * root))
    return np.asarray(shapes, dtype=np.float64)


def generate_anchors(maps: tuple[FeatureMapSpec, ...] | list[FeatureMapSpec]) -> AnchorGrid:
    """Materialise the anchor boxes for a sequence of feature maps.

    Returns an :class:`AnchorGrid` whose boxes are normalised xyxy, clipped
    to the unit square (SSD clips its default boxes the same way).
    """
    if not maps:
        raise ConfigurationError("at least one feature map is required")
    chunks: list[np.ndarray] = []
    for spec in maps:
        centers = _location_centers(spec.size)
        shapes = _map_anchor_shapes(spec)
        # (locations, shapes, 4) -> flatten.
        half = shapes / 2.0
        mins = centers[:, None, :] - half[None, :, :]
        maxs = centers[:, None, :] + half[None, :, :]
        boxes = np.concatenate([mins, maxs], axis=2).reshape(-1, 4)
        chunks.append(boxes)
    all_boxes = clip_boxes(np.concatenate(chunks, axis=0))
    return AnchorGrid(maps=tuple(maps), boxes=all_boxes)


def num_anchors(maps: tuple[FeatureMapSpec, ...] | list[FeatureMapSpec]) -> int:
    """Total anchor count without materialising the boxes."""
    return sum(spec.total_boxes for spec in maps)
