"""Structure-of-arrays batches of per-image detections and annotations.

:class:`DetectionBatch` holds one detector's output over a whole split as
four flat arrays — concatenated ``boxes``/``scores``/``labels`` plus an
``offsets`` array delimiting each image's segment — exactly the layout the
experiment harness serialises to disk.  Split-level operations (threshold
counting, serving filters, per-image minima) run as single vectorised passes
over the flat arrays instead of a Python loop over ``list[Detections]``,
while :meth:`view` exposes any image as a zero-copy :class:`Detections`.

Invariants mirror :class:`Detections`: boxes are validated ``(N, 4)`` xyxy,
scores lie in ``[0, 1]`` and every per-image segment is sorted by descending
score.  Construction validates all of them with array passes, so views can
bypass the per-image ``Detections`` constructor entirely.

:class:`DetectionBatchBuilder` is the streaming producer of the same layout:
an appendable accumulator with amortised (doubling) growth, so shard workers
and per-frame simulators fill flat arrays directly instead of staging a
``list[Detections]``.  :class:`GroundTruthBatch` is the annotation-side
mirror (flat ``boxes``/``labels`` + ``offsets``), cached on ``Dataset`` so
evaluation never re-flattens a split's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.detection.boxes import box_area, validate_boxes
from repro.detection.types import Detections, GroundTruth
from repro.errors import GeometryError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layering cycles
    from repro.runtime.shm import SharedBatchHandle

__all__ = ["DetectionBatch", "DetectionBatchBuilder", "GroundTruthBatch"]

#: The four flat columns of the on-disk / shared-memory batch layout.
BATCH_COLUMNS = ("boxes", "scores", "labels", "offsets")


def _segment_view(batch: "DetectionBatch", index: int) -> Detections:
    """Zero-copy :class:`Detections` over one segment (invariants hold by
    construction, so ``__post_init__`` validation/sorting is skipped)."""
    lo = int(batch.offsets[index])
    hi = int(batch.offsets[index + 1])
    view = object.__new__(Detections)
    object.__setattr__(view, "image_id", batch.image_ids[index])
    object.__setattr__(view, "boxes", batch.boxes[lo:hi])
    object.__setattr__(view, "scores", batch.scores[lo:hi])
    object.__setattr__(view, "labels", batch.labels[lo:hi])
    object.__setattr__(view, "detector", batch.detector)
    object.__setattr__(view, "extras", {})
    return view


def _gather_segments(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + counts[i]]`` segments."""
    total = int(counts.sum())
    if total == 0:
        return values[:0]
    bases = np.concatenate([[0], np.cumsum(counts)[:-1]])
    indices = np.repeat(starts - bases, counts) + np.arange(total)
    return values[indices]


@dataclass(frozen=True)
class DetectionBatch:
    """One detector's output over a whole split, stored structure-of-arrays.

    Attributes
    ----------
    image_ids:
        Per-image identifiers, aligned with the segments.
    boxes / scores / labels:
        Flat concatenation of every image's detections (score-descending
        within each segment).
    offsets:
        ``(num_images + 1,)`` segment boundaries: image ``i`` owns rows
        ``offsets[i]:offsets[i + 1]``.
    detector:
        Name of the producing detector (``"mixed"`` after a merge).
    """

    image_ids: tuple[str, ...]
    boxes: np.ndarray
    scores: np.ndarray
    labels: np.ndarray
    offsets: np.ndarray
    detector: str = "unknown"

    def __post_init__(self) -> None:
        boxes = validate_boxes(self.boxes)
        total = boxes.shape[0]
        scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        if scores.shape[0] != total:
            raise GeometryError(f"DetectionBatch: got {scores.shape[0]} scores for {total} boxes")
        if total and (not np.isfinite(scores).all()):
            raise GeometryError("DetectionBatch: scores contain non-finite values")
        if total and ((scores < 0.0).any() or (scores > 1.0).any()):
            raise GeometryError("DetectionBatch: scores must lie in [0, 1]")
        labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if labels.shape[0] != total:
            raise GeometryError(f"DetectionBatch: got {labels.shape[0]} labels for {total} boxes")
        offsets = np.asarray(self.offsets, dtype=np.int64).reshape(-1)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != total:
            raise GeometryError("DetectionBatch: offsets must run from 0 to len(boxes)")
        if (np.diff(offsets) < 0).any():
            raise GeometryError("DetectionBatch: offsets must be non-decreasing")
        image_ids = tuple(self.image_ids)
        if len(image_ids) != offsets.size - 1:
            raise GeometryError(f"DetectionBatch: got {len(image_ids)} image ids for " f"{offsets.size - 1} segments")
        if total > 1:
            starts = np.zeros(total, dtype=bool)
            interior = offsets[1:-1]
            starts[interior[interior < total]] = True
            if not np.all((scores[1:] <= scores[:-1]) | starts[1:]):
                raise GeometryError("DetectionBatch: segments must be sorted by descending score")
        object.__setattr__(self, "image_ids", image_ids)
        object.__setattr__(self, "boxes", boxes)
        object.__setattr__(self, "scores", scores)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "offsets", offsets)

    # ------------------------------------------------------------------ #
    # construction / conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def _trusted(
        cls,
        image_ids: tuple[str, ...],
        boxes: np.ndarray,
        scores: np.ndarray,
        labels: np.ndarray,
        offsets: np.ndarray,
        detector: str,
    ) -> "DetectionBatch":
        """Build without re-running ``__post_init__`` validation.

        Only for arrays derived from an already-validated batch (filtering,
        slicing, gathering preserve every invariant); external data must go
        through the public constructor.
        """
        batch = object.__new__(cls)
        object.__setattr__(batch, "image_ids", image_ids)
        object.__setattr__(batch, "boxes", boxes)
        object.__setattr__(batch, "scores", scores)
        object.__setattr__(batch, "labels", labels)
        object.__setattr__(batch, "offsets", offsets)
        object.__setattr__(batch, "detector", detector)
        return batch

    @classmethod
    def from_list(cls, detections: Iterable[Detections], *, detector: str | None = None) -> "DetectionBatch":
        """Concatenate per-image :class:`Detections` into one batch.

        A thin wrapper over :class:`DetectionBatchBuilder` — appends every
        image's arrays into one amortised-growth buffer and validates once.
        """
        builder = DetectionBatchBuilder(detector=detector)
        for item in detections:
            builder.append_detections(item)
        return builder.build()

    @classmethod
    def concat(
        cls,
        parts: Sequence["DetectionBatch"],
        *,
        detector: str | None = None,
    ) -> "DetectionBatch":
        """Concatenate batches over disjoint image ranges, in order.

        The inverse of slicing: ``concat([b[:k], b[k:]])`` reproduces ``b``
        exactly.  Inputs are already-validated batches, so the result skips
        re-validation.
        """
        parts = [part for part in parts]
        if detector is None:
            names = {part.detector for part in parts}
            detector = names.pop() if len(names) == 1 else "mixed"
        if not parts:
            return cls._trusted(
                (),
                np.zeros((0, 4)),
                np.zeros(0),
                np.zeros(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                detector,
            )
        if len(parts) == 1:
            only = parts[0]
            return cls._trusted(
                only.image_ids,
                only.boxes,
                only.scores,
                only.labels,
                only.offsets,
                detector,
            )
        sizes = np.fromiter((part.num_boxes for part in parts), dtype=np.int64, count=len(parts))
        bases = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64)]
            + [part.offsets[1:] + base for part, base in zip(parts, bases)]
        )
        return cls._trusted(
            tuple(image_id for part in parts for image_id in part.image_ids),
            np.concatenate([part.boxes for part in parts], axis=0),
            np.concatenate([part.scores for part in parts]),
            np.concatenate([part.labels for part in parts]),
            offsets,
            detector,
        )

    @classmethod
    def coerce(cls, detections: "DetectionBatch | list[Detections]") -> "DetectionBatch":
        """Pass a batch through unchanged; concatenate a list."""
        if isinstance(detections, cls):
            return detections
        return cls.from_list(detections)

    def to_list(self) -> list[Detections]:
        """Per-image zero-copy views, in split order."""
        return [_segment_view(self, index) for index in range(len(self))]

    # ------------------------------------------------------------------ #
    # sequence protocol (drop-in for list[Detections] consumers)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.image_ids)

    def __iter__(self):
        for index in range(len(self)):
            yield _segment_view(self, index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise GeometryError("DetectionBatch slicing requires step 1")
            lo = int(self.offsets[start]) if start < stop else 0
            hi = int(self.offsets[stop]) if start < stop else 0
            offsets = (
                self.offsets[start : stop + 1] - self.offsets[start]
                if start < stop
                else np.zeros(1, dtype=np.int64)
            )
            return DetectionBatch._trusted(
                self.image_ids[start:stop],
                self.boxes[lo:hi],
                self.scores[lo:hi],
                self.labels[lo:hi],
                offsets,
                self.detector,
            )
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"image index {index} out of range")
        return _segment_view(self, index)

    def view(self, index: int) -> Detections:
        """Zero-copy :class:`Detections` of one image."""
        return self[index]

    # ------------------------------------------------------------------ #
    # vectorised split-level ops
    # ------------------------------------------------------------------ #
    @property
    def num_boxes(self) -> int:
        """Total detections across the split."""
        return int(self.boxes.shape[0])

    def counts(self) -> np.ndarray:
        """Per-image detection counts, shape ``(num_images,)``."""
        return np.diff(self.offsets)

    def image_indices(self) -> np.ndarray:
        """For every flat row, the index of the image that owns it."""
        return np.repeat(np.arange(len(self), dtype=np.int64), self.counts())

    def count_above(self, threshold: float) -> np.ndarray:
        """Per-image number of boxes scoring ``>= threshold``."""
        passing = np.concatenate([[0], np.cumsum(self.scores >= threshold, dtype=np.int64)])
        return passing[self.offsets[1:]] - passing[self.offsets[:-1]]

    def min_area_above(self, threshold: float) -> np.ndarray:
        """Per-image smallest area ratio among boxes scoring ``>= threshold``.

        1.0 for images where no box passes, consistent with
        :meth:`Detections.min_area_above`.
        """
        out = np.full(len(self), 1.0)
        if self.num_boxes == 0:
            return out
        areas = np.where(self.scores >= threshold, box_area(self.boxes), np.inf)
        nonempty = self.offsets[:-1] < self.offsets[1:]
        starts = self.offsets[:-1][nonempty]
        if starts.size:
            # Empty segments contribute no elements, so each reduceat span
            # (start to next start, or to the end) is exactly one segment.
            mins = np.minimum.reduceat(areas, starts)
            out[nonempty] = np.where(np.isinf(mins), 1.0, mins)
        return out

    def top_scores(self) -> np.ndarray:
        """Per-image highest score (0.0 for empty images)."""
        out = np.zeros(len(self))
        nonempty = self.offsets[:-1] < self.offsets[1:]
        out[nonempty] = self.scores[self.offsets[:-1][nonempty]]
        return out

    def above(self, threshold: float) -> "DetectionBatch":
        """Batch restricted to boxes scoring ``>= threshold`` (the serving
        filter), preserving per-segment score order."""
        keep = self.scores >= threshold
        counts = self.count_above(threshold)
        offsets = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return DetectionBatch._trusted(
            self.image_ids,
            self.boxes[keep],
            self.scores[keep],
            self.labels[keep],
            offsets,
            self.detector,
        )

    def select(self, indices: np.ndarray) -> "DetectionBatch":
        """Batch over a subset/reordering of images."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        indices = indices.astype(np.int64, copy=False)
        counts = self.counts()[indices]
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        starts = self.offsets[:-1][indices]
        return DetectionBatch._trusted(
            tuple(self.image_ids[int(i)] for i in indices),
            _gather_segments(self.boxes, starts, counts),
            _gather_segments(self.scores, starts, counts),
            _gather_segments(self.labels, starts, counts),
            offsets,
            self.detector,
        )

    @classmethod
    def where(
        cls,
        mask: np.ndarray,
        if_true: "DetectionBatch",
        if_false: "DetectionBatch",
    ) -> "DetectionBatch":
        """Per-image merge: ``if_true``'s segment where ``mask``, else
        ``if_false``'s (the served-output composition of the system)."""
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        if not (mask.shape[0] == len(if_true) == len(if_false)):
            raise GeometryError("DetectionBatch.where: misaligned inputs")
        if if_true.image_ids != if_false.image_ids:
            raise GeometryError("DetectionBatch.where: batches cover different images")
        true_counts = if_true.counts()
        false_counts = if_false.counts()
        counts = np.where(mask, true_counts, false_counts)
        offsets = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        starts = np.where(mask, if_true.offsets[:-1], if_false.offsets[:-1] + if_true.num_boxes)
        pooled_boxes = np.concatenate([if_true.boxes, if_false.boxes], axis=0)
        pooled_scores = np.concatenate([if_true.scores, if_false.scores])
        pooled_labels = np.concatenate([if_true.labels, if_false.labels])
        detector = if_true.detector if if_true.detector == if_false.detector else "mixed"
        return cls._trusted(
            if_true.image_ids,
            _gather_segments(pooled_boxes, starts, counts),
            _gather_segments(pooled_scores, starts, counts),
            _gather_segments(pooled_labels, starts, counts),
            offsets,
            detector,
        )

    # ------------------------------------------------------------------ #
    # persistence (the harness's on-disk cache layout)
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialise the four flat arrays as a compressed ``.npz``."""
        np.savez_compressed(
            path,
            offsets=self.offsets,
            boxes=self.boxes,
            scores=self.scores,
            labels=self.labels,
        )

    @classmethod
    def load(cls, path, image_ids: tuple[str, ...], *, detector: str = "unknown") -> "DetectionBatch":
        """Rebuild a batch from :meth:`save` output.

        ``image_ids`` supply the segment identities (the cache stores only
        numerics).  Raises on malformed payloads; callers treat that as a
        cache miss.
        """
        payload = np.load(path)
        return cls(
            image_ids=tuple(image_ids),
            boxes=payload["boxes"],
            scores=payload["scores"],
            labels=payload["labels"],
            offsets=payload["offsets"],
            detector=detector,
        )

    def save_npy(self, directory) -> None:
        """Serialise as one uncompressed ``.npy`` per column in a directory.

        The mmap-friendly sibling of :meth:`save`: raw ``.npy`` files can be
        memory-mapped by :meth:`load_npy`, which a zip container (``.npz``,
        compressed or not) cannot.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name in BATCH_COLUMNS:
            np.save(directory / f"{name}.npy", getattr(self, name))

    @classmethod
    def load_npy(
        cls,
        directory,
        image_ids: tuple[str, ...],
        *,
        detector: str = "unknown",
        mmap: bool = True,
    ) -> "DetectionBatch":
        """Rebuild a batch from :meth:`save_npy` output, mmap-backed.

        With ``mmap`` (the default) the columns are ``np.load(...,
        mmap_mode="r")`` views: nothing is decompressed or copied into the
        heap, pages fault in on first touch and are shared across every
        process reading the same cache shard.  Validation is structural
        only (dtypes, shapes, offset endpoints/monotonicity) — the full
        data scans of the public constructor would fault in every page and
        defeat the lazy read; content integrity is the cache key's job.
        Raises on malformed payloads; callers treat that as a cache miss.
        """
        directory = Path(directory)
        mode = "r" if mmap else None
        arrays = {name: np.load(directory / f"{name}.npy", mmap_mode=mode) for name in BATCH_COLUMNS}
        if not mmap:
            return cls(image_ids=tuple(image_ids), detector=detector, **arrays)
        boxes, scores, labels, offsets = (arrays[name] for name in BATCH_COLUMNS)
        if boxes.ndim != 2 or boxes.shape[1] != 4:
            raise GeometryError(f"load_npy: boxes must be (N, 4), got {boxes.shape}")
        expected = {"boxes": np.float64, "scores": np.float64, "labels": np.int64, "offsets": np.int64}
        for name, dtype in expected.items():
            if arrays[name].dtype != dtype:
                raise GeometryError(f"load_npy: {name} has dtype {arrays[name].dtype}, expected {dtype}")
        total = boxes.shape[0]
        if scores.ndim != 1 or labels.ndim != 1 or scores.shape[0] != total or labels.shape[0] != total:
            raise GeometryError(f"load_npy: got {scores.shape}/{labels.shape} scores/labels for {total} boxes")
        if offsets.ndim != 1 or offsets.size == 0 or offsets[0] != 0 or offsets[-1] != total:
            raise GeometryError("load_npy: offsets must run from 0 to len(boxes)")
        if (np.diff(offsets) < 0).any():
            raise GeometryError("load_npy: offsets must be non-decreasing")
        image_ids = tuple(image_ids)
        if len(image_ids) != offsets.size - 1:
            raise GeometryError(f"load_npy: got {len(image_ids)} image ids for {offsets.size - 1} segments")
        return cls._trusted(image_ids, boxes, scores, labels, offsets, detector)

    # ------------------------------------------------------------------ #
    # shared-memory transport (zero-copy worker-to-parent hand-off)
    # ------------------------------------------------------------------ #
    def to_shared(self, *, prefix: str = "repro-batch", max_bytes: int | None = None) -> "SharedBatchHandle":
        """Park the four flat columns in a named shared-memory segment.

        Returns a tiny picklable handle; :meth:`from_shared` (in any process
        that can see ``/dev/shm``) adopts it back as zero-copy views.  See
        :mod:`repro.runtime.shm` for the ownership hand-off rules.  Raises
        :class:`~repro.errors.GeometryError` when ``max_bytes`` would be
        exceeded — pool workers use :func:`repro.runtime.shm.share_batch`
        directly to fall back to pickling instead.
        """
        from repro.runtime.shm import share_batch

        handle = share_batch(self, prefix=prefix, max_bytes=max_bytes)
        if handle is None:
            raise GeometryError(f"to_shared: batch exceeds max_bytes={max_bytes}")
        return handle

    @classmethod
    def from_shared(cls, handle: "SharedBatchHandle") -> "DetectionBatch":
        """Adopt a :meth:`to_shared` handle as a batch of zero-copy views.

        Consumes the handle: the segment name is unlinked immediately (the
        mapping lives as long as the returned batch's arrays do).
        """
        from repro.runtime.shm import adopt_batch

        return adopt_batch(handle)


class DetectionBatchBuilder:
    """Appendable accumulator producing :class:`DetectionBatch` layouts.

    Per-image results are copied straight into flat buffers that grow by
    doubling, so appending a whole split is amortised O(total boxes) with no
    ``list[Detections]`` staging hop.  Producers: shard workers of the
    parallel split runner, the stream simulator's served-frame collector,
    and :meth:`DetectionBatch.from_list`.

    ``build()`` snapshots the current contents (validated through the public
    :class:`DetectionBatch` constructor); the builder stays appendable
    afterwards — earlier snapshots are never mutated because growth
    reallocates and appends only touch rows past the snapshot.
    """

    def __init__(self, *, detector: str | None = None) -> None:
        self._detector = detector
        self._names: set[str] = set()
        self._image_ids: list[str] = []
        self._offsets: list[int] = [0]
        self._boxes = np.empty((0, 4), dtype=np.float64)
        self._scores = np.empty(0, dtype=np.float64)
        self._labels = np.empty(0, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return len(self._image_ids)

    @property
    def num_boxes(self) -> int:
        """Total boxes appended so far."""
        return self._count

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        capacity = int(self._scores.shape[0])
        if needed <= capacity:
            return
        capacity = max(needed, capacity * 2, 16)
        boxes = np.empty((capacity, 4), dtype=np.float64)
        boxes[: self._count] = self._boxes[: self._count]
        scores = np.empty(capacity, dtype=np.float64)
        scores[: self._count] = self._scores[: self._count]
        labels = np.empty(capacity, dtype=np.int64)
        labels[: self._count] = self._labels[: self._count]
        self._boxes, self._scores, self._labels = boxes, scores, labels

    def append(
        self,
        image_id: str,
        boxes: np.ndarray,
        scores: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        """Append one image's detections (arrays already score-descending)."""
        boxes = np.asarray(boxes, dtype=np.float64)
        if boxes.ndim != 2 or boxes.shape[1] != 4:
            raise GeometryError(f"DetectionBatchBuilder: boxes must be (N, 4), got {boxes.shape}")
        count = boxes.shape[0]
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if scores.shape[0] != count or labels.shape[0] != count:
            raise GeometryError(
                f"DetectionBatchBuilder: got {scores.shape[0]} scores / "
                f"{labels.shape[0]} labels for {count} boxes"
            )
        self._reserve(count)
        lo, hi = self._count, self._count + count
        self._boxes[lo:hi] = boxes
        self._scores[lo:hi] = scores
        self._labels[lo:hi] = labels
        self._count = hi
        self._image_ids.append(image_id)
        self._offsets.append(hi)

    def append_detections(self, detections: Detections) -> None:
        """Append one validated :class:`Detections` object."""
        if self._detector is None:
            self._names.add(detections.detector)
        self.append(
            detections.image_id,
            detections.boxes,
            detections.scores,
            detections.labels,
        )

    def build(self) -> "DetectionBatch":
        """Snapshot the appended images as a validated batch."""
        detector = self._detector
        if detector is None:
            detector = next(iter(self._names)) if len(self._names) == 1 else "mixed"
        return DetectionBatch(
            image_ids=tuple(self._image_ids),
            boxes=self._boxes[: self._count],
            scores=self._scores[: self._count],
            labels=self._labels[: self._count],
            offsets=np.asarray(self._offsets, dtype=np.int64),
            detector=detector,
        )


@dataclass(frozen=True)
class GroundTruthBatch:
    """A split's annotations, stored structure-of-arrays.

    The annotation-side mirror of :class:`DetectionBatch`: flat concatenated
    ``boxes``/``labels`` plus an ``offsets`` array delimiting each image's
    segment.  ``Dataset.truth_batch`` caches one per split, so evaluation
    (VOC AP pooling, counting, threshold fits) reads the flat arrays
    directly instead of re-flattening ``list[GroundTruth]`` per call.
    """

    image_ids: tuple[str, ...]
    boxes: np.ndarray
    labels: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        boxes = validate_boxes(self.boxes)
        total = boxes.shape[0]
        labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if labels.shape[0] != total:
            raise GeometryError(f"GroundTruthBatch: got {labels.shape[0]} labels for {total} boxes")
        offsets = np.asarray(self.offsets, dtype=np.int64).reshape(-1)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != total:
            raise GeometryError("GroundTruthBatch: offsets must run from 0 to len(boxes)")
        if (np.diff(offsets) < 0).any():
            raise GeometryError("GroundTruthBatch: offsets must be non-decreasing")
        image_ids = tuple(self.image_ids)
        if len(image_ids) != offsets.size - 1:
            raise GeometryError(f"GroundTruthBatch: got {len(image_ids)} image ids for " f"{offsets.size - 1} segments")
        object.__setattr__(self, "image_ids", image_ids)
        object.__setattr__(self, "boxes", boxes)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "offsets", offsets)

    # ------------------------------------------------------------------ #
    # construction / conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def _trusted(
        cls,
        image_ids: tuple[str, ...],
        boxes: np.ndarray,
        labels: np.ndarray,
        offsets: np.ndarray,
    ) -> "GroundTruthBatch":
        """Build without re-running ``__post_init__`` validation.

        Only for arrays derived from an already-validated batch (gathering
        preserves every invariant); external data must go through the public
        constructor.
        """
        batch = object.__new__(cls)
        object.__setattr__(batch, "image_ids", image_ids)
        object.__setattr__(batch, "boxes", boxes)
        object.__setattr__(batch, "labels", labels)
        object.__setattr__(batch, "offsets", offsets)
        return batch

    @classmethod
    def from_truths(cls, truths: Sequence[GroundTruth]) -> "GroundTruthBatch":
        """Flatten per-image :class:`GroundTruth` into one batch."""
        items = list(truths)
        counts = np.fromiter((len(truth) for truth in items), dtype=np.int64, count=len(items))
        offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if items and offsets[-1]:
            boxes = np.concatenate([truth.boxes for truth in items], axis=0)
            labels = np.concatenate([truth.labels for truth in items])
        else:
            boxes = np.zeros((0, 4))
            labels = np.zeros(0, dtype=np.int64)
        return cls(
            image_ids=tuple(truth.image_id for truth in items),
            boxes=boxes,
            labels=labels,
            offsets=offsets,
        )

    @classmethod
    def coerce(cls, truths: "GroundTruthBatch | Sequence[GroundTruth]") -> "GroundTruthBatch":
        """Pass a batch through unchanged; use a ``Dataset``'s cached batch
        when one is offered; flatten a plain annotation list."""
        if isinstance(truths, cls):
            return truths
        cached = getattr(truths, "truth_batch", None)
        if isinstance(cached, cls):
            return cached
        return cls.from_truths(truths)

    # ------------------------------------------------------------------ #
    # vectorised split-level ops
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.image_ids)

    @property
    def total_objects(self) -> int:
        """Total annotated objects across the split."""
        return int(self.offsets[-1])

    def counts(self) -> np.ndarray:
        """Per-image object counts, shape ``(num_images,)``."""
        return np.diff(self.offsets)

    def image_indices(self) -> np.ndarray:
        """For every flat row, the index of the image that owns it."""
        return np.repeat(np.arange(len(self), dtype=np.int64), self.counts())

    def select(self, indices: np.ndarray) -> "GroundTruthBatch":
        """Batch over a subset/reordering of images (repeats allowed).

        The annotation-side mirror of :meth:`DetectionBatch.select` — the
        rolling stream evaluator uses it to gather the ground truth of the
        frames completed inside one time window.
        """
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        indices = indices.astype(np.int64, copy=False)
        counts = self.counts()[indices]
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        starts = self.offsets[:-1][indices]
        ids = self.image_ids
        return GroundTruthBatch._trusted(
            image_ids=tuple(ids[index] for index in indices.tolist()),
            boxes=_gather_segments(self.boxes, starts, counts),
            labels=_gather_segments(self.labels, starts, counts),
            offsets=offsets,
        )

    def min_area_ratios(self) -> np.ndarray:
        """Per-image smallest object area ratio (1.0 for empty images),
        consistent with :attr:`GroundTruth.min_area_ratio`."""
        out = np.full(len(self), 1.0)
        if self.boxes.shape[0] == 0:
            return out
        areas = box_area(self.boxes)
        nonempty = self.offsets[:-1] < self.offsets[1:]
        starts = self.offsets[:-1][nonempty]
        if starts.size:
            # Empty segments contribute no rows, so each reduceat span is
            # exactly one segment (same argument as min_area_above).
            out[nonempty] = np.minimum.reduceat(areas, starts)
        return out
