"""Non-maximum suppression and score filtering.

The simulated detectors emit raw per-object boxes plus noise boxes; NMS is
applied per class exactly as a real SSD/YOLO post-processing stage would, so
duplicate suppression behaviour (and its failure modes) are part of the
pipeline rather than assumed away.
"""

from __future__ import annotations

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["nms_indices", "class_aware_nms", "filter_by_score"]


def nms_indices(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float) -> np.ndarray:
    """Greedy NMS over one class.

    Returns the indices of kept boxes, ordered by descending score.  Ties are
    broken by original index for determinism.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ConfigurationError(f"iou_threshold must be in [0, 1], got {iou_threshold}")
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    count = boxes.shape[0]
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(-scores, kind="stable")
    iou = iou_matrix(boxes, boxes)
    suppressed = np.zeros(count, dtype=bool)
    keep: list[int] = []
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        suppressed |= iou[idx] > iou_threshold
        suppressed[idx] = True
    return np.asarray(keep, dtype=np.int64)


def class_aware_nms(detections: Detections, iou_threshold: float = 0.45) -> Detections:
    """Apply greedy NMS independently within each predicted class.

    This mirrors SSD's deployment-time post-processing (per-class NMS with an
    IoU threshold of 0.45).
    """
    if len(detections) == 0:
        return detections
    keep_mask = np.zeros(len(detections), dtype=bool)
    for label in np.unique(detections.labels):
        class_idx = np.flatnonzero(detections.labels == label)
        kept = nms_indices(detections.boxes[class_idx], detections.scores[class_idx], iou_threshold)
        keep_mask[class_idx[kept]] = True
    return Detections(
        image_id=detections.image_id,
        boxes=detections.boxes[keep_mask],
        scores=detections.scores[keep_mask],
        labels=detections.labels[keep_mask],
        detector=detections.detector,
        extras=detections.extras,
    )


def filter_by_score(detections: Detections, threshold: float) -> Detections:
    """Keep detections scoring at least ``threshold``.

    Equivalent to :meth:`Detections.above`; provided as a free function for
    pipeline composition.
    """
    return detections.above(threshold)
