"""Axis-aligned bounding-box geometry.

Boxes are ``(N, 4)`` float arrays in ``xyxy`` order — ``(x_min, y_min, x_max,
y_max)`` — normalised to the unit square unless stated otherwise.  Normalised
coordinates make the *object area ratio* (the paper's second discriminator
feature) equal to the plain box area, which keeps the core code free of image
dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "as_boxes",
    "validate_boxes",
    "box_area",
    "box_center",
    "box_wh",
    "clip_boxes",
    "iou_matrix",
    "pairwise_iou",
    "cxcywh_to_xyxy",
    "xyxy_to_cxcywh",
    "scale_boxes",
    "boxes_contain",
]


def as_boxes(boxes: np.ndarray | list | tuple) -> np.ndarray:
    """Coerce ``boxes`` to a float64 ``(N, 4)`` array.

    An empty input becomes a ``(0, 4)`` array so downstream vectorised code
    never needs an emptiness special case.
    """
    array = np.asarray(boxes, dtype=np.float64)
    if array.size == 0:
        return array.reshape(0, 4)
    if array.ndim == 1 and array.shape[0] == 4:
        array = array.reshape(1, 4)
    if array.ndim != 2 or array.shape[1] != 4:
        raise GeometryError(f"expected (N, 4) boxes, got shape {array.shape}")
    return array


def validate_boxes(boxes: np.ndarray, *, allow_empty: bool = True) -> np.ndarray:
    """Validate box well-formedness and return the coerced array.

    Raises :class:`~repro.errors.GeometryError` when a box has non-finite
    coordinates or inverted corners (``x_max < x_min`` or ``y_max < y_min``).
    Zero-width or zero-height boxes are accepted: they legitimately occur
    after clipping.
    """
    array = as_boxes(boxes)
    if array.shape[0] == 0:
        if allow_empty:
            return array
        raise GeometryError("empty box array where at least one box required")
    if not np.isfinite(array).all():
        raise GeometryError("boxes contain non-finite coordinates")
    inverted = (array[:, 2] < array[:, 0]) | (array[:, 3] < array[:, 1])
    if inverted.any():
        index = int(np.flatnonzero(inverted)[0])
        raise GeometryError(f"box {index} has inverted corners: {array[index]}")
    return array


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Areas of ``(N, 4)`` xyxy boxes; degenerate boxes have area 0."""
    array = as_boxes(boxes)
    width = np.clip(array[:, 2] - array[:, 0], 0.0, None)
    height = np.clip(array[:, 3] - array[:, 1], 0.0, None)
    return width * height


def box_center(boxes: np.ndarray) -> np.ndarray:
    """Centers ``(N, 2)`` of xyxy boxes."""
    array = as_boxes(boxes)
    return np.stack(
        [(array[:, 0] + array[:, 2]) / 2.0, (array[:, 1] + array[:, 3]) / 2.0],
        axis=1,
    )


def box_wh(boxes: np.ndarray) -> np.ndarray:
    """Widths and heights ``(N, 2)`` of xyxy boxes."""
    array = as_boxes(boxes)
    return np.stack([array[:, 2] - array[:, 0], array[:, 3] - array[:, 1]], axis=1)


def clip_boxes(boxes: np.ndarray, *, lo: float = 0.0, hi: float = 1.0) -> np.ndarray:
    """Clip box coordinates into ``[lo, hi]`` (the unit square by default)."""
    return np.clip(as_boxes(boxes), lo, hi)


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-union matrix of shape ``(len(a), len(b))``.

    Degenerate pairs (both boxes with zero area) produce an IoU of 0.
    """
    a = as_boxes(boxes_a)
    b = as_boxes(boxes_b)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    lt = np.maximum(a[:, None, :2], b[None, :, :2])
    rb = np.minimum(a[:, None, 2:], b[None, :, 2:])
    wh = np.clip(rb - lt, 0.0, None)
    intersection = wh[:, :, 0] * wh[:, :, 1]
    union = box_area(a)[:, None] + box_area(b)[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0.0, intersection / union, 0.0)
    return iou


def pairwise_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Element-wise IoU of two equally sized box arrays (shape ``(N,)``)."""
    a = as_boxes(boxes_a)
    b = as_boxes(boxes_b)
    if a.shape != b.shape:
        raise GeometryError(f"pairwise_iou requires equal shapes, got {a.shape} vs {b.shape}")
    if a.shape[0] == 0:
        return np.zeros(0)
    lt = np.maximum(a[:, :2], b[:, :2])
    rb = np.minimum(a[:, 2:], b[:, 2:])
    wh = np.clip(rb - lt, 0.0, None)
    intersection = wh[:, 0] * wh[:, 1]
    union = box_area(a) + box_area(b) - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(union > 0.0, intersection / union, 0.0)


def cxcywh_to_xyxy(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(cx, cy, w, h)`` boxes to ``(x_min, y_min, x_max, y_max)``."""
    array = np.asarray(boxes, dtype=np.float64)
    if array.size == 0:
        return array.reshape(0, 4)
    if array.ndim == 1:
        array = array.reshape(1, 4)
    half = array[:, 2:] / 2.0
    return np.concatenate([array[:, :2] - half, array[:, :2] + half], axis=1)


def xyxy_to_cxcywh(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(x_min, y_min, x_max, y_max)`` boxes to ``(cx, cy, w, h)``."""
    array = as_boxes(boxes)
    wh = array[:, 2:] - array[:, :2]
    return np.concatenate([array[:, :2] + wh / 2.0, wh], axis=1)


def scale_boxes(boxes: np.ndarray, width: float, height: float) -> np.ndarray:
    """Scale unit-square boxes to pixel coordinates of a ``width x height`` image."""
    array = as_boxes(boxes).copy()
    array[:, [0, 2]] *= float(width)
    array[:, [1, 3]] *= float(height)
    return array


def boxes_contain(boxes: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Boolean matrix ``(N, P)``: does box ``n`` contain point ``p``?"""
    array = as_boxes(boxes)
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    inside_x = (pts[None, :, 0] >= array[:, None, 0]) & (pts[None, :, 0] <= array[:, None, 2])
    inside_y = (pts[None, :, 1] >= array[:, None, 1]) & (pts[None, :, 1] <= array[:, None, 3])
    return inside_x & inside_y
