"""Detection substrate: boxes, containers, anchors, NMS, matching."""

from repro.detection.anchors import (
    AnchorGrid,
    FeatureMapSpec,
    generate_anchors,
    num_anchors,
    ssd300_feature_maps,
    ssd300_small_feature_maps,
    yolo_feature_maps,
)
from repro.detection.batch import (
    DetectionBatch,
    DetectionBatchBuilder,
    GroundTruthBatch,
)
from repro.detection.boxes import (
    as_boxes,
    box_area,
    box_center,
    box_wh,
    boxes_contain,
    clip_boxes,
    cxcywh_to_xyxy,
    iou_matrix,
    pairwise_iou,
    scale_boxes,
    validate_boxes,
    xyxy_to_cxcywh,
)
from repro.detection.matching import (
    MatchResult,
    greedy_match_arrays,
    match_detections,
    true_positive_count,
)
from repro.detection.nms import class_aware_nms, filter_by_score, nms_indices
from repro.detection.types import Detections, GroundTruth

__all__ = [
    "AnchorGrid",
    "FeatureMapSpec",
    "generate_anchors",
    "num_anchors",
    "ssd300_feature_maps",
    "ssd300_small_feature_maps",
    "yolo_feature_maps",
    "as_boxes",
    "box_area",
    "box_center",
    "box_wh",
    "boxes_contain",
    "clip_boxes",
    "cxcywh_to_xyxy",
    "iou_matrix",
    "pairwise_iou",
    "scale_boxes",
    "validate_boxes",
    "xyxy_to_cxcywh",
    "DetectionBatch",
    "DetectionBatchBuilder",
    "GroundTruthBatch",
    "MatchResult",
    "greedy_match_arrays",
    "match_detections",
    "true_positive_count",
    "class_aware_nms",
    "filter_by_score",
    "nms_indices",
    "Detections",
    "GroundTruth",
]
