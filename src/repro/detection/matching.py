"""Greedy matching of detections to ground truth.

This is the standard PASCAL VOC protocol: detections are visited in order of
descending score; each claims the highest-IoU unclaimed ground-truth box of
the same class, provided the IoU passes the threshold (0.5 for VOC).  The
result drives both the AP computation and the paper's "number of detected
objects" metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError

__all__ = [
    "MatchResult",
    "greedy_match_arrays",
    "match_detections",
    "true_positive_count",
]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one image's detections against its annotation.

    Attributes
    ----------
    is_tp:
        ``(num_detections,)`` boolean, aligned with the detections'
        score-descending order.
    matched_gt:
        ``(num_detections,)`` index of the claimed ground-truth box, or -1.
    gt_detected:
        ``(num_gt,)`` boolean: was this annotated object found?
    """

    is_tp: np.ndarray
    matched_gt: np.ndarray
    gt_detected: np.ndarray

    @property
    def num_tp(self) -> int:
        """Number of true-positive detections."""
        return int(np.count_nonzero(self.is_tp))

    @property
    def num_fp(self) -> int:
        """Number of false-positive detections."""
        return int(self.is_tp.shape[0] - self.num_tp)

    @property
    def num_missed(self) -> int:
        """Number of annotated objects no detection claimed."""
        return int(np.count_nonzero(~self.gt_detected))


def greedy_match_arrays(
    det_boxes: np.ndarray,
    det_labels: np.ndarray,
    gt_boxes: np.ndarray,
    gt_labels: np.ndarray,
    *,
    iou_threshold: float = 0.5,
    class_aware: bool = True,
) -> MatchResult:
    """Array-level greedy VOC matching (no container construction).

    ``det_boxes``/``det_labels`` must already be in score-descending order —
    the invariant both :class:`Detections` and
    :class:`~repro.detection.batch.DetectionBatch` segments maintain.
    """
    if not 0.0 < iou_threshold <= 1.0:
        raise ConfigurationError(f"iou_threshold must be in (0, 1], got {iou_threshold}")
    num_det = int(det_boxes.shape[0])
    num_gt = int(gt_boxes.shape[0])
    is_tp = np.zeros(num_det, dtype=bool)
    matched_gt = np.full(num_det, -1, dtype=np.int64)
    gt_detected = np.zeros(num_gt, dtype=bool)
    if num_det == 0 or num_gt == 0:
        return MatchResult(is_tp=is_tp, matched_gt=matched_gt, gt_detected=gt_detected)

    iou = iou_matrix(det_boxes, gt_boxes)
    if class_aware:
        same_class = det_labels[:, None] == gt_labels[None, :]
        iou = np.where(same_class, iou, 0.0)

    claimed = np.zeros(num_gt, dtype=bool)
    for det_idx in range(num_det):
        candidates = iou[det_idx].copy()
        candidates[claimed] = 0.0
        best_gt = int(np.argmax(candidates))
        if candidates[best_gt] >= iou_threshold:
            claimed[best_gt] = True
            is_tp[det_idx] = True
            matched_gt[det_idx] = best_gt
    return MatchResult(is_tp=is_tp, matched_gt=matched_gt, gt_detected=claimed)


def match_detections(
    detections: Detections,
    truth: GroundTruth,
    *,
    iou_threshold: float = 0.5,
    class_aware: bool = True,
) -> MatchResult:
    """Greedily match ``detections`` to ``truth``.

    Parameters
    ----------
    iou_threshold:
        Minimum IoU for a detection to claim a ground-truth box (VOC: 0.5).
    class_aware:
        When true (the VOC protocol), a detection may only claim a
        ground-truth box of its own class.
    """
    # Detections are already score-descending (Detections sorts on init).
    return greedy_match_arrays(
        detections.boxes,
        detections.labels,
        truth.boxes,
        truth.labels,
        iou_threshold=iou_threshold,
        class_aware=class_aware,
    )


def true_positive_count(
    detections: Detections,
    truth: GroundTruth,
    *,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
) -> int:
    """The paper's "number of detected objects" for one image.

    Counts detections that (a) pass the serving score threshold (0.5
    throughout the paper) and (b) correctly claim a ground-truth object of
    their class at the VOC IoU threshold.
    """
    served = detections.above(score_threshold)
    result = match_detections(served, truth, iou_threshold=iou_threshold)
    return result.num_tp
