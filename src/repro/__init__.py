"""repro — reproduction of "Edge-Cloud Collaborated Object Detection via
Difficult-Case Discriminator" (Cao et al., ICDCS 2023).

The package implements the paper's small-big model framework end to end:

* :mod:`repro.core` — the contribution: the difficult-case discriminator and
  the small-big system orchestrator;
* :mod:`repro.detection`, :mod:`repro.metrics` — detection geometry and the
  VOC evaluation protocol;
* :mod:`repro.zoo` — analytic architecture specs (Table II);
* :mod:`repro.data` — synthetic VOC / COCO-18 / Helmet scene generators;
* :mod:`repro.simulate` — calibrated statistical detector simulators (the
  substitute for GPU-trained SSD / YOLOv4 weights);
* :mod:`repro.runtime` — Jetson-Nano/WLAN/server latency model (Table XI);
* :mod:`repro.baselines` — random / blurred / top-1-confidence uploading;
* :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro import quickstart_system
    system, report = quickstart_system("voc07+12")
    detections, uploaded = system.process_image(record)
"""

from __future__ import annotations

from repro._rng import DEFAULT_SEED
from repro.core import (
    DifficultCaseDiscriminator,
    SmallBigSystem,
    SystemRun,
    is_difficult_case,
    label_cases,
)
from repro.data import Dataset, list_settings, load_dataset
from repro.detection import (
    DetectionBatch,
    DetectionBatchBuilder,
    Detections,
    GroundTruth,
    GroundTruthBatch,
)
from repro.runtime.parallel import run_split
from repro.runtime.pool import WorkerPool
from repro.simulate import DetectorProfile, SimulatedDetector, make_detector

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "DifficultCaseDiscriminator",
    "SmallBigSystem",
    "SystemRun",
    "is_difficult_case",
    "label_cases",
    "Dataset",
    "list_settings",
    "load_dataset",
    "DetectionBatch",
    "DetectionBatchBuilder",
    "Detections",
    "GroundTruth",
    "GroundTruthBatch",
    "run_split",
    "WorkerPool",
    "DetectorProfile",
    "SimulatedDetector",
    "make_detector",
    "quickstart_system",
    "__version__",
]


def quickstart_system(
    setting: str = "voc07+12",
    *,
    small: str = "small1",
    big: str = "ssd",
    seed: int = DEFAULT_SEED,
    train_images: int = 2000,
):
    """Build a ready-to-serve small-big system in one call.

    Calibrates both detectors, fits the difficult-case discriminator on the
    setting's training split and returns ``(system, fit_report)``.
    """
    small_model = make_detector(small, setting, seed=seed)
    big_model = make_detector(big, setting, seed=seed)
    from repro.data.datasets import DATASET_SETTINGS

    entry = DATASET_SETTINGS[setting]
    fraction = min(1.0, train_images / entry.train_size)
    train = load_dataset(setting, "train", seed=seed, fraction=fraction)
    discriminator, report = DifficultCaseDiscriminator.fit(
        small_model.detect_split(train),
        big_model.detect_split(train),
        train.truths,
    )
    system = SmallBigSystem(small_model=small_model, big_model=big_model, discriminator=discriminator)
    return system, report
