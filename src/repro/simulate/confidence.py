"""Confidence-score models for the simulated detectors.

Three score populations leave a detector, mirroring the structure visible in
the paper's Fig. 6 dump of raw SSD output:

* **served detections** — scores in ``[0.5, 1)``, concentrated around the
  object's difficulty, so that per-class rankings produce realistic PR
  curves;
* **sub-threshold misses** — objects the detector noticed but could not
  commit to (the dog at 0.2507): scores in ``(0.1, 0.45)``, far above the
  noise floor.  These carry the signal the difficult-case discriminator's
  estimated-count feature exploits;
* **noise boxes** — an exponential tail hugging zero, occasionally crossing
  into the sub-threshold band, very rarely past 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.simulate.profile import DetectorProfile

__all__ = ["served_scores", "miss_scores", "noise_scores"]


def served_scores(
    profile: DetectorProfile,
    difficulty: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Scores of served (>= 0.5) detections.

    ``difficulty`` is the per-object detection probability; easier objects
    (higher probability) receive higher scores on average, which is what
    makes the simulated PR curves decrease plausibly.
    """
    q = np.clip(np.asarray(difficulty, dtype=np.float64).reshape(-1), 0.05, 0.995)
    kappa = profile.score_sharpness
    alpha = 1.0 + kappa * q
    beta = 1.0 + kappa * (1.0 - q)
    return 0.5 + 0.4999 * rng.beta(alpha, beta)


def miss_scores(profile: DetectorProfile, count: int, rng: np.random.Generator) -> np.ndarray:
    """Scores of sub-threshold boxes for missed-but-visible objects."""
    return rng.uniform(profile.miss_score_lo, profile.miss_score_hi, size=count)


def noise_scores(profile: DetectorProfile, count: int, rng: np.random.Generator) -> np.ndarray:
    """Scores of spurious noise boxes: exponential, clipped to [0.01, 0.98]."""
    raw = 0.01 + rng.exponential(profile.fp_score_scale, size=count)
    return np.clip(raw, 0.01, 0.98)
