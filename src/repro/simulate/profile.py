"""Detector capability profiles.

A :class:`DetectorProfile` is the statistical stand-in for a trained
detector's weights: it determines, per object, the probability that the
detector finds the object, how confident it is, how tight its boxes are and
how much noise it emits.  The functional form encodes the paper's own
analysis (Sec. IV.B / Fig. 4):

* detection probability *falls with the object's area ratio* — small models,
  having lost the 38x38 feature map (66 % of the default boxes), degrade
  much earlier than the big model;
* detection probability *falls with scene crowding* — fewer default boxes
  also means crowded images lose objects;
* degraded imagery (blur, low light) lowers detection probability through
  the profile's quality sensitivity.

Everything downstream — mAP, detected-object counts, difficult-case labels —
is *measured* from the boxes these profiles emit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DetectorProfile", "detection_probability"]

#: Detection probability is capped here: no detector is perfect.
_MAX_DETECTION_PROBABILITY = 0.995


@dataclass(frozen=True)
class DetectorProfile:
    """Capability parameters of one simulated detector.

    Attributes
    ----------
    name:
        Identifier; detections are deterministic in ``(seed, name, image)``.
    base_recall:
        Capability scale.  Values above 1 saturate large easy objects at the
        cap — the signature of a strong model.  This is the single knob the
        calibration module solves for.
    area_half:
        Object area ratio at which detection probability halves.  Small
        models have large values (they miss small objects early); big models
        have tiny values.
    area_gamma:
        Steepness of the area response (in log-area).
    crowd_half:
        Scene object count at which the crowding factor halves.
    crowd_gamma:
        Steepness of the crowding response.
    quality_sensitivity:
        Exponent translating image quality (0, 1] into a recall penalty.
    loc_sigma:
        Localisation noise: relative jitter of box centre and size.
    miss_visibility:
        Probability that a *missed* object still emits a sub-threshold box —
        the Fig. 6 phenomenon (the missed dog still scored 0.2507).  This is
        the signal the discriminator's noise-filter threshold taps.
    miss_score_lo / miss_score_hi:
        Score range of those sub-threshold boxes.
    score_sharpness:
        Concentration of served-detection scores around the object's
        difficulty (higher = better-ranked PR curves).
    fp_rate:
        Poisson mean of spurious noise boxes per image.
    fp_score_scale:
        Exponential scale of noise-box scores (most score far below 0.5).
    class_confusion:
        Probability that a detected object is reported with a wrong label.
    """

    name: str
    base_recall: float = 1.0
    area_half: float = 0.02
    area_gamma: float = 1.2
    crowd_half: float = 12.0
    crowd_gamma: float = 1.6
    quality_sensitivity: float = 1.0
    loc_sigma: float = 0.05
    miss_visibility: float = 0.75
    miss_score_lo: float = 0.10
    miss_score_hi: float = 0.45
    score_sharpness: float = 5.0
    fp_rate: float = 0.7
    fp_score_scale: float = 0.06
    class_confusion: float = 0.03

    def __post_init__(self) -> None:
        if self.base_recall <= 0.0:
            raise ConfigurationError("base_recall must be > 0")
        if self.area_half <= 0.0 or self.area_gamma <= 0.0:
            raise ConfigurationError("area response parameters must be > 0")
        if self.crowd_half <= 0.0 or self.crowd_gamma <= 0.0:
            raise ConfigurationError("crowd response parameters must be > 0")
        if not 0.0 <= self.miss_visibility <= 1.0:
            raise ConfigurationError("miss_visibility must be in [0, 1]")
        if not 0.0 < self.miss_score_lo < self.miss_score_hi < 0.5:
            raise ConfigurationError("miss score range must satisfy 0 < lo < hi < 0.5 (sub-threshold)")
        if self.fp_rate < 0.0 or self.fp_score_scale <= 0.0:
            raise ConfigurationError("false-positive parameters out of range")
        if not 0.0 <= self.class_confusion < 1.0:
            raise ConfigurationError("class_confusion must be in [0, 1)")

    def with_base_recall(self, base_recall: float) -> "DetectorProfile":
        """A copy with a different capability scale (used by calibration)."""
        return replace(self, base_recall=base_recall)


def detection_probability(
    profile: DetectorProfile,
    areas: np.ndarray,
    num_objects: int,
    quality: float = 1.0,
) -> np.ndarray:
    """Per-object detection probability under ``profile``.

    ``p = cap(base_recall * area_term * crowd_term * quality_term)`` with

    * ``area_term  = 1 / (1 + (area_half / area) ** area_gamma)``
    * ``crowd_term = 1 / (1 + (count / crowd_half) ** crowd_gamma)``
    * ``quality_term = quality ** quality_sensitivity``
    """
    areas = np.asarray(areas, dtype=np.float64).reshape(-1)
    if (areas <= 0.0).any():
        raise ConfigurationError("object areas must be positive")
    if num_objects < areas.shape[0]:
        raise ConfigurationError(f"num_objects={num_objects} smaller than the {areas.shape[0]} areas given")
    if not 0.0 < quality <= 1.0:
        raise ConfigurationError(f"quality must be in (0, 1], got {quality}")
    area_term = 1.0 / (1.0 + (profile.area_half / areas) ** profile.area_gamma)
    crowd_term = 1.0 / (1.0 + (num_objects / profile.crowd_half) ** profile.crowd_gamma)
    quality_term = quality**profile.quality_sensitivity
    raw = profile.base_recall * area_term * crowd_term * quality_term
    return np.clip(raw, 0.0, _MAX_DETECTION_PROBABILITY)
