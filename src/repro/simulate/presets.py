"""Calibrated detector presets for every (model, setting) pair in the paper.

Two ingredients combine here:

* **shape presets** — per-architecture response curves (how sharply recall
  falls with object size and crowding).  Small models degrade early; the big
  models barely notice.  These encode the qualitative claims of Sec. IV.B.
* **recall targets** — the published detected-object counts (Tables IV, VI,
  VIII, X, XI) divided by each test split's annotated-object total.  The
  calibration module solves each profile's ``base_recall`` so the simulator
  reproduces the published operating point.

The paper's mAP figures are *not* calibrated against — they are measured
from the simulated detections and compared to the paper in EXPERIMENTS.md.

OCR note: the supplied paper text garbles which of Tables V/VII (and VI/VIII)
belongs to MobileNetV1 vs V2.  We adopt the assignment consistent with the
prose ("on the mAP of the small model, MobileNet v2 is down 5.81 %-11.53 %
compared to v1"): small model 2 (V1) takes the stronger column set, small
model 3 (V2) the weaker.  Small model 3's COCO count (6 388 in the OCR text)
is inconsistent with that prose; we use a reconciled target instead.
"""

from __future__ import annotations

from dataclasses import replace

from repro._rng import DEFAULT_SEED
from repro.data.datasets import DATASET_SETTINGS, load_dataset
from repro.errors import RegistryError
from repro.simulate.calibrate import calibrate_profile
from repro.simulate.detector import SimulatedDetector
from repro.simulate.profile import DetectorProfile

__all__ = [
    "SHAPE_PRESETS",
    "SETTING_OVERRIDES",
    "RECALL_TARGETS",
    "MAP_REFERENCES",
    "PAPER_COUNTS",
    "PAPER_GT_TOTALS",
    "make_detector",
    "available_pairs",
]

SHAPE_PRESETS: dict[str, DetectorProfile] = {
    "ssd": DetectorProfile(
        name="ssd",
        area_half=0.008,
        area_gamma=1.1,
        crowd_half=20.0,
        crowd_gamma=1.5,
        quality_sensitivity=1.0,
        loc_sigma=0.045,
        miss_visibility=0.60,
        score_sharpness=6.0,
        fp_rate=0.7,
        fp_score_scale=0.055,
        class_confusion=0.02,
    ),
    "small1": DetectorProfile(
        name="small1",
        area_half=0.060,
        area_gamma=1.3,
        crowd_half=5.5,
        crowd_gamma=1.8,
        quality_sensitivity=1.8,
        loc_sigma=0.075,
        miss_visibility=0.50,
        score_sharpness=4.0,
        fp_rate=1.1,
        fp_score_scale=0.05,
        class_confusion=0.04,
    ),
    "small2": DetectorProfile(
        name="small2",
        area_half=0.050,
        area_gamma=1.3,
        crowd_half=6.5,
        crowd_gamma=1.8,
        quality_sensitivity=1.7,
        loc_sigma=0.07,
        miss_visibility=0.50,
        score_sharpness=4.0,
        fp_rate=1.05,
        fp_score_scale=0.05,
        class_confusion=0.035,
    ),
    "small3": DetectorProfile(
        name="small3",
        area_half=0.075,
        area_gamma=1.3,
        crowd_half=5.0,
        crowd_gamma=1.8,
        quality_sensitivity=1.9,
        loc_sigma=0.08,
        miss_visibility=0.50,
        score_sharpness=3.5,
        fp_rate=1.15,
        fp_score_scale=0.05,
        class_confusion=0.045,
    ),
    "yolov4": DetectorProfile(
        name="yolov4",
        area_half=0.003,
        area_gamma=1.1,
        crowd_half=40.0,
        crowd_gamma=1.3,
        quality_sensitivity=0.9,
        loc_sigma=0.035,
        miss_visibility=0.50,
        score_sharpness=7.0,
        fp_rate=0.5,
        fp_score_scale=0.05,
        class_confusion=0.015,
    ),
    "small-yolo": DetectorProfile(
        name="small-yolo",
        area_half=0.015,
        area_gamma=1.2,
        crowd_half=14.0,
        crowd_gamma=1.5,
        quality_sensitivity=1.4,
        loc_sigma=0.05,
        miss_visibility=0.55,
        score_sharpness=5.0,
        fp_rate=0.7,
        fp_score_scale=0.05,
        class_confusion=0.025,
    ),
}

#: Per-(model, setting) overrides applied on top of the shape presets.
#: Helmet footage is blurry/occluded site imagery: objects the small model
#: cannot commit to still produce low-confidence boxes far more often than on
#: curated VOC/COCO photos, and spurious responses are more frequent.
SETTING_OVERRIDES: dict[tuple[str, str], dict[str, float]] = {
    ("small1", "helmet"): {"miss_visibility": 0.75, "fp_rate": 1.6},
    ("ssd", "helmet"): {"miss_visibility": 0.65},
    # COCO-18 scenes are dominated by tiny objects; small models emit weak
    # responses on most of them rather than nothing at all (the Fig. 6
    # signal is stronger when the detector is far out of its depth), which
    # is what keeps the paper's COCO upload ratio at ~52 %.
    ("small1", "coco18"): {"miss_visibility": 0.50, "fp_rate": 1.0},
    ("small2", "coco18"): {"miss_visibility": 0.90, "fp_rate": 1.6},
    ("small3", "coco18"): {"miss_visibility": 0.70, "fp_rate": 1.2},
}

#: Annotated-object totals of the paper's test splits used to convert the
#: published detected-object counts into recall targets.  VOC2007 test is the
#: devkit's 12 032; VOC2012's 4 952-image sample and our COCO-18 / Helmet
#: splits use the generator's design densities.
PAPER_GT_TOTALS: dict[str, int] = {
    "voc07": 12032,
    "voc07+12": 12032,
    "voc07++12": 11780,
    "coco18": 16200,
    "helmet": 1228,
}

#: Published detected-object counts per (model, setting).
PAPER_COUNTS: dict[tuple[str, str], int] = {
    ("ssd", "voc07"): 9055,
    ("ssd", "voc07+12"): 9628,
    ("ssd", "voc07++12"): 8434,
    ("ssd", "coco18"): 7996,
    ("ssd", "helmet"): 1135,
    ("small1", "voc07"): 4759,
    ("small1", "voc07+12"): 5511,
    ("small1", "voc07++12"): 5202,
    ("small1", "coco18"): 4353,
    ("small1", "helmet"): 940,
    ("small2", "voc07"): 6264,
    ("small2", "voc07+12"): 6486,
    ("small2", "voc07++12"): 6393,
    ("small2", "coco18"): 6257,
    ("small3", "voc07"): 4889,
    ("small3", "voc07+12"): 5242,
    ("small3", "voc07++12"): 4645,
    ("small3", "coco18"): 4700,  # reconciled; see module docstring
    ("yolov4", "voc07"): 11098,
    ("yolov4", "voc07+12"): 11574,
    ("small-yolo", "voc07"): 10509,
    ("small-yolo", "voc07+12"): 10478,
}

#: Recall targets derived from the counts above.
RECALL_TARGETS: dict[tuple[str, str], float] = {
    key: count / PAPER_GT_TOTALS[key[1]] for key, count in PAPER_COUNTS.items()
}

#: The paper's mAP figures (percent) — reference only, never calibrated on.
MAP_REFERENCES: dict[tuple[str, str], float] = {
    ("ssd", "voc07"): 70.76,
    ("ssd", "voc07+12"): 77.41,
    ("ssd", "voc07++12"): 72.31,
    ("ssd", "coco18"): 42.18,
    ("ssd", "helmet"): 92.40,
    ("small1", "voc07"): 41.28,
    ("small1", "voc07+12"): 51.34,
    ("small1", "voc07++12"): 49.02,
    ("small1", "coco18"): 27.78,
    ("small1", "helmet"): 75.04,
    ("small2", "voc07"): 49.62,
    ("small2", "voc07+12"): 56.24,
    ("small2", "voc07++12"): 56.01,
    ("small2", "coco18"): 32.66,
    ("small3", "voc07"): 42.00,
    ("small3", "voc07+12"): 48.47,
    ("small3", "voc07++12"): 44.84,
    ("small3", "coco18"): 26.85,
    ("yolov4", "voc07"): 83.48,
    ("yolov4", "voc07+12"): 90.02,
    ("small-yolo", "voc07"): 73.64,
    ("small-yolo", "voc07+12"): 79.72,
}

#: Cache of calibrated detectors keyed by (model, setting, seed).
_DETECTOR_CACHE: dict[tuple[str, str, int], SimulatedDetector] = {}


def available_pairs() -> list[tuple[str, str]]:
    """Every (model, setting) pair with a published operating point."""
    return sorted(RECALL_TARGETS)


def make_detector(
    model: str,
    setting: str,
    *,
    seed: int = DEFAULT_SEED,
    calibration_images: int = 4000,
) -> SimulatedDetector:
    """Build (and cache) a calibrated detector for a (model, setting) pair.

    Calibration runs against a deterministic sample of the setting's *train*
    split, never the test split.
    """
    key = (model, setting, seed)
    if key in _DETECTOR_CACHE:
        return _DETECTOR_CACHE[key]
    if model not in SHAPE_PRESETS:
        raise RegistryError(f"unknown model {model!r}; available: {', '.join(sorted(SHAPE_PRESETS))}")
    if (model, setting) not in RECALL_TARGETS:
        raise RegistryError(
            f"no published operating point for ({model!r}, {setting!r}); "
            f"available pairs: {available_pairs()}"
        )
    entry = DATASET_SETTINGS[setting]
    fraction = min(1.0, calibration_images / entry.train_size)
    train_sample = load_dataset(setting, "train", seed=seed, fraction=fraction)
    shape = SHAPE_PRESETS[model]
    overrides = SETTING_OVERRIDES.get((model, setting), {})
    if overrides:
        shape = replace(shape, **overrides)
    profile = DetectorProfile(
        name=f"{model}@{setting}",
        base_recall=shape.base_recall,
        area_half=shape.area_half,
        area_gamma=shape.area_gamma,
        crowd_half=shape.crowd_half,
        crowd_gamma=shape.crowd_gamma,
        quality_sensitivity=shape.quality_sensitivity,
        loc_sigma=shape.loc_sigma,
        miss_visibility=shape.miss_visibility,
        miss_score_lo=shape.miss_score_lo,
        miss_score_hi=shape.miss_score_hi,
        score_sharpness=shape.score_sharpness,
        fp_rate=shape.fp_rate,
        fp_score_scale=shape.fp_score_scale,
        class_confusion=shape.class_confusion,
    )
    calibrated = calibrate_profile(
        profile,
        train_sample,
        RECALL_TARGETS[(model, setting)],
        num_classes=entry.num_classes,
        seed=seed,
        sample_size=calibration_images,
    )
    detector = SimulatedDetector(profile=calibrated, num_classes=entry.num_classes, seed=seed)
    _DETECTOR_CACHE[key] = detector
    return detector
