"""Detector-behaviour simulation substrate."""

from repro.simulate.calibrate import calibrate_profile, expected_recall, solve_base_recall
from repro.simulate.confidence import miss_scores, noise_scores, served_scores
from repro.simulate.detector import SimulatedDetector
from repro.simulate.presets import (
    MAP_REFERENCES,
    PAPER_COUNTS,
    PAPER_GT_TOTALS,
    RECALL_TARGETS,
    SHAPE_PRESETS,
    available_pairs,
    make_detector,
)
from repro.simulate.profile import DetectorProfile, detection_probability

__all__ = [
    "calibrate_profile",
    "expected_recall",
    "solve_base_recall",
    "miss_scores",
    "noise_scores",
    "served_scores",
    "SimulatedDetector",
    "MAP_REFERENCES",
    "PAPER_COUNTS",
    "PAPER_GT_TOTALS",
    "RECALL_TARGETS",
    "SHAPE_PRESETS",
    "available_pairs",
    "make_detector",
    "DetectorProfile",
    "detection_probability",
]
