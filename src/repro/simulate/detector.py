"""The simulated detector: profile + image -> class-scored boxes.

Detections are a *pure function* of ``(seed, profile name, image id)``:
running the small model during discrimination and again during evaluation
yields identical boxes, exactly like a deterministic neural network.  All
downstream numbers (mAP, counts, difficult-case labels, baselines) are
measured from these boxes with the real VOC evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.datasets import Dataset, ImageRecord
from repro.detection.boxes import clip_boxes
from repro.detection.nms import class_aware_nms
from repro.detection.types import Detections
from repro.simulate.confidence import miss_scores, noise_scores, served_scores
from repro.simulate.profile import DetectorProfile, detection_probability

__all__ = ["SimulatedDetector"]


def _jitter_boxes(boxes: np.ndarray, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Perturb box centres and sizes by relative Gaussian noise."""
    if boxes.shape[0] == 0 or sigma <= 0.0:
        return boxes.copy()
    widths = boxes[:, 2] - boxes[:, 0]
    heights = boxes[:, 3] - boxes[:, 1]
    cx = (boxes[:, 0] + boxes[:, 2]) / 2.0 + rng.normal(0.0, sigma, boxes.shape[0]) * widths
    cy = (boxes[:, 1] + boxes[:, 3]) / 2.0 + rng.normal(0.0, sigma, boxes.shape[0]) * heights
    scale_w = np.exp(rng.normal(0.0, sigma, boxes.shape[0]))
    scale_h = np.exp(rng.normal(0.0, sigma, boxes.shape[0]))
    half_w = widths * scale_w / 2.0
    half_h = heights * scale_h / 2.0
    jittered = np.stack([cx - half_w, cy - half_h, cx + half_w, cy + half_h], axis=1)
    return clip_boxes(jittered)


def _random_fp_boxes(count: int, rng: np.random.Generator) -> np.ndarray:
    """Small random boxes for noise detections."""
    if count == 0:
        return np.zeros((0, 4))
    areas = np.exp(rng.normal(np.log(0.01), 1.0, size=count))
    areas = np.clip(areas, 5e-4, 0.2)
    aspect = np.exp(rng.normal(0.0, 0.4, size=count))
    widths = np.minimum(np.sqrt(areas * aspect), 0.95)
    heights = np.minimum(np.sqrt(areas / aspect), 0.95)
    cx = rng.uniform(widths / 2.0, 1.0 - widths / 2.0)
    cy = rng.uniform(heights / 2.0, 1.0 - heights / 2.0)
    return np.stack(
        [cx - widths / 2.0, cy - heights / 2.0, cx + widths / 2.0, cy + heights / 2.0],
        axis=1,
    )


@dataclass(frozen=True)
class SimulatedDetector:
    """A deterministic simulated detector.

    Parameters
    ----------
    profile:
        The capability profile (usually produced by
        :mod:`repro.simulate.presets` with a calibrated ``base_recall``).
    num_classes:
        Class vocabulary size of the dataset the detector is "trained" on.
    seed:
        Experiment seed; detections depend only on
        ``(seed, profile.name, image_id)``.
    """

    profile: DetectorProfile
    num_classes: int
    seed: int = DEFAULT_SEED

    @property
    def name(self) -> str:
        """Detector name (the profile's name)."""
        return self.profile.name

    def detect(self, record: ImageRecord) -> Detections:
        """Run the detector on one image record."""
        profile = self.profile
        truth = record.truth
        rng = generator_for(self.seed, "detect", profile.name, truth.image_id)

        areas = truth.area_ratios
        count = len(truth)
        boxes_parts: list[np.ndarray] = []
        scores_parts: list[np.ndarray] = []
        labels_parts: list[np.ndarray] = []

        if count:
            p = detection_probability(profile, areas, count, record.quality)
            detected = rng.uniform(size=count) < p

            det_idx = np.flatnonzero(detected)
            if det_idx.size:
                det_boxes = _jitter_boxes(truth.boxes[det_idx], profile.loc_sigma, rng)
                det_scores = served_scores(profile, p[det_idx], rng)
                det_labels = truth.labels[det_idx].copy()
                confused = rng.uniform(size=det_idx.size) < profile.class_confusion
                if confused.any() and self.num_classes > 1:
                    shift = rng.integers(1, self.num_classes, size=int(confused.sum()))
                    det_labels[confused] = (det_labels[confused] + shift) % self.num_classes
                boxes_parts.append(det_boxes)
                scores_parts.append(det_scores)
                labels_parts.append(det_labels)

            miss_idx = np.flatnonzero(~detected)
            if miss_idx.size:
                visible = rng.uniform(size=miss_idx.size) < profile.miss_visibility
                vis_idx = miss_idx[visible]
                if vis_idx.size:
                    vis_boxes = _jitter_boxes(truth.boxes[vis_idx], profile.loc_sigma * 1.5, rng)
                    vis_scores = miss_scores(profile, vis_idx.size, rng)
                    boxes_parts.append(vis_boxes)
                    scores_parts.append(vis_scores)
                    labels_parts.append(truth.labels[vis_idx].copy())

        num_fp = int(rng.poisson(profile.fp_rate))
        if num_fp:
            boxes_parts.append(_random_fp_boxes(num_fp, rng))
            scores_parts.append(noise_scores(profile, num_fp, rng))
            labels_parts.append(rng.integers(0, self.num_classes, size=num_fp).astype(np.int64))

        if not boxes_parts:
            return Detections.empty(truth.image_id, detector=profile.name)
        raw = Detections(
            image_id=truth.image_id,
            boxes=np.concatenate(boxes_parts, axis=0),
            scores=np.concatenate(scores_parts),
            labels=np.concatenate(labels_parts),
            detector=profile.name,
        )
        return class_aware_nms(raw)

    def detect_split(self, dataset: Dataset) -> list[Detections]:
        """Run the detector over every record of a split, in order."""
        return [self.detect(record) for record in dataset.records]
