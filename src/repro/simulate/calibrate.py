"""Profile calibration: solve the capability scale for a recall target.

The paper's count tables (IV, VI, VIII, X, XI) pin down each model's recall
at serving threshold 0.5 on each dataset (detected objects / annotated
objects).  Calibration turns those published recalls into ``base_recall``
values:

1. an *analytic* bisection matches the expected per-object detection
   probability to the target, then
2. two *measured* secant corrections run the full simulator on a sample and
   absorb the residual losses (NMS suppression, localisation jitter pushing
   IoU below 0.5, class confusion).

Everything is deterministic in the experiment seed.
"""

from __future__ import annotations

import numpy as np

from repro._rng import DEFAULT_SEED
from repro.data.datasets import Dataset
from repro.errors import CalibrationError
from repro.metrics.counting import count_detected_objects
from repro.simulate.detector import SimulatedDetector
from repro.simulate.profile import DetectorProfile, detection_probability

__all__ = ["expected_recall", "solve_base_recall", "calibrate_profile"]

#: Upper bound for the capability scale during bisection.
_MAX_BASE_RECALL = 25.0


def expected_recall(profile: DetectorProfile, dataset: Dataset) -> float:
    """Mean per-object detection probability over a split (analytic)."""
    total_p = 0.0
    total_n = 0
    for record in dataset.records:
        truth = record.truth
        if len(truth) == 0:
            continue
        p = detection_probability(profile, truth.area_ratios, len(truth), record.quality)
        total_p += float(p.sum())
        total_n += len(truth)
    if total_n == 0:
        raise CalibrationError("dataset has no objects to calibrate on")
    return total_p / total_n


def solve_base_recall(
    profile: DetectorProfile,
    dataset: Dataset,
    target: float,
    *,
    tolerance: float = 1e-4,
    max_iterations: int = 60,
) -> DetectorProfile:
    """Bisection on ``base_recall`` so the analytic recall hits ``target``.

    The per-object probability is monotone in ``base_recall`` (until every
    object saturates at the cap), so bisection is exact.  Raises
    :class:`~repro.errors.CalibrationError` when the target is unreachable
    even at the maximum scale (e.g. a dataset of exclusively tiny objects).
    """
    if not 0.0 < target < 1.0:
        raise CalibrationError(f"target recall must be in (0, 1), got {target}")
    hi_profile = profile.with_base_recall(_MAX_BASE_RECALL)
    reachable = expected_recall(hi_profile, dataset)
    if reachable < target:
        raise CalibrationError(
            f"target recall {target:.3f} unreachable: even at maximum "
            f"capability the expected recall is {reachable:.3f}"
        )
    lo, hi = 1e-4, _MAX_BASE_RECALL
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        value = expected_recall(profile.with_base_recall(mid), dataset)
        if abs(value - target) < tolerance:
            return profile.with_base_recall(mid)
        if value < target:
            lo = mid
        else:
            hi = mid
    return profile.with_base_recall((lo + hi) / 2.0)


def calibrate_profile(
    profile: DetectorProfile,
    dataset: Dataset,
    target_recall: float,
    *,
    num_classes: int,
    seed: int = DEFAULT_SEED,
    sample_size: int = 1000,
    measured_rounds: int = 2,
) -> DetectorProfile:
    """Full calibration: analytic solve plus measured loss-factor estimation.

    The analytic solve runs over the whole ``dataset`` (cheap, vectorised);
    the *loss factor* — how much measured true-positive recall falls short of
    the analytic expectation because of NMS suppression, localisation jitter
    and class confusion — is estimated on a ``sample_size`` subset as
    ``measured / expected`` *on the same subset*, so subset sampling bias
    cancels out of the final profile.

    Parameters
    ----------
    dataset:
        The split to calibrate against (a train split in the experiments).
    target_recall:
        Detected-objects / annotated-objects ratio to reproduce, taken from
        the paper's count tables.
    sample_size:
        Number of images used to estimate the simulation loss factor.
    """
    sample = dataset.subset(min(sample_size, len(dataset)))
    loss_factor = 1.0
    calibrated = profile
    for _ in range(measured_rounds + 1):
        analytic_target = min(0.995, target_recall / loss_factor)
        calibrated = solve_base_recall(calibrated, dataset, analytic_target)
        detector = SimulatedDetector(profile=calibrated, num_classes=num_classes, seed=seed)
        detections = detector.detect_split(sample)
        measured = count_detected_objects(detections, sample.truth_batch) / max(sample.total_objects, 1)
        if measured <= 0.0:
            raise CalibrationError("measured recall collapsed to zero")
        expected_on_sample = expected_recall(calibrated, sample)
        new_loss = float(np.clip(measured / expected_on_sample, 0.5, 1.0))
        if abs(new_loss - loss_factor) < 0.005:
            loss_factor = new_loss
            break
        loss_factor = new_loss
    return calibrated
