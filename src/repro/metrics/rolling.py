"""Online stream evaluation: rolling-window quality of served frames.

Latency and drop counts alone understate what saturation costs: a scheme
that sheds frames — or returns them seconds late — still *looks* healthy on
the frames it serves.  This module scores a streaming run the way an
operator would watch it: a rolling window over *arrival* time, where every
frame offered in the window counts.  A frame contributes its served
detections only if a result was actually produced **and** was fresh (ready
within ``freshness_s`` of arrival); dropped and stale frames contribute an
empty detection set against their ground truth, so backpressure and
queueing delay both show up as measured mAP / object-count loss rather than
as side-channel counters.

Inputs are the columnar frame trace a
:class:`~repro.runtime.serving.StreamReport` carries when the simulation was
given served detections (``served`` plus the ``frame_*`` trace columns);
fleet runs evaluate the union of all camera logs.

Failure injection adds one wrinkle: a frame whose escalation failed serves
its *edge* verdict immediately, and a durable escalation queue may land the
deferred *cloud* verdict later (``frame_verdict_segments`` /
``frame_verdict_times``).  The evaluation reconciles the two — a late cloud
verdict inside the freshness deadline upgrades the scored frame, outside it
the frame scores as edge-served — so graceful degradation and recovery are
measured, not asserted.

The evaluation is vectorized for fleet-scale traces, resting on one
observation: greedy VOC matching is *per frame* — detections only contend
for ground-truth boxes of their own frame — so each detection's
true-positive flag is the same in every window that contains its frame.
One block-diagonal pairwise-IoU pass (the VOC evaluator's flat-IoU trick)
therefore matches every frame once, up front; deferred verdicts resolve
with one ``np.where``; windows partition via ``np.searchsorted`` over
sorted arrivals; and each window's mAP needs only a score sort of the
precomputed flags plus the VOC interpolation — no per-window IoU, matching,
or batch construction at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch, GroundTruthBatch
from repro.detection.boxes import pairwise_iou
from repro.errors import ConfigurationError
from repro.metrics.voc_ap import voc_ap_from_pr

__all__ = ["RollingWindow", "rolling_quality", "verdict_miss_rates"]


def verdict_miss_rates(
    small_detections: DetectionBatch,
    detections: DetectionBatch,
    *,
    score_threshold: float = 0.5,
) -> np.ndarray:
    """Per-record pseudo-label miss rate of the edge model vs the cloud model.

    For each record, the fraction of the cloud (big-model) detections above
    ``score_threshold`` the edge (small-model) verdict fails to account for:
    ``max(0, big - small) / max(big, 1)`` on the per-record counts.  No
    ground truth is consulted — this is the quality-feedback signal a
    deployed fleet can actually observe, by comparing the two verdicts on
    the frames it *did* offload (the pseudo-label cloud-update idea).  It
    feeds :class:`~repro.runtime.control.AdaptiveQuota`: a camera whose
    offloaded frames keep revealing missed objects earns a higher offload
    quota.
    """
    if len(small_detections) != len(detections):
        raise ConfigurationError(
            "small and big detection batches must describe the same records, "
            f"got {len(small_detections)} vs {len(detections)}"
        )
    small = DetectionBatch.coerce(small_detections).count_above(score_threshold)
    big = DetectionBatch.coerce(detections).count_above(score_threshold)
    return np.maximum(big - small, 0) / np.maximum(big, 1)


@dataclass(frozen=True)
class RollingWindow:
    """Quality of one evaluation window of a streaming run.

    ``map_percent`` and the object counts are measured over every frame that
    *arrived* in ``[t_start, t_end)`` — frames that were dropped, or whose
    result came back stale, score as empty detection sets and pull quality
    down instead of vanishing.
    """

    t_start: float
    t_end: float
    frames: int
    served: int
    dropped: int
    stale: int
    map_percent: float
    detected_objects: int
    true_objects: int

    @property
    def count_error_percent(self) -> float:
        """Percent of in-window annotated objects the stream missed."""
        if self.true_objects == 0:
            return 0.0
        return 100.0 * (self.true_objects - self.detected_objects) / self.true_objects


def _frame_logs(report) -> list:
    """Flatten one report (stream or fleet) into per-camera log tuples."""
    cameras = getattr(report, "cameras", None)
    if cameras is not None:
        logs = []
        for camera in cameras:
            logs.extend(_frame_logs(camera))
        return logs
    if report.served is None or report.frame_arrivals is None:
        raise ConfigurationError("stream report carries no served frames; simulate with detections=")
    return [
        (
            report.served,
            report.frame_arrivals,
            report.frame_times,
            report.frame_records,
            report.frame_served,
            getattr(report, "frame_segments", None),
            getattr(report, "frame_verdict_times", None),
            getattr(report, "frame_verdict_segments", None),
        )
    ]


def _segment_maps(logs) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-frame segment indices into the concatenated served batch.

    Returns ``(positions, verdict_segments, verdict_times)`` aligned with the
    concatenated frame logs; ``-1`` marks "no segment".  Segment indices are
    shifted by each camera's offset in the concatenated batch.  Logs without
    an explicit segment map fall back to counting served flags — exact only
    when every batch segment is a primary serve, so the fallback insists the
    served-flag count equals the batch length instead of silently
    misaligning segments (a batch carrying recovered verdicts has more
    segments than served flags).
    """
    positions_parts: list[np.ndarray] = []
    verdict_parts: list[np.ndarray] = []
    verdict_time_parts: list[np.ndarray] = []
    offset = 0
    for batch, _arrivals, _times, _records, flags, segments, verdict_times, verdict_segments in logs:
        if segments is None:
            flagged = int(np.count_nonzero(flags))
            if flagged != len(batch):
                raise ConfigurationError(
                    f"frame log has {flagged} served flags for a {len(batch)}-segment served batch; "
                    "counting served flags only maps segments exactly when every segment is a "
                    "primary serve — supply frame_segments for this report"
                )
            counted = np.cumsum(flags.astype(np.int64)) - 1
            positions_parts.append(np.where(flags, counted + offset, -1))
        else:
            positions_parts.append(np.where(segments >= 0, segments + offset, -1))
        if verdict_segments is None:
            verdict_parts.append(np.full(flags.shape[0], -1, dtype=np.int64))
            verdict_time_parts.append(np.full(flags.shape[0], -np.inf))
        else:
            verdict_parts.append(np.where(verdict_segments >= 0, verdict_segments + offset, -1))
            verdict_time_parts.append(verdict_times)
        offset += len(batch)
    return (
        np.concatenate(positions_parts),
        np.concatenate(verdict_parts),
        np.concatenate(verdict_time_parts),
    )


def _window_count(duration_s: float, step_s: float) -> int:
    """Number of windows on the exact ``i * step_s`` grid covering arrivals.

    ``ceil(duration / step)`` pinned against both float failure modes: when
    the quotient rounds just above an integer the trim loop drops trailing
    windows whose start already lands at/after ``duration_s``, and when the
    *product* ``i * step_s`` rounds just below ``duration_s`` the
    quotient-based count never emits the trailing all-empty window the old
    ``while i * step_s < duration_s`` loop did (e.g. ``duration_s=0.9,
    step_s=0.3``: ``3 * 0.3 < 0.9`` in floats, yet window 3 starts exactly
    at the horizon).  At least one window is always evaluated.
    """
    if duration_s <= 0.0:
        return 1
    count = max(1, math.ceil(duration_s / step_s))
    while count > 1 and (count - 1) * step_s >= duration_s:
        count -= 1
    return count


def _frame_matches(
    above: DetectionBatch,
    frame_starts: np.ndarray,
    frame_counts: np.ndarray,
    records: np.ndarray,
    truth: GroundTruthBatch,
    iou_threshold: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy VOC matching of every frame's above-threshold detections.

    Returns ``(frame_tp, row_tp)``: per-frame true-positive counts and the
    per-detection true-positive flags over ``above``'s flat rows.  One
    block-diagonal pass over every (frame, detection, ground-truth)
    candidate pair reproduces
    :func:`repro.detection.matching.greedy_match_arrays` exactly: a frame's
    detections visit in score-descending order (the segment order), each
    claims the highest-IoU unclaimed same-class ground-truth box at or above
    the threshold, first index winning ties.  Candidate pairs are
    prefiltered to same-class-and-above-threshold, which cannot change the
    greedy outcome (below-threshold or claimed-and-zeroed candidates never
    claim, since the threshold is positive).

    Because detections of different frames never contend for the same
    ground-truth box, the class-restricted claim order inside one frame is
    the same whether frames are visited alone, interleaved across a window's
    score-pooled ranking (the per-class AP protocol), or across all classes
    in segment order (the counting protocol) — so these flags serve every
    window's PR curves *and* its detected-object count.
    """
    num_frames = int(frame_counts.shape[0])
    frame_tp = np.zeros(num_frames, dtype=np.int64)
    row_tp = np.zeros(above.scores.shape[0], dtype=bool)
    gt_counts = truth.counts()[records]
    active = np.flatnonzero((frame_counts > 0) & (gt_counts > 0))
    if active.size == 0:
        return frame_tp, row_tp
    if not 0.0 < iou_threshold <= 1.0:
        raise ConfigurationError(f"iou_threshold must be in (0, 1], got {iou_threshold}")
    det_starts = frame_starts[active]
    gt_starts = truth.offsets[:-1][records[active]]
    pair_counts = frame_counts[active] * gt_counts[active]
    total = int(pair_counts.sum())
    bases = np.zeros(active.size, dtype=np.int64)
    np.cumsum(pair_counts[:-1], out=bases[1:])
    local = np.arange(total, dtype=np.int64) - np.repeat(bases, pair_counts)
    gc_rep = np.repeat(gt_counts[active], pair_counts)
    det_local = local // gc_rep
    gt_local = local % gc_rep
    det_rows = np.repeat(det_starts, pair_counts) + det_local
    gt_rows = np.repeat(gt_starts, pair_counts) + gt_local
    iou = pairwise_iou(above.boxes[det_rows], truth.boxes[gt_rows])
    ok = (above.labels[det_rows] == truth.labels[gt_rows]) & (iou >= iou_threshold)
    candidates = np.flatnonzero(ok)
    if candidates.size == 0:
        return frame_tp, row_tp
    pair_frame = np.repeat(np.arange(active.size, dtype=np.int64), pair_counts)
    cand_frame = pair_frame[candidates].tolist()
    cand_det = det_local[candidates].tolist()
    cand_gt = gt_local[candidates].tolist()
    cand_row = det_rows[candidates].tolist()
    cand_iou = iou[candidates].tolist()
    counts = [0] * int(active.size)
    claimed: set[tuple[int, int]] = set()
    num_pairs = len(cand_frame)
    index = 0
    while index < num_pairs:
        frame = cand_frame[index]
        det = cand_det[index]
        row = cand_row[index]
        best_iou = 0.0
        best_gt = -1
        # candidates are ordered (frame, det, gt) ascending, so strict ">"
        # keeps the lowest gt index on IoU ties — argmax's tie-break
        while index < num_pairs and cand_frame[index] == frame and cand_det[index] == det:
            gt = cand_gt[index]
            if (frame, gt) not in claimed and cand_iou[index] > best_iou:
                best_iou = cand_iou[index]
                best_gt = gt
            index += 1
        if best_gt >= 0:
            claimed.add((frame, best_gt))
            counts[frame] += 1
            row_tp[row] = True
    frame_tp[active] = counts
    return frame_tp, row_tp


def rolling_quality(
    reports,
    dataset: Dataset,
    *,
    window_s: float = 10.0,
    step_s: float | None = None,
    duration_s: float | None = None,
    freshness_s: float | None = None,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
) -> list[RollingWindow]:
    """Score a streaming run over a rolling arrival-time window.

    Parameters
    ----------
    reports:
        A :class:`~repro.runtime.serving.StreamReport`, a
        :class:`~repro.runtime.serving.FleetReport`, or a sequence of
        either; every report must carry the per-frame log (run the
        simulation with ``detections=``).  Fleet windows pool all cameras.
    dataset:
        The split the stream cycled through (ground-truth source).
    window_s / step_s:
        Window width and stride (stride defaults to the width: adjacent,
        non-overlapping windows).
    duration_s:
        Evaluation horizon over arrivals.  Defaults to just past the latest
        arrival; pass the stream's configured duration to compare schemes on
        an identical window grid.
    freshness_s:
        Staleness deadline: a served frame only counts if its result was
        ready within this many seconds of the frame's arrival.  ``None``
        (default) accepts any completed frame, however late — then only
        drops degrade quality.
    """
    if window_s <= 0.0:
        raise ConfigurationError(f"window_s must be positive, got {window_s}")
    if step_s is None:
        step_s = window_s
    if step_s <= 0.0:
        raise ConfigurationError(f"step_s must be positive, got {step_s}")
    if freshness_s is not None and freshness_s <= 0.0:
        raise ConfigurationError(f"freshness_s must be positive, got {freshness_s}")
    if not isinstance(reports, Sequence):
        reports = [reports]
    logs = []
    for report in reports:
        logs.extend(_frame_logs(report))
    if not logs:
        # An empty sequence would otherwise sail past the per-report guard
        # and yield a single degenerate all-zero window — a score of
        # "nothing" that reads like a measurement.
        raise ConfigurationError("no stream reports to evaluate")

    arrivals = np.concatenate([log[1] for log in logs])
    times = np.concatenate([log[2] for log in logs])
    records = np.concatenate([log[3] for log in logs])
    served_flags = np.concatenate([log[4] for log in logs])
    batch = DetectionBatch.concat([log[0] for log in logs])
    # Map each offered frame to its segment in the concatenated served batch
    # (-1 for drops), plus any deferred cloud verdict a durable escalation
    # queue recovered for it.
    positions, verdict_segments, verdict_times = _segment_maps(logs)
    fresh = served_flags.copy()
    if freshness_s is not None:
        fresh &= (times - arrivals) <= freshness_s
    truth = dataset.truth_batch

    if duration_s is None:
        # just past the latest arrival, so a frame landing exactly on a
        # window boundary still falls inside the final window
        duration_s = float(np.nextafter(arrivals.max(), np.inf)) if arrivals.size else 0.0

    # Reconcile deferred cloud verdicts: inside the freshness deadline the
    # late verdict's segment replaces the one the frame served with;
    # outside, the frame stays scored on its original (edge) verdict.
    upgrade = verdict_segments >= 0
    if freshness_s is not None:
        upgrade &= (verdict_times - arrivals) <= freshness_s
    segments = np.where(upgrade, verdict_segments, positions)

    # Each fresh frame contributes its segment's above-threshold prefix (a
    # dropped or stale frame contributes nothing) from ONE shared filtering
    # of the served batch; the greedy matches behind every window's PR
    # curves and detected-object counts are computed once, up front.
    num_frames = int(arrivals.shape[0])
    above = batch.above(score_threshold)
    if len(batch):
        safe = np.where(fresh, segments, 0)
        frame_counts = np.where(fresh, np.diff(above.offsets)[safe], 0)
        frame_starts = np.where(fresh, above.offsets[:-1][safe], 0)
    else:
        frame_counts = np.zeros(num_frames, dtype=np.int64)
        frame_starts = np.zeros(num_frames, dtype=np.int64)
    frame_tp, row_tp = _frame_matches(above, frame_starts, frame_counts, records, truth, iou_threshold)

    # Per-record per-class ground-truth counts: a window's class gt totals
    # (the PR recall denominators, and the devkit's skip-absent-classes
    # rule) reduce to one row-sum over its frames.
    num_classes = dataset.num_classes
    truth_labels = truth.labels
    in_range = (truth_labels >= 0) & (truth_labels < num_classes)
    record_class_gt = np.bincount(
        truth.image_indices()[in_range] * num_classes + truth_labels[in_range],
        minlength=len(truth) * num_classes,
    ).reshape(len(truth), num_classes)
    frame_class_gt = record_class_gt[records]
    frame_gt_totals = truth.counts()[records]
    above_scores = above.scores
    above_labels = above.labels

    # Window membership via binary search over sorted arrivals: fleet logs
    # concatenate per camera, so arrivals are not globally sorted; sorting
    # the in-window positions restores the original (camera-major) frame
    # order the per-window scan produced.
    order = np.argsort(arrivals, kind="stable")
    sorted_arrivals = arrivals[order]

    windows: list[RollingWindow] = []
    # windows sit on an exact i * step_s grid (no float accumulation drift)
    for index in range(_window_count(duration_s, step_s)):
        t_start = index * step_s
        t_end = t_start + window_s
        lo = int(np.searchsorted(sorted_arrivals, t_start, side="left"))
        hi = int(np.searchsorted(sorted_arrivals, t_end, side="left"))
        inside = np.sort(order[lo:hi])
        served = int(fresh[inside].sum())
        dropped = int((~served_flags[inside]).sum())
        stale = int(inside.size) - served - dropped
        true_objects = int(frame_gt_totals[inside].sum())
        if inside.size:
            counts = frame_counts[inside]
            starts = frame_starts[inside]
            total = int(counts.sum())
            if total:
                bases = np.zeros(inside.size, dtype=np.int64)
                np.cumsum(counts[:-1], out=bases[1:])
                rows = np.repeat(starts - bases, counts) + np.arange(total)
                window_scores = above_scores[rows]
                window_labels = above_labels[rows]
                window_tp = row_tp[rows]
            else:
                window_scores = above_scores[:0]
                window_labels = above_labels[:0]
                window_tp = row_tp[:0]
            class_gt = frame_class_gt[inside].sum(axis=0)
            aps: list[float] = []
            for label in range(num_classes):
                num_gt = int(class_gt[label])
                if num_gt == 0:
                    continue  # no annotated instances: the devkit skips the class
                class_mask = window_labels == label
                class_scores = window_scores[class_mask]
                if class_scores.size == 0:
                    aps.append(0.0)  # annotated but never detected: AP 0
                    continue
                # pooled ranking: score-descending, ties by in-window order
                rank = np.argsort(-class_scores, kind="stable")
                tp_ranked = window_tp[class_mask][rank]
                tp_cum = np.cumsum(tp_ranked)
                fp_cum = np.cumsum(~tp_ranked)
                recall = tp_cum / num_gt
                precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
                aps.append(voc_ap_from_pr(recall, precision, use_07_metric=True))
            map_percent = 100.0 * float(np.mean(aps)) if aps else 0.0
            detected = int(frame_tp[inside].sum())
        else:
            map_percent = 0.0
            detected = 0
        windows.append(
            RollingWindow(
                t_start=t_start,
                t_end=t_end,
                frames=int(inside.size),
                served=served,
                dropped=dropped,
                stale=stale,
                map_percent=map_percent,
                detected_objects=detected,
                true_objects=true_objects,
            )
        )
    return windows
