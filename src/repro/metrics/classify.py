"""Binary-classification metrics for the difficult-case discriminator.

Table I and Fig. 7 report accuracy, precision, recall and F1 (the paper calls
it "hm", harmonic mean) with *difficult* cases as the positive class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BinaryMetrics", "binary_metrics", "confusion_counts"]


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix derived metrics, difficult = positive."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        """Number of classified samples."""
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; 0 on an empty sample."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing was predicted positive."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0 when there are no positives."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (the paper's "hm")."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0

    def as_row(self) -> dict[str, float]:
        """Table-I style row: percentages for accuracy/precision/recall."""
        return {
            "accuracy": 100.0 * self.accuracy,
            "f1": self.f1,
            "precision": 100.0 * self.precision,
            "recall": 100.0 * self.recall,
        }


def confusion_counts(predicted: np.ndarray | list[bool], actual: np.ndarray | list[bool]) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, tn, fn)`` for boolean arrays (positive = True)."""
    pred = np.asarray(predicted, dtype=bool).reshape(-1)
    act = np.asarray(actual, dtype=bool).reshape(-1)
    if pred.shape != act.shape:
        raise ConfigurationError(f"predicted and actual differ in length: {pred.shape} vs {act.shape}")
    tp = int(np.count_nonzero(pred & act))
    fp = int(np.count_nonzero(pred & ~act))
    tn = int(np.count_nonzero(~pred & ~act))
    fn = int(np.count_nonzero(~pred & act))
    return tp, fp, tn, fn


def binary_metrics(predicted: np.ndarray | list[bool], actual: np.ndarray | list[bool]) -> BinaryMetrics:
    """Build :class:`BinaryMetrics` from predicted/actual boolean labels."""
    tp, fp, tn, fn = confusion_counts(predicted, actual)
    return BinaryMetrics(tp=tp, fp=fp, tn=tn, fn=fn)
