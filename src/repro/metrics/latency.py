"""Latency aggregation helpers for the runtime experiments (Table XI)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of per-image end-to-end latencies (seconds)."""

    total: float
    mean: float
    p50: float
    p90: float
    p99: float
    count: int

    def speedup_over(self, other: "LatencySummary") -> float:
        """How many times faster this run's total is than ``other``'s."""
        if self.total <= 0.0:
            return float("inf")
        return other.total / self.total

    def saving_over(self, other: "LatencySummary") -> float:
        """Fractional time saved vs ``other`` (paper: ours saves 32 % vs
        cloud-only)."""
        if other.total <= 0.0:
            return 0.0
        return 1.0 - self.total / other.total


def summarize_latencies(latencies: list[float] | np.ndarray) -> LatencySummary:
    """Aggregate a list of per-image latencies."""
    values = np.asarray(latencies, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return LatencySummary(total=0.0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, count=0)
    return LatencySummary(
        total=float(values.sum()),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p90=float(np.percentile(values, 90)),
        p99=float(np.percentile(values, 99)),
        count=int(values.size),
    )
