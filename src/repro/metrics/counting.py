"""Detected-object counting — the paper's second headline metric.

Tables IV/VI/VIII/X/XI/XIII/XV/XVII all report "the number of detected
objects": how many annotated objects a scheme's served detections correctly
find at serving threshold 0.5.  We count true positives (class-aware,
IoU >= 0.5) rather than raw box counts so that false positives cannot inflate
the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.batch import DetectionBatch, GroundTruthBatch
from repro.detection.matching import greedy_match_arrays
from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError

__all__ = ["CountSummary", "count_detected_objects", "count_summary"]


@dataclass(frozen=True)
class CountSummary:
    """Aggregate detection counts of one scheme over one split."""

    detected: int
    total_ground_truth: int

    @property
    def detected_fraction(self) -> float:
        """Share of annotated objects detected (0 when the split is empty)."""
        if self.total_ground_truth == 0:
            return 0.0
        return self.detected / self.total_ground_truth

    def ratio_to(self, other: "CountSummary") -> float:
        """This scheme's count relative to ``other``'s, in percent.

        This is the paper's "End-to-end / Big model (%)" column.
        """
        if other.detected == 0:
            return 0.0
        return 100.0 * self.detected / other.detected


def count_detected_objects(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    *,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
) -> int:
    """Total true-positive count over a split.

    Both sides are consumed as flat batches (coerced once for list inputs):
    the serving filter runs in one pass over the detection arrays and the
    per-image greedy matching works on offset slices of both pools — no
    per-image container construction or annotation re-flattening.
    """
    gt = GroundTruthBatch.coerce(truths)
    if len(detections) != len(gt):
        raise ConfigurationError(f"got {len(detections)} detection sets for {len(gt)} images")
    served = DetectionBatch.coerce(detections).above(score_threshold)
    offsets = served.offsets
    gt_offsets = gt.offsets
    total = 0
    for index in range(len(gt)):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        gt_lo, gt_hi = int(gt_offsets[index]), int(gt_offsets[index + 1])
        if lo == hi or gt_lo == gt_hi:
            continue
        total += greedy_match_arrays(
            served.boxes[lo:hi],
            served.labels[lo:hi],
            gt.boxes[gt_lo:gt_hi],
            gt.labels[gt_lo:gt_hi],
            iou_threshold=iou_threshold,
        ).num_tp
    return total


def count_summary(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    *,
    score_threshold: float = 0.5,
    iou_threshold: float = 0.5,
) -> CountSummary:
    """Detected-object count plus the split's ground-truth total."""
    gt = GroundTruthBatch.coerce(truths)
    detected = count_detected_objects(
        detections,
        gt,
        score_threshold=score_threshold,
        iou_threshold=iou_threshold,
    )
    return CountSummary(detected=detected, total_ground_truth=gt.total_objects)
