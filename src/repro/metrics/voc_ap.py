"""PASCAL VOC average-precision evaluation.

Implements both the classic 11-point interpolated AP (VOC2007 devkit, the
protocol behind every mAP number in the paper) and the all-point variant
(VOC2010+/COCO-style area under the interpolated PR curve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.batch import DetectionBatch, GroundTruthBatch
from repro.detection.boxes import pairwise_iou
from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError

__all__ = [
    "PRCurve",
    "EvalResult",
    "voc_ap_from_pr",
    "precision_recall_curve",
    "evaluate_detections",
    "mean_average_precision",
]


@dataclass(frozen=True)
class PRCurve:
    """A precision/recall curve for one class, sorted by descending score."""

    recall: np.ndarray
    precision: np.ndarray
    scores: np.ndarray
    num_gt: int

    def ap(self, *, use_07_metric: bool = True) -> float:
        """Average precision of this curve."""
        return voc_ap_from_pr(self.recall, self.precision, use_07_metric=use_07_metric)


@dataclass(frozen=True)
class EvalResult:
    """Full evaluation of one detector over one dataset split."""

    per_class_ap: dict[int, float]
    per_class_curves: dict[int, PRCurve] = field(repr=False)
    use_07_metric: bool = True

    @property
    def map(self) -> float:
        """Mean average precision over classes that have ground truth."""
        if not self.per_class_ap:
            return 0.0
        return float(np.mean(list(self.per_class_ap.values())))

    @property
    def map_percent(self) -> float:
        """mAP expressed in percent, as the paper's tables report it."""
        return 100.0 * self.map


def voc_ap_from_pr(recall: np.ndarray, precision: np.ndarray, *, use_07_metric: bool = True) -> float:
    """Average precision from a PR curve.

    With ``use_07_metric`` the 11-point interpolation of the VOC2007 devkit
    is used (mean of interpolated precision at recall 0, 0.1, ..., 1.0);
    otherwise the exact area under the monotonised curve.
    """
    recall = np.asarray(recall, dtype=np.float64).reshape(-1)
    precision = np.asarray(precision, dtype=np.float64).reshape(-1)
    if recall.shape != precision.shape:
        raise ConfigurationError("recall and precision must have equal length")
    if recall.size == 0:
        return 0.0
    if use_07_metric:
        points = np.linspace(0.0, 1.0, 11)
        if np.all(recall[1:] >= recall[:-1]):
            # Sorted recall (every PR curve): the interpolated precision at
            # each point is a suffix maximum, found by one reversed running
            # max plus a searchsorted — no per-point boolean scans.
            suffix_max = np.maximum.accumulate(precision[::-1])[::-1]
            first = np.searchsorted(recall, points, side="left")
            interpolated = np.where(
                first < recall.size,
                suffix_max[np.minimum(first, recall.size - 1)],
                0.0,
            )
        else:
            interpolated = np.array(
                [
                    precision[recall >= point].max() if (recall >= point).any() else 0.0
                    for point in points
                ]
            )
        ap = 0.0
        for p in interpolated:
            ap += float(p) / 11.0
        return ap
    # All-point metric: monotonise precision from the right, then integrate.
    mrec = np.concatenate([[0.0], recall, [1.0]])
    mpre = np.concatenate([[0.0], precision, [0.0]])
    for i in range(mpre.size - 2, -1, -1):
        mpre[i] = max(mpre[i], mpre[i + 1])
    changes = np.flatnonzero(mrec[1:] != mrec[:-1]) + 1
    return float(np.sum((mrec[changes] - mrec[changes - 1]) * mpre[changes]))


def _pooled_pr_curve(
    det_scores: np.ndarray,
    det_boxes: np.ndarray,
    det_images: np.ndarray,
    gt_boxes: np.ndarray,
    gt_images: np.ndarray,
    num_images: int,
    iou_threshold: float,
) -> PRCurve:
    """PR curve from one class's pooled detection and ground-truth arrays.

    Both pools are grouped by image index in split order (detections
    score-descending within each group).  Every detection/ground-truth IoU of
    the split is computed in a single flat block-diagonal pass —
    :func:`pairwise_iou` over gathered pair indices — so the sequential
    greedy loop only slices precomputed rows.
    """
    num_gt = int(gt_boxes.shape[0])
    num_det = int(det_scores.shape[0])
    if num_det == 0:
        return PRCurve(recall=np.zeros(0), precision=np.zeros(0), scores=np.zeros(0), num_gt=num_gt)

    gt_counts = np.bincount(gt_images, minlength=num_images)
    gt_starts = np.zeros(num_images, dtype=np.int64)
    np.cumsum(gt_counts[:-1], out=gt_starts[1:])
    pair_counts = gt_counts[det_images]
    row_starts = np.zeros(num_det, dtype=np.int64)
    np.cumsum(pair_counts[:-1], out=row_starts[1:])
    total_pairs = int(row_starts[-1] + pair_counts[-1])

    if total_pairs:
        det_idx = np.repeat(np.arange(num_det), pair_counts)
        gt_idx = np.repeat(gt_starts[det_images] - row_starts, pair_counts) + np.arange(total_pairs)
        iou_flat = pairwise_iou(det_boxes[det_idx], gt_boxes[gt_idx])
    else:
        iou_flat = np.zeros(0)

    order = np.argsort(-det_scores, kind="stable")
    scores = det_scores[order]

    claimed = np.zeros(num_gt, dtype=bool)
    tp_flags = np.zeros(num_det, dtype=bool)
    pair_count_list = pair_counts.tolist()
    row_start_list = row_starts.tolist()
    gt_start_list = gt_starts[det_images].tolist()
    for rank, det in enumerate(order.tolist()):
        count = pair_count_list[det]
        if count == 0:
            continue
        start = row_start_list[det]
        ious = iou_flat[start : start + count].copy()
        gt_lo = gt_start_list[det]
        ious[claimed[gt_lo : gt_lo + count]] = 0.0
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold:
            claimed[gt_lo + best] = True
            tp_flags[rank] = True

    tp_cum = np.cumsum(tp_flags)
    fp_cum = np.cumsum(~tp_flags)
    recall = tp_cum / num_gt if num_gt > 0 else np.zeros(num_det)
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
    return PRCurve(recall=recall, precision=precision, scores=scores, num_gt=num_gt)


def precision_recall_curve(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    label: int,
    *,
    iou_threshold: float = 0.5,
) -> PRCurve:
    """Dataset-wide PR curve for one class.

    Pools every detection of class ``label`` across images, sorts by score,
    and greedily matches against unclaimed ground truth per the VOC protocol.
    Annotations arrive pre-flattened when a :class:`GroundTruthBatch` (or a
    ``Dataset`` with its cached batch) is passed.
    """
    gt = GroundTruthBatch.coerce(truths)
    if len(detections) != len(gt):
        raise ConfigurationError(f"got {len(detections)} detection sets for {len(gt)} images")
    batch = DetectionBatch.coerce(detections)
    gt_mask = gt.labels == label
    det_mask = batch.labels == label
    return _pooled_pr_curve(
        batch.scores[det_mask],
        batch.boxes[det_mask],
        batch.image_indices()[det_mask],
        gt.boxes[gt_mask],
        gt.image_indices()[gt_mask],
        len(gt),
        iou_threshold,
    )


def evaluate_detections(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    num_classes: int,
    *,
    iou_threshold: float = 0.5,
    use_07_metric: bool = True,
) -> EvalResult:
    """Evaluate a detector over a split: per-class AP and mAP.

    Classes with no ground-truth instances in the split are skipped, matching
    the VOC devkit behaviour.  Detections are pooled into flat arrays once,
    annotations come pre-pooled from the :class:`GroundTruthBatch` (lists are
    flattened on entry); each class then evaluates with pure mask selections
    over them.
    """
    gt = GroundTruthBatch.coerce(truths)
    if len(detections) != len(gt):
        raise ConfigurationError(f"got {len(detections)} detection sets for {len(gt)} images")
    batch = DetectionBatch.coerce(detections)
    det_images = batch.image_indices()
    gt_labels, gt_images = gt.labels, gt.image_indices()
    per_class_ap: dict[int, float] = {}
    per_class_curves: dict[int, PRCurve] = {}
    for label in range(num_classes):
        gt_mask = gt_labels == label
        if not gt_mask.any():
            continue
        det_mask = batch.labels == label
        curve = _pooled_pr_curve(
            batch.scores[det_mask],
            batch.boxes[det_mask],
            det_images[det_mask],
            gt.boxes[gt_mask],
            gt_images[gt_mask],
            len(gt),
            iou_threshold,
        )
        per_class_curves[label] = curve
        per_class_ap[label] = curve.ap(use_07_metric=use_07_metric)
    return EvalResult(
        per_class_ap=per_class_ap,
        per_class_curves=per_class_curves,
        use_07_metric=use_07_metric,
    )


def mean_average_precision(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    num_classes: int,
    *,
    iou_threshold: float = 0.5,
    use_07_metric: bool = True,
) -> float:
    """Convenience wrapper returning the mAP in percent."""
    result = evaluate_detections(
        detections,
        truths,
        num_classes,
        iou_threshold=iou_threshold,
        use_07_metric=use_07_metric,
    )
    return result.map_percent
